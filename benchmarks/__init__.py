"""Benchmark suite regenerating the paper's evaluation figures.

This package marker gives the benchmark modules a proper importable home so
``python -m pytest`` collects them from the repository root (the modules
import shared helpers as ``from benchmarks._harness import run_once``).
"""
