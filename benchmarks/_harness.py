"""Shared helpers for the benchmark modules.

Kept separate from ``conftest.py`` so benchmark modules can import them as
plain functions (``from benchmarks._harness import run_once``) instead of the
``from .conftest import ...`` relative import that broke collection when the
directory was not a package.
"""

from __future__ import annotations

try:  # pragma: no cover - trivially environment dependent
    import pytest_benchmark  # noqa: F401

    HAVE_PYTEST_BENCHMARK = True
except ImportError:  # pragma: no cover
    HAVE_PYTEST_BENCHMARK = False

__all__ = ["HAVE_PYTEST_BENCHMARK", "run_once"]


def run_once(benchmark, function, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
