"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one figure/table of the paper's evaluation
section and prints the measured rows next to the numbers the paper reports.
A single session-scoped :class:`ExperimentRunner` (quick preset) is shared by
all benchmarks so the expensive ground-truth surveys are simulated once.

Run with::

    pytest benchmarks/ --benchmark-only

When ``pytest-benchmark`` is not installed the benchmarks skip (a stub
``benchmark`` fixture is provided) instead of erroring on the missing fixture.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentRunner

from benchmarks._harness import HAVE_PYTEST_BENCHMARK

if not HAVE_PYTEST_BENCHMARK:

    @pytest.fixture
    def benchmark():
        pytest.skip("pytest-benchmark is not installed")


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    """Shared experiment runner (quick preset: day 0 + day 45, office-sized)."""
    return ExperimentRunner(ExperimentConfig.quick())


@pytest.fixture(scope="session")
def multi_stamp_runner() -> ExperimentRunner:
    """Runner with several later time stamps for the over-time figures."""
    config = ExperimentConfig(
        timestamps_days=(0.0, 5.0, 45.0),
        localization_trials=30,
        survey_samples=6,
    )
    return ExperimentRunner(config)
