"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one figure/table of the paper's evaluation
section and prints the measured rows next to the numbers the paper reports.
A single session-scoped :class:`ExperimentRunner` (quick preset) is shared by
all benchmarks so the expensive ground-truth surveys are simulated once.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.experiments.config import ExperimentConfig  # noqa: E402
from repro.experiments.runner import ExperimentRunner  # noqa: E402


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "figure(name): marks a benchmark as reproducing a paper figure"
    )


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    """Shared experiment runner (quick preset: day 0 + day 45, office-sized)."""
    return ExperimentRunner(ExperimentConfig.quick())


@pytest.fixture(scope="session")
def multi_stamp_runner() -> ExperimentRunner:
    """Runner with several later time stamps for the over-time figures."""
    config = ExperimentConfig(
        timestamps_days=(0.0, 5.0, 45.0),
        localization_trials=30,
        survey_samples=6,
    )
    return ExperimentRunner(config)


def run_once(benchmark, function, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
