"""Ablation — weighting policy of the Constraint-2 structural penalties."""

import pytest

from repro.core.self_augmented import SelfAugmentedConfig
from repro.core.updater import UpdaterConfig
from repro.experiments.reporting import format_key_values

from benchmarks._harness import run_once


@pytest.mark.figure("ablation-scaling")
def test_ablation_constraint_scaling(benchmark, runner):
    campaign = runner.cache.campaign("office")
    ground_truth = campaign.ground_truth(45.0)

    def run_ablation():
        errors = {}
        weights = {"auto (0.1)": None, "weak (0.01)": 0.01, "strong (1.0)": 1.0}
        for label, weight in weights.items():
            config = UpdaterConfig(
                solver=SelfAugmentedConfig(structure_weight=weight)
            )
            updater = campaign.make_updater(config)
            result = campaign.run_update(45.0, updater=updater)
            errors[label] = result.matrix.reconstruction_error_db(ground_truth)
        return errors

    errors = run_once(benchmark, run_ablation)
    print()
    print(
        format_key_values(
            "Ablation — reconstruction error vs Constraint-2 weight", errors, unit="dB"
        )
    )
    stale = campaign.database.original.reconstruction_error_db(ground_truth)
    # Every weighting must still beat the stale database; over-weighting the
    # structural term should not dominate the data terms (the paper's
    # "scale to the same order of magnitude" guidance).
    for label, error in errors.items():
        assert error < stale, label
    assert errors["auto (0.1)"] <= errors["strong (1.0)"] + 0.5
