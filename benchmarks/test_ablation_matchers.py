"""Ablation — localization matcher (OMP vs KNN vs RASS/SVR) on the same matrix."""

import numpy as np
import pytest

from repro.experiments.figures import _fixed_test_set, _localization_errors
from repro.experiments.reporting import format_key_values

from benchmarks._harness import run_once


@pytest.mark.figure("ablation-matchers")
def test_ablation_matchers(benchmark, runner):
    campaign = runner.cache.campaign("office")
    reconstructed = campaign.run_update(45.0).matrix
    test_indices = _fixed_test_set(campaign, 30)
    measurements = campaign.online_measurements(test_indices, 45.0)

    def run_ablation():
        summary = {}
        for matcher in ("omp", "knn", "rass"):
            errors = _localization_errors(
                campaign, reconstructed, test_indices, measurements, localizer=matcher
            )
            summary[f"{matcher} (median)"] = float(np.median(errors))
            summary[f"{matcher} (mean)"] = float(np.mean(errors))
        return summary

    summary = run_once(benchmark, run_ablation)
    print()
    print(
        format_key_values(
            "Ablation — localization error by matcher (reconstructed DB)",
            summary,
            unit="m",
        )
    )
    # The paper's argument: the non-linear OMP formulation outperforms the
    # SVR-based matcher in typical (median) error.  Means are dominated by a
    # handful of outlier misses under single-shot online measurements, so the
    # assertion is on the median.
    assert summary["omp (median)"] <= summary["rass (median)"] + 0.3
