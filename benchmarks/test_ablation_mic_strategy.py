"""Ablation — MIC reference-selection strategy (QR pivoting vs Gaussian)."""

import pytest

from repro.core.updater import UpdaterConfig
from repro.experiments.reporting import format_key_values

from benchmarks._harness import run_once


@pytest.mark.figure("ablation-mic")
def test_ablation_mic_strategy(benchmark, runner):
    campaign = runner.cache.campaign("office")
    ground_truth = campaign.ground_truth(45.0)

    def run_ablation():
        errors = {}
        for strategy in ("qr", "gauss"):
            updater = campaign.make_updater(UpdaterConfig(mic_strategy=strategy))
            result = campaign.run_update(45.0, updater=updater)
            errors[strategy] = result.matrix.reconstruction_error_db(ground_truth)
        return errors

    errors = run_once(benchmark, run_ablation)
    print()
    print(
        format_key_values(
            "Ablation — reconstruction error by MIC selection strategy", errors, unit="dB"
        )
    )
    stale = campaign.database.original.reconstruction_error_db(ground_truth)
    # Both strategies must beat the stale database; neither should be wildly
    # worse than the other.
    for strategy, error in errors.items():
        assert error < stale, strategy
    assert abs(errors["qr"] - errors["gauss"]) < 2.0
