"""Ablation — number of RSS samples averaged per reference measurement (5 vs 50)."""

import pytest

from repro.experiments.reporting import format_key_values

from benchmarks._harness import run_once


@pytest.mark.figure("ablation-samples")
def test_ablation_sample_count(benchmark, runner):
    campaign = runner.cache.campaign("office")
    ground_truth = campaign.ground_truth(45.0)

    def run_ablation():
        errors = {}
        for samples in (1, 5, 50):
            updater = campaign.make_updater()
            observed, mask = campaign.collector.collect_no_decrease(
                elapsed_days=45.0, samples=samples
            )
            reference = campaign.collector.collect_reference(
                updater.reference_indices, elapsed_days=45.0, samples=samples
            )
            result = updater.update(
                no_decrease_matrix=observed,
                no_decrease_mask=mask,
                reference_matrix=reference,
            )
            errors[f"{samples} samples"] = result.matrix.reconstruction_error_db(ground_truth)
        return errors

    errors = run_once(benchmark, run_ablation)
    print()
    print(
        format_key_values(
            "Ablation — reconstruction error vs samples per reference location",
            errors,
            unit="dB",
        )
    )
    # iUpdater's operating point (5 samples) must already be close to the
    # heavily averaged 50-sample survey — that is what makes the 92.1 %
    # labor-cost saving possible without losing accuracy.
    assert errors["5 samples"] <= errors["50 samples"] + 1.0
    stale = campaign.database.original.reconstruction_error_db(ground_truth)
    assert errors["5 samples"] < stale
