"""Scatter-gather fleet execution: wall-clock scaling, zero deviation.

A 128-site synthetic fleet is refreshed four ways — serially in-process and
through :class:`~repro.service.executor.ProcessExecutor` with 1, 2 and 4
workers — and every variant must produce **bit-identical** per-site results
and the same executed plan.  Timings are printed as ``BENCH_distributed_fleet_*``
rows (and optionally written as JSON for CI artifacts via the
``REPRO_BENCH_JSON`` environment variable), so performance sweeps can track
the scatter-gather overhead and, on multi-core machines, the scaling.

Wall-clock assertions are deliberately conservative: result parity is the
hard invariant; speedup depends on the host's core count (a single-core CI
runner *cannot* scale, and the rows record that honestly via ``cpu_count``).
Runs without the ``benchmark`` fixture so the rows are recorded even when
pytest-benchmark is unavailable.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.core.self_augmented import SelfAugmentedConfig
from repro.core.updater import UpdaterConfig
from repro.service.executor import ProcessExecutor
from repro.service.service import UpdateService
from repro.service.shard import ShardConfig
from repro.service.synthetic import synthesize_fleet

FLEET_SITES = 128
SHARD_BUDGET = 32 * 1024  # ~a dozen shards at this fleet size
WORKER_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def distributed_fleet_requests():
    """A 128-site synthetic fleet with three factorisation ranks."""
    return synthesize_fleet(
        FLEET_SITES,
        elapsed_days=45.0,
        seed=11,
        link_count=(3, 4, 5),
        locations_per_link=4,
        updater=UpdaterConfig(
            # A tight tolerance keeps every site sweeping, so the measured
            # work is the stacked solve rather than early convergence.
            solver=SelfAugmentedConfig(max_iterations=40, tolerance=1e-12)
        ),
    )


def test_distributed_fleet_scaling(distributed_fleet_requests):
    """Scatter a 128-site refresh over {1, 2, 4} workers vs serial."""
    shards = ShardConfig(max_stack_bytes=SHARD_BUDGET)
    service = UpdateService()

    variants = {"serial": None}
    for workers in WORKER_COUNTS:
        variants[f"workers{workers}"] = ProcessExecutor(workers)

    timings = {}
    estimates = {}
    plans = {}
    for name, executor in variants.items():
        start = time.perf_counter()
        reports = service.update_fleet(
            distributed_fleet_requests, shards=shards, executor=executor
        )
        timings[name] = time.perf_counter() - start
        estimates[name] = [report.estimate for report in reports]
        plans[name] = service.last_plan

    deviation = max(
        float(np.max(np.abs(a - b)))
        for name in variants
        if name != "serial"
        for a, b in zip(estimates["serial"], estimates[name])
    )

    cpu_count = os.cpu_count() or 1
    rows = {
        "sites": FLEET_SITES,
        "shards": plans["serial"].shard_count,
        "cpu_count": cpu_count,
        "max_deviation_db": deviation,
        **{f"{name}_seconds": round(timings[name], 4) for name in variants},
        "speedup_w4_vs_w1": round(timings["workers1"] / timings["workers4"], 2),
    }
    print()
    for key, value in rows.items():
        print(f"BENCH_distributed_fleet_{key}: {value}")

    json_path = os.environ.get("REPRO_BENCH_JSON")
    if json_path:
        with open(json_path, "w") as handle:
            json.dump({"distributed_fleet": rows}, handle, indent=2)

    # Hard invariants: scattering over worker processes must be invisible in
    # the results — bit-identical estimates, identical executed plans, no
    # singularity fallbacks triggered by the transport.
    assert deviation == 0.0
    for name in variants:
        if name == "serial":
            continue
        assert plans[name].shard_count == plans["serial"].shard_count
        for ours, theirs in zip(plans[name].shards, plans["serial"].shards):
            assert ours.members == theirs.members
            assert ours.sweeps == theirs.sweeps
            assert not ours.fallback

    if os.environ.get("REPRO_SKIP_PERF_ASSERT"):
        pytest.skip("REPRO_SKIP_PERF_ASSERT set; BENCH_ rows recorded above")
    # Scatter-gather overhead (payload encode, pool spawn, result pickle)
    # must stay sane even on a single-core runner.
    assert timings["workers1"] < 5.0 * timings["serial"] + 2.0, (
        f"1-worker scatter pathologically slow: {timings['workers1']:.2f}s vs "
        f"{timings['serial']:.2f}s serial"
    )
    if cpu_count >= 4 and os.environ.get("REPRO_ASSERT_SCALING"):
        # Wall-clock scaling is hardware- and load-dependent (tiny shards on
        # a busy shared runner can anti-scale from scheduling noise alone),
        # so this assertion is opt-in for dedicated perf sweeps; the rows
        # above record the ratio everywhere.
        assert timings["workers4"] < 1.25 * timings["workers1"], (
            f"4 workers anti-scale on a {cpu_count}-core host: "
            f"{timings['workers4']:.2f}s vs {timings['workers1']:.2f}s"
        )
