"""Fig. 1 — short-term RSS variation at a fixed location over 100 s."""

import pytest

from repro.experiments.reporting import format_key_values

from benchmarks._harness import run_once


@pytest.mark.figure("fig1")
def test_fig01_short_term_variation(benchmark, runner):
    result = run_once(benchmark, runner.run, "fig01_short_term_variation")
    print()
    print(
        format_key_values(
            "Fig. 1 — short-term RSS variation over 100 s",
            {
                "measured span": result["span_db"],
                "paper span (approx.)": result["paper_span_db"],
            },
            unit="dB",
        )
    )
    # The paper observes swings of roughly 5 dB; the simulation must show
    # multi-dB short-term variation for the motivation to hold.
    assert result["span_db"] > 2.0
