"""Fig. 2 — long-term RSS shift after 5 and 45 days."""

import pytest

from repro.experiments.reporting import format_key_values

from benchmarks._harness import run_once


@pytest.mark.figure("fig2")
def test_fig02_long_term_shift(benchmark, runner):
    result = run_once(benchmark, runner.run, "fig02_long_term_shift")
    print()
    print(
        format_key_values(
            "Fig. 2 — long-term RSS shift at a fixed location",
            {
                "measured shift @ 5 days": result["shift_5_days_db"],
                "paper shift @ 5 days": result["paper_shift_5_days_db"],
                "measured shift @ 45 days": result["shift_45_days_db"],
                "paper shift @ 45 days": result["paper_shift_45_days_db"],
            },
            unit="dB",
        )
    )
    # Shape check: the shift grows with elapsed time and reaches several dB.
    assert result["shift_45_days_db"] > result["shift_5_days_db"]
    assert result["shift_45_days_db"] > 1.0
