"""Fig. 5 — the fingerprint matrix is approximately low rank."""

import numpy as np
import pytest

from repro.experiments.reporting import format_key_values

from benchmarks._harness import run_once


@pytest.mark.figure("fig5")
def test_fig05_low_rank(benchmark, runner):
    result = run_once(benchmark, runner.run, "fig05_low_rank")
    profiles = result["singular_value_profiles"]
    print()
    for days, profile in profiles.items():
        print(f"  day {days:>4g}: normalized singular values {np.round(profile, 3)}")
    print(
        format_key_values(
            "Fig. 5 — leading singular value energy fraction",
            result["leading_energy_fraction"],
        )
    )
    # Paper: the largest singular value carries most of the energy at every
    # time stamp, but residual energy remains in the other values (the matrix
    # is approximately, not exactly, low rank).
    for days, profile in profiles.items():
        assert profile[0] == pytest.approx(1.0)
        assert result["leading_energy_fraction"][days] > 0.5
        assert result["approximately_low_rank"][days]
        assert np.all(profile[1:] > 0.0)
