"""Fig. 6 — RSS differences are more stable than raw RSS readings."""

import pytest

from repro.experiments.reporting import format_key_values

from benchmarks._harness import run_once


@pytest.mark.figure("fig6")
def test_fig06_difference_stability(benchmark, runner):
    result = run_once(benchmark, runner.run, "fig06_difference_stability")
    print()
    print(
        format_key_values(
            "Fig. 6 — stability of RSS vs RSS differences (100 s trace)",
            {
                "raw RSS std": result["rss_std_db"],
                "neighbour-difference std": result["neighbour_std_db"],
                "adjacent-link-difference std": result["adjacent_std_db"],
                "neighbour stability ratio": result["neighbour_stability_ratio"],
                "adjacent stability ratio": result["adjacent_stability_ratio"],
            },
        )
    )
    # The differences must vary no more than the raw readings (the paper
    # observes they vary much less).
    assert result["neighbour_stability_ratio"] < 1.5
    assert result["adjacent_stability_ratio"] < 1.5
