"""Fig. 8 — CDF of the neighbouring-location continuity statistic NLC."""

import pytest

from repro.experiments.reporting import format_key_values

from benchmarks._harness import run_once


@pytest.mark.figure("fig8")
def test_fig08_nlc_cdf(benchmark, runner):
    result = run_once(benchmark, runner.run, "fig08_nlc_cdf")
    print()
    print(
        format_key_values(
            "Fig. 8 — fraction of NLC values below 0.2 (paper: ~0.9)",
            result["fraction_below_0_2"],
        )
    )
    # Observation 2: the bulk of NLC values are small at every time stamp.
    for days, fraction in result["fraction_below_0_2"].items():
        assert fraction > 0.6, f"day {days}: NLC fraction {fraction}"
