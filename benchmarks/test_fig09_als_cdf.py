"""Fig. 9 — CDF of the adjacent-link similarity statistic ALS."""

import pytest

from repro.experiments.reporting import format_key_values

from benchmarks._harness import run_once


@pytest.mark.figure("fig9")
def test_fig09_als_cdf(benchmark, runner):
    result = run_once(benchmark, runner.run, "fig09_als_cdf")
    print()
    print(
        format_key_values(
            "Fig. 9 — fraction of ALS values below 0.4 (paper: >0.8)",
            result["fraction_below_0_4"],
        )
    )
    # Observation 3: a substantial fraction of ALS values are small.  The
    # simulated links carry uncalibrated per-link shadowing (the paper notes
    # hardware calibration would raise the similarity), so the threshold is
    # looser than the paper's 0.8.
    for days, fraction in result["fraction_below_0_4"].items():
        assert fraction > 0.35, f"day {days}: ALS fraction {fraction}"
