"""Fig. 14 — reconstruction-error CDF vs number of reference locations (45 days)."""

import pytest

from repro.experiments.reporting import format_cdf_summary

from benchmarks._harness import run_once


@pytest.mark.figure("fig14")
def test_fig14_reference_count_cdf(benchmark, runner):
    result = run_once(benchmark, runner.run, "fig14_reference_count_cdf")
    medians = result["median_errors_db"]
    print()
    print(
        format_cdf_summary(
            "Fig. 14 — reconstruction errors per reference set @ 45 days [dB]",
            result["per_column_errors_db"],
        )
    )
    mic_label = "8 reference locations (iUpdater)"
    fewer_label = "7 reference locations"
    extra_label = "(8 reference + 1 random) locations"
    random_label = "11 random locations"
    # Paper's Claim 1: the MIC set is minimal — dropping a reference location
    # degrades the reconstruction; adding one changes little; random
    # locations are clearly worse.
    assert medians[fewer_label] >= medians[mic_label]
    assert medians[random_label] >= medians[mic_label]
    assert medians[extra_label] <= medians[fewer_label] + 0.5
