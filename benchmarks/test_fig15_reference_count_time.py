"""Fig. 15 — average reconstruction error per reference set at several time stamps."""

import numpy as np
import pytest

from repro.experiments.reporting import format_series_table

from benchmarks._harness import run_once


@pytest.mark.figure("fig15")
def test_fig15_reference_count_over_time(benchmark, multi_stamp_runner):
    result = run_once(benchmark, multi_stamp_runner.run, "fig15_reference_count_over_time")
    series = result["mean_errors_db"]
    print()
    print(
        format_series_table(
            "Fig. 15 — mean reconstruction error per reference set", series, unit="dB"
        )
    )
    mic = series["8 reference locations (iUpdater)"]
    random11 = series["11 random locations"]
    # The MIC-selected reference set must be at least as good as random
    # locations on average across the time stamps.
    assert np.mean(list(mic.values())) <= np.mean(list(random11.values())) + 0.5
