"""Fig. 16 — ablation of the two constraints of the self-augmented RSVD."""

import numpy as np
import pytest

from repro.experiments.reporting import format_series_table

from benchmarks._harness import run_once


@pytest.mark.figure("fig16")
def test_fig16_constraint_ablation(benchmark, multi_stamp_runner):
    result = run_once(benchmark, multi_stamp_runner.run, "fig16_constraint_ablation")
    series = result["mean_errors_db"]
    print()
    print(
        format_series_table(
            "Fig. 16 — reconstruction error by solver variant", series, unit="dB"
        )
    )
    rsvd = np.mean(list(series["RSVD"].values()))
    with_c1 = np.mean(list(series["RSVD + Constraint 1"].values()))
    with_both = np.mean(list(series["RSVD + Constraint 1 + Constraint 2"].values()))
    # Paper: Constraint 1 reduces the error sharply; Constraint 2 reduces it
    # further (or at minimum does not hurt).
    assert with_c1 < rsvd
    assert with_both <= with_c1 * 1.15
