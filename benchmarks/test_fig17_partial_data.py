"""Fig. 17 — Constraint 2 lets partial surveys match full (noisy) surveys."""

import numpy as np
import pytest

from repro.experiments.reporting import format_series_table

from benchmarks._harness import run_once


@pytest.mark.figure("fig17")
def test_fig17_partial_data(benchmark, runner):
    result = run_once(benchmark, runner.run, "fig17_partial_data")
    series = result["mean_localization_errors_m"]
    print()
    print(
        format_series_table(
            "Fig. 17 — mean localization error with partial surveys + Constraint 2",
            series,
            unit="m",
        )
    )
    full = np.mean(list(series["Measured (ground truth)"].values()))
    partial_80 = np.mean(list(series["80% data + Constraint 2"].values()))
    partial_50 = np.mean(list(series["50% data + Constraint 2"].values()))
    # Paper's Claim 3: 80 % (and even 50 %) of the measurements plus the
    # structural constraint perform comparably to the fully measured matrix.
    assert partial_80 <= full * 1.6
    assert partial_50 <= full * 1.9
