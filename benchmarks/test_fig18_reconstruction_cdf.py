"""Fig. 18 — fingerprint reconstruction error CDFs at multiple time stamps."""

import pytest

from repro.experiments.reporting import format_cdf_summary, format_key_values

from benchmarks._harness import run_once


@pytest.mark.figure("fig18")
def test_fig18_reconstruction_cdf(benchmark, multi_stamp_runner):
    result = run_once(benchmark, multi_stamp_runner.run, "fig18_reconstruction_cdf")
    print()
    print(
        format_cdf_summary(
            "Fig. 18 — per-column reconstruction errors [dB]",
            {f"day {d:g}": v for d, v in result["per_column_errors_db"].items()},
        )
    )
    print(
        format_key_values(
            "Paper medians (dB): 2.7 / 2.5 / 3.3 / 3.6 / 4.1 at days 3/5/15/45/90",
            result["median_errors_db"],
            unit="dB",
        )
    )
    # The reconstruction stays within a few dB of ground truth at every
    # stamp, i.e. comparable to the short-term RSS variation, as in the paper.
    for days, median in result["median_errors_db"].items():
        assert median < 5.0, f"day {days}: median reconstruction error {median} dB"
