"""Fig. 19 — reconstruction error across the hall / office / library environments."""

import numpy as np
import pytest

from repro.experiments.reporting import format_series_table

from benchmarks._harness import run_once


@pytest.mark.figure("fig19")
def test_fig19_environments(benchmark, runner):
    result = run_once(benchmark, runner.run, "fig19_environments")
    series = result["mean_errors_db"]
    print()
    print(
        format_series_table(
            "Fig. 19 — mean reconstruction error per environment", series, unit="dB"
        )
    )
    hall = np.mean(list(series["hall"].values()))
    library = np.mean(list(series["library"].values()))
    # Paper: the low-multipath hall reconstructs more accurately than the
    # rich-multipath library; all environments stay within a few dB.
    assert hall <= library + 0.5
    for name, values in series.items():
        assert np.mean(list(values.values())) < 6.0, name
