"""Fig. 20 — fingerprint update time cost versus deployment-area size."""

import numpy as np
import pytest

from benchmarks._harness import run_once


@pytest.mark.figure("fig20")
def test_fig20_labor_cost(benchmark, runner):
    result = run_once(benchmark, runner.run, "fig20_labor_cost")
    print()
    print("Fig. 20 — update time cost vs area scale (hours)")
    print(f"{'scale':>8}{'traditional':>14}{'iUpdater':>12}")
    for scale, traditional, iupdater in zip(
        result["scale_factors"], result["traditional_hours"], result["iupdater_hours"]
    ):
        print(f"{scale:>8.0f}{traditional:>14.2f}{iupdater:>12.3f}")
    # The traditional survey cost must dominate iUpdater at every scale and
    # grow much faster with area size.
    assert np.all(result["traditional_hours"] > result["iupdater_hours"])
    growth_traditional = result["traditional_hours"][-1] / result["traditional_hours"][0]
    growth_iupdater = result["iupdater_hours"][-1] / result["iupdater_hours"][0]
    assert growth_traditional > growth_iupdater
