"""Fig. 21 — localization error CDFs: ground truth vs iUpdater vs stale database."""

import numpy as np
import pytest

from repro.experiments.reporting import format_cdf_summary, format_key_values

from benchmarks._harness import run_once


@pytest.mark.figure("fig21")
def test_fig21_localization_cdf(benchmark, runner):
    result = run_once(benchmark, runner.run, "fig21_localization_cdf")
    print()
    print(
        format_cdf_summary(
            "Fig. 21 — localization errors @ 45 days [m]", result["errors_m"]
        )
    )
    print(
        format_key_values(
            "Paper medians: ground truth 0.78 m, iUpdater 1.1 m; ~54 % gain over stale",
            {
                **result["median_errors_m"],
                "improvement over stale": result["improvement_over_stale"],
            },
        )
    )
    medians = result["median_errors_m"]
    means = {label: float(np.mean(values)) for label, values in result["errors_m"].items()}
    # Shape: the updated database localizes at least as well as the stale one
    # and close to the freshly surveyed ground truth.
    assert means["iUpdater"] <= means["OMP w/o rec."] + 0.2
    assert medians["iUpdater"] <= medians["OMP w/o rec."] + 0.2
    assert medians["Groundtruth"] <= medians["iUpdater"] + 0.5
