"""Fig. 22 — localization errors in hall / office / library over time."""

import numpy as np
import pytest

from repro.experiments.reporting import format_key_values, format_series_table

from benchmarks._harness import run_once


@pytest.mark.figure("fig22")
def test_fig22_localization_environments(benchmark, runner):
    result = run_once(benchmark, runner.run, "fig22_localization_environments")
    print()
    for environment, series in result["mean_errors_m"].items():
        print(
            format_series_table(
                f"Fig. 22 — mean localization error, {environment}", series, unit="m"
            )
        )
    print(
        format_key_values(
            "Improvement of iUpdater over the stale database "
            "(paper: 66.7 % hall / 57.4 % office / 55.1 % library)",
            result["improvement_over_stale"],
        )
    )
    for environment, series in result["mean_errors_m"].items():
        updated = np.mean(list(series["iUpdater"].values()))
        stale = np.mean(list(series["OMP w/o rec."].values()))
        ground = np.mean(list(series["Groundtruth"].values()))
        # iUpdater must track the ground-truth database and not trail the
        # stale database in any environment.
        assert updated <= stale + 0.3, environment
        assert ground <= updated + 0.5, environment
