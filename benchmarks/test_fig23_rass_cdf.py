"""Fig. 23 — comparison with the RASS baseline at 45 days."""

import numpy as np
import pytest

from repro.experiments.reporting import format_cdf_summary, format_key_values

from benchmarks._harness import run_once


@pytest.mark.figure("fig23")
def test_fig23_rass_cdf(benchmark, runner):
    result = run_once(benchmark, runner.run, "fig23_rass_cdf")
    print()
    print(
        format_cdf_summary(
            "Fig. 23 — localization errors vs RASS @ 45 days [m]", result["errors_m"]
        )
    )
    print(
        format_key_values(
            "Paper medians: iUpdater 1.1 m, RASS w/ rec. 1.6 m, RASS w/o rec. 3.3 m",
            result["median_errors_m"],
            unit="m",
        )
    )
    means = {label: float(np.mean(values)) for label, values in result["errors_m"].items()}
    # Shape: iUpdater beats RASS, and RASS improves when given the
    # reconstructed matrix instead of the stale one.
    assert means["iUpdater"] <= means["RASS w/ rec."] + 0.3
    assert means["RASS w/ rec."] <= means["RASS w/o rec."] + 0.3
