"""Fig. 24 — comparison with the RASS baseline across time stamps."""

import numpy as np
import pytest

from repro.experiments.reporting import format_series_table

from benchmarks._harness import run_once


@pytest.mark.figure("fig24")
def test_fig24_rass_over_time(benchmark, multi_stamp_runner):
    result = run_once(benchmark, multi_stamp_runner.run, "fig24_rass_over_time")
    series = result["mean_errors_m"]
    print()
    print(
        format_series_table(
            "Fig. 24 — mean localization error vs RASS over time", series, unit="m"
        )
    )
    iupdater = np.mean(list(series["iUpdater"].values()))
    rass_with = np.mean(list(series["RASS w/ rec."].values()))
    rass_without = np.mean(list(series["RASS w/o rec."].values()))
    # Paper: iUpdater achieves the lowest average error; RASS benefits from
    # the reconstructed matrix.
    assert iupdater <= rass_with + 0.3
    assert rass_with <= rass_without + 0.3
