"""Incremental refresh: warm-started sweeps vs cold across a drift schedule.

A 10-site synthetic fleet is refreshed cold once (the previous generation),
then re-refreshed at three drift magnitudes — unchanged data, a small
additive measurement drift, and a large one — both cold and warm-started
from the previous generation's factors (``update_fleet(..., warm_from=...)``).
Sweeps-to-converge and wall time are printed as
``BENCH_incremental_refresh_*`` rows (JSON via ``REPRO_BENCH_JSON``).

Hard invariants (always asserted, deterministic on any host):

* the unchanged refresh converges with **zero** sweeps and reproduces the
  previous generation bit for bit;
* at small drift the warm path uses **>= 2x fewer sweeps** than cold;
* warm and cold land on estimates within a small dB tolerance of each other
  at every drift level (accuracy parity — warm starting must not trade
  accuracy for sweeps).

Wall-clock assertions are skipped under ``REPRO_SKIP_PERF_ASSERT`` (hosted
runners are noisy); the timings still land in the JSON artifact.  Runs
without the ``benchmark`` fixture so the rows are recorded even when
pytest-benchmark is unavailable.
"""

import json
import os
import time
from dataclasses import replace

import numpy as np
import pytest

from repro.core.self_augmented import SelfAugmentedConfig
from repro.core.updater import UpdaterConfig
from repro.service.service import UpdateService
from repro.service.synthetic import synthesize_fleet
from repro.service.types import FleetReport

FLEET_SITES = 10
# A tolerance both paths actually reach inside the sweep budget: with the
# pinned 1e-7 default nothing converges in 60 sweeps and cold and warm both
# burn the full budget, which measures nothing.
SOLVER = SelfAugmentedConfig(max_iterations=60, tolerance=1e-4)
#: (label, additive measurement-noise scale in dB) refresh schedule.
DRIFT_SCHEDULE = (("zero", 0.0), ("small", 0.003), ("large", 1.0))
ACCURACY_TOLERANCE_DB = 0.5


@pytest.fixture(scope="module")
def previous_generation():
    """The base fleet and its cold refresh (the daemon's last report)."""
    requests = synthesize_fleet(
        FLEET_SITES,
        elapsed_days=45.0,
        seed=11,
        link_count=(3, 4),
        locations_per_link=4,
        updater=UpdaterConfig(solver=SOLVER),
    )
    service = UpdateService()
    reports = service.update_fleet(requests)
    report = FleetReport(elapsed_days=45.0, reports=tuple(reports))
    return requests, report


def drifted_requests(base_requests, scale, seed=5):
    """The base fleet with additive measurement drift of magnitude ``scale``.

    Observed no-decrease entries and the fresh reference columns move by
    ``scale`` dB of Gaussian noise; masks, baselines and seeds stay fixed, so
    ``scale`` is the *only* thing that changes between generations.
    """
    rng = np.random.default_rng(seed)
    drifted = []
    for request in base_requests:
        observed = (
            request.no_decrease_matrix
            + scale
            * request.no_decrease_mask
            * rng.standard_normal(request.no_decrease_matrix.shape)
        )
        reference = request.reference_matrix + scale * rng.standard_normal(
            request.reference_matrix.shape
        )
        drifted.append(
            replace(
                request,
                no_decrease_matrix=observed,
                reference_matrix=reference,
            )
        )
    return drifted


def test_incremental_refresh_drift_schedule(previous_generation):
    """Cold vs warm refresh at zero / small / large drift."""
    base_requests, base_report = previous_generation
    service = UpdateService()

    rows = {
        "sites": FLEET_SITES,
        "tolerance": SOLVER.tolerance,
        "base_sweeps": sum(r.sweeps for r in base_report.reports),
    }
    results = {}
    for label, scale in DRIFT_SCHEDULE:
        requests = drifted_requests(base_requests, scale)

        start = time.perf_counter()
        cold = service.update_fleet(requests)
        cold_seconds = time.perf_counter() - start

        start = time.perf_counter()
        warm = service.update_fleet(requests, warm_from=base_report)
        warm_seconds = time.perf_counter() - start

        cold_sweeps = sum(r.sweeps for r in cold)
        warm_sweeps = sum(r.sweeps for r in warm)
        accuracy_gap = max(
            float(np.abs(a.estimate - b.estimate).mean())
            for a, b in zip(cold, warm)
        )
        results[label] = {
            "cold": cold,
            "warm": warm,
            "sweeps_saved": service.last_sweeps_saved,
        }
        rows.update(
            {
                f"{label}_drift_db": scale,
                f"{label}_cold_sweeps": cold_sweeps,
                f"{label}_warm_sweeps": warm_sweeps,
                f"{label}_sweep_ratio": round(
                    cold_sweeps / max(warm_sweeps, 1), 2
                ),
                f"{label}_cold_seconds": round(cold_seconds, 4),
                f"{label}_warm_seconds": round(warm_seconds, 4),
                f"{label}_accuracy_gap_db": round(accuracy_gap, 5),
            }
        )

    print()
    for key, value in rows.items():
        print(f"BENCH_incremental_refresh_{key}: {value}")

    json_path = os.environ.get("REPRO_BENCH_JSON")
    if json_path:
        with open(json_path, "w") as handle:
            json.dump({"incremental_refresh": rows}, handle, indent=2)

    # Hard invariants — deterministic, always on.
    # (1) Unchanged fleet: zero sweeps, previous generation reproduced bit
    # for bit, every saved sweep accounted for.
    zero = results["zero"]
    assert all(r.warm_started for r in zero["warm"])
    assert sum(r.sweeps for r in zero["warm"]) == 0
    for previous, warm in zip(base_report.reports, zero["warm"]):
        np.testing.assert_array_equal(previous.estimate, warm.estimate)
        np.testing.assert_array_equal(
            previous.result.solver.left, warm.result.solver.left
        )
    assert zero["sweeps_saved"] == {
        r.site: r.sweeps for r in base_report.reports
    }
    # (2) Small drift: warm start must save at least 2x the sweeps.
    small_cold = sum(r.sweeps for r in results["small"]["cold"])
    small_warm = sum(r.sweeps for r in results["small"]["warm"])
    assert small_warm * 2 <= small_cold, (
        f"warm refresh at small drift used {small_warm} sweeps vs "
        f"{small_cold} cold; expected >= 2x fewer"
    )
    # (3) Accuracy parity at every drift level.
    for label, _ in DRIFT_SCHEDULE:
        gap = rows[f"{label}_accuracy_gap_db"]
        assert gap <= ACCURACY_TOLERANCE_DB, (
            f"warm vs cold estimates diverge by {gap} dB at {label} drift"
        )
    # (4) The cold path itself stays deterministic: same requests, same
    # sweep counts as the base generation (the bit-parity pins live in
    # tests/; this guards the bench's own baseline).
    assert sum(r.sweeps for r in results["zero"]["cold"]) == rows["base_sweeps"]

    if os.environ.get("REPRO_SKIP_PERF_ASSERT"):
        pytest.skip("REPRO_SKIP_PERF_ASSERT set; BENCH_ rows recorded above")
    # Fewer sweeps must show up as wall time at small drift; generous slack
    # because prepare (MIC + LRR) is a fixed cost both paths pay.
    assert rows["small_warm_seconds"] < rows["small_cold_seconds"] * 1.05, (
        f"warm refresh not faster: {rows['small_warm_seconds']}s vs "
        f"{rows['small_cold_seconds']}s cold"
    )
