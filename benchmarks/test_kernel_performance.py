"""Micro-benchmarks of the heavy numerical kernels.

Unlike the figure benchmarks (which run a full experiment once and assert the
paper's qualitative shape), these time the individual solvers with repeated
pytest-benchmark rounds so performance regressions are visible.
"""

import os
import time
from dataclasses import replace

import numpy as np
import pytest

from repro.core.lrr import low_rank_representation
from repro.core.mic import select_reference_locations
from repro.core.rsvd import SOLVER_BACKENDS
from repro.core.self_augmented import SelfAugmentedConfig, self_augmented_rsvd
from repro.core.updater import UpdaterConfig
from repro.localization.omp import OMPLocalizer
from repro.service.fleet import FleetCampaign, FleetConfig
from repro.service.service import UpdateService
from repro.service.shard import ShardConfig
from repro.service.synthetic import synthesize_fleet
from repro.simulation.campaign import CampaignConfig
from repro.simulation.collector import CollectionConfig


@pytest.fixture(scope="module")
def office_matrix(runner):
    campaign = runner.cache.campaign("office")
    return campaign, campaign.database.original


def test_kernel_mic_selection(benchmark, office_matrix):
    _, original = office_matrix
    result = benchmark(select_reference_locations, original.values)
    assert result.count <= original.link_count


def test_kernel_lrr_solve(benchmark, office_matrix):
    _, original = office_matrix
    mic = select_reference_locations(original.values)
    result = benchmark(low_rank_representation, original.values, mic.mic_matrix)
    assert result.correlation.shape == (mic.count, original.location_count)


def test_kernel_self_augmented_solver(benchmark, office_matrix):
    campaign, original = office_matrix
    observed, mask = campaign.collector.collect_no_decrease(elapsed_days=45.0)
    mic = select_reference_locations(original.values)
    lrr = low_rank_representation(original.values, mic.mic_matrix)
    reference = campaign.collector.collect_reference(mic.indices, elapsed_days=45.0)
    prediction = lrr.predict(reference)
    config = SelfAugmentedConfig(max_iterations=10)

    result = benchmark.pedantic(
        self_augmented_rsvd,
        args=(observed, mask, original.locations_per_link),
        kwargs={"prediction": prediction, "config": config, "rng": 1},
        rounds=3,
        iterations=1,
    )
    assert result.estimate.shape == original.shape


def test_kernel_solver_backend_comparison(office_matrix):
    """Time the looped vs batched ALS backends on the office-sized problem.

    Runs without the ``benchmark`` fixture so the comparison is recorded even
    when pytest-benchmark is unavailable; results are printed as ``BENCH_*``
    rows so performance sweeps can grep them out of the log.
    """
    campaign, original = office_matrix
    observed, mask = campaign.collector.collect_no_decrease(elapsed_days=45.0)
    mic = select_reference_locations(original.values)
    lrr = low_rank_representation(original.values, mic.mic_matrix)
    reference = campaign.collector.collect_reference(mic.indices, elapsed_days=45.0)
    prediction = lrr.predict(reference)

    timings = {}
    estimates = {}
    for backend in SOLVER_BACKENDS:
        config = SelfAugmentedConfig(max_iterations=10, solver_backend=backend)
        rounds = []
        # Best-of-3 so one scheduler stall on a loaded CI runner cannot sink
        # the measured ratio below the assertion threshold.
        for _ in range(3):
            start = time.perf_counter()
            result = self_augmented_rsvd(
                observed,
                mask,
                original.locations_per_link,
                prediction=prediction,
                config=config,
                rng=1,
            )
            rounds.append(time.perf_counter() - start)
        timings[backend] = min(rounds)
        estimates[backend] = result.estimate

    speedup = timings["looped"] / timings["batched"]
    deviation = float(np.max(np.abs(estimates["batched"] - estimates["looped"])))
    print()
    print(f"BENCH_solver_backend_looped_seconds: {timings['looped']:.4f}")
    print(f"BENCH_solver_backend_batched_seconds: {timings['batched']:.4f}")
    print(f"BENCH_solver_backend_speedup: {speedup:.2f}x")
    print(f"BENCH_solver_backend_max_deviation_db: {deviation:.3e}")

    # The two backends iterate the same fixed-point map; at the default
    # (ill-conditioned) rank the iterates may drift apart by BLAS rounding
    # noise, but never by a physically meaningful RSS amount.
    assert deviation < 1e-4
    if os.environ.get("REPRO_SKIP_PERF_ASSERT"):
        pytest.skip("REPRO_SKIP_PERF_ASSERT set; BENCH_ rows recorded above")
    assert speedup > 1.5, f"batched backend not measurably faster ({speedup:.2f}x)"


@pytest.fixture(scope="module")
def paper_fleet_requests():
    """Fresh measurements for one 3-site refresh at the paper's scale."""
    fleet = FleetCampaign(
        config=FleetConfig(
            campaign=CampaignConfig(
                timestamps_days=(0.0, 45.0),
                collection=CollectionConfig(survey_samples=8, reference_samples=5),
                seed=7,
            )
        )
    )
    return fleet.build_requests(45.0)


def test_fleet_vs_looped_updates(paper_fleet_requests):
    """Time a 3-site fleet refresh: stacked vs per-site update loops.

    Compares three ways of refreshing the office + hall + library databases
    from identical measurements:

    * ``stacked``  — one ``UpdateService.update_fleet`` call; every sweep is
      a single stacked batched solve across all sites.
    * ``persite``  — a Python loop over single-site service calls, each with
      the batched ALS backend (what looping ``IUpdater.update`` costs).
    * ``looped``   — the same per-site loop on the per-column reference
      backend (the pre-batching baseline).

    Runs without the ``benchmark`` fixture so the BENCH_ rows are recorded
    even when pytest-benchmark is unavailable.
    """
    solver = SelfAugmentedConfig(max_iterations=10)
    service = UpdateService()

    def requests_with(backend):
        rebuilt = []
        for request in paper_fleet_requests:
            rebuilt.append(
                replace(
                    request,
                    config=replace(
                        request.config, solver=solver, solver_backend=backend
                    ),
                )
            )
        return rebuilt

    variants = {
        "stacked": lambda: service.update_fleet(requests_with("batched")),
        "persite": lambda: [service.update(r) for r in requests_with("batched")],
        "looped": lambda: [service.update(r) for r in requests_with("looped")],
    }
    timings = {}
    estimates = {}
    for name, run in variants.items():
        rounds = []
        # Best-of-3 so one scheduler stall on a loaded CI runner cannot sink
        # the measured ratio below the assertion threshold.
        for _ in range(3):
            start = time.perf_counter()
            reports = run()
            rounds.append(time.perf_counter() - start)
        timings[name] = min(rounds)
        estimates[name] = [report.estimate for report in reports]

    deviation = max(
        float(np.max(np.abs(stacked - persite)))
        for stacked, persite in zip(estimates["stacked"], estimates["persite"])
    )
    vs_looped = timings["looped"] / timings["stacked"]
    vs_persite = timings["persite"] / timings["stacked"]
    print()
    print(f"BENCH_fleet_vs_looped_stacked_seconds: {timings['stacked']:.4f}")
    print(f"BENCH_fleet_vs_looped_persite_seconds: {timings['persite']:.4f}")
    print(f"BENCH_fleet_vs_looped_looped_seconds: {timings['looped']:.4f}")
    print(f"BENCH_fleet_vs_looped_speedup: {vs_looped:.2f}x")
    print(f"BENCH_fleet_vs_looped_persite_speedup: {vs_persite:.2f}x")
    print(f"BENCH_fleet_vs_looped_max_deviation_db: {deviation:.3e}")

    # Stacking must not perturb any site's result: batched LU factorises each
    # slice independently and ranks are solved per rank group.
    assert deviation == 0.0
    if os.environ.get("REPRO_SKIP_PERF_ASSERT"):
        pytest.skip("REPRO_SKIP_PERF_ASSERT set; BENCH_ rows recorded above")
    assert vs_looped > 1.5, f"stacked fleet not faster than looped updates ({vs_looped:.2f}x)"
    # At 3-site scale the stacked path is ~parity with a per-site batched
    # loop (the win over that baseline grows with fleet size); the ratio
    # hovers around 1.0x, so only guard against a pathological slowdown —
    # a tight floor here flakes on loaded runners.
    assert vs_persite > 0.5, f"stacked fleet much slower than per-site batched loop ({vs_persite:.2f}x)"


@pytest.fixture(scope="module")
def shard_fleet_requests():
    """A 64-site synthetic fleet with three factorisation ranks."""
    return synthesize_fleet(
        64,
        elapsed_days=45.0,
        seed=11,
        link_count=(4, 5, 6),
        locations_per_link=6,
        collection=CollectionConfig(
            survey_samples=3, reference_samples=2, online_samples=1
        ),
        updater=UpdaterConfig(solver=SelfAugmentedConfig(max_iterations=10)),
    )


def test_shard_scaling(shard_fleet_requests):
    """Time a 64-site fleet refresh: unsharded vs byte-budget-sharded.

    Sharding must bound the peak per-sweep system-stack bytes (the plan's
    memory high-water mark) without giving back the stacked-solve speedup
    over a per-site service loop.  Runs without the ``benchmark`` fixture so
    the BENCH_ rows are recorded even when pytest-benchmark is unavailable.
    """
    service = UpdateService()
    budget = 64 * 1024  # forces several shards per rank group at this size

    variants = {
        "unsharded": lambda: service.update_fleet(shard_fleet_requests),
        "sharded": lambda: service.update_fleet(
            shard_fleet_requests, shards=ShardConfig(max_stack_bytes=budget)
        ),
        "persite": lambda: [service.update(r) for r in shard_fleet_requests],
    }
    timings = {}
    estimates = {}
    plans = {}
    for name, run in variants.items():
        rounds = []
        # Best-of-3 so one scheduler stall on a loaded CI runner cannot sink
        # the measured ratio below the assertion threshold.
        for _ in range(3):
            start = time.perf_counter()
            reports = run()
            rounds.append(time.perf_counter() - start)
        timings[name] = min(rounds)
        estimates[name] = [report.estimate for report in reports]
        plans[name] = service.last_plan

    deviation = max(
        float(np.max(np.abs(a - b)))
        for a, b in zip(estimates["unsharded"], estimates["sharded"])
    )
    unsharded_peak = plans["unsharded"].peak_stack_bytes
    sharded_peak = plans["sharded"].peak_stack_bytes
    vs_persite = timings["persite"] / timings["sharded"]
    print()
    print(f"BENCH_shard_scaling_sites: {len(shard_fleet_requests)}")
    print(f"BENCH_shard_scaling_unsharded_seconds: {timings['unsharded']:.4f}")
    print(f"BENCH_shard_scaling_sharded_seconds: {timings['sharded']:.4f}")
    print(f"BENCH_shard_scaling_persite_seconds: {timings['persite']:.4f}")
    print(f"BENCH_shard_scaling_unsharded_peak_stack_bytes: {unsharded_peak}")
    print(f"BENCH_shard_scaling_sharded_peak_stack_bytes: {sharded_peak}")
    print(f"BENCH_shard_scaling_shard_count: {plans['sharded'].shard_count}")
    print(f"BENCH_shard_scaling_speedup_vs_persite: {vs_persite:.2f}x")
    print(f"BENCH_shard_scaling_max_deviation_db: {deviation:.3e}")

    # Sharding must not perturb any site's result (rank grouping + per-slice
    # batched LU), and the byte budget must actually bound the stack.
    assert deviation == 0.0
    assert sharded_peak <= budget
    assert sharded_peak < unsharded_peak
    assert plans["sharded"].shard_count > plans["unsharded"].shard_count
    if os.environ.get("REPRO_SKIP_PERF_ASSERT"):
        pytest.skip("REPRO_SKIP_PERF_ASSERT set; BENCH_ rows recorded above")
    # The stacked solve's win over a per-site service loop must survive
    # sharding (loose floors: CI runners are noisy).
    assert vs_persite > 1.1, f"sharded fleet not faster than per-site loop ({vs_persite:.2f}x)"
    assert timings["sharded"] < 3.0 * timings["unsharded"], (
        f"sharding overhead pathological: {timings['sharded']:.3f}s vs "
        f"{timings['unsharded']:.3f}s unsharded"
    )


def test_kernel_omp_localization(benchmark, office_matrix):
    campaign, original = office_matrix
    locations = campaign.deployment.location_array()
    localizer = OMPLocalizer(original, locations)
    measurement = original.column(10) + 0.5

    index = benchmark(localizer.localize_index, measurement)
    assert 0 <= index < original.location_count
