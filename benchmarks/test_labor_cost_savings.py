"""Section VI-C text — labor-cost savings of 97.9 % / 92.1 % in the office."""

import pytest

from repro.experiments.reporting import format_key_values

from benchmarks._harness import run_once


@pytest.mark.figure("labor-cost")
def test_labor_cost_savings(benchmark, runner):
    result = run_once(benchmark, runner.run, "labor_cost_savings")
    print()
    print(
        format_key_values(
            "Labor cost (office, 94 grids, 8 reference locations)",
            {
                "iUpdater update time [s]": result["iupdater_seconds"],
                "paper iUpdater time [s]": result["paper_iupdater_seconds"],
                "traditional (50 samples) [min]": result["traditional_50_samples_minutes"],
                "paper traditional [min]": result["paper_traditional_minutes"],
                "saving vs 50-sample survey": result["saving_vs_50_samples"],
                "paper saving vs 50 samples": result["paper_saving_vs_50_samples"],
                "saving vs 5-sample survey": result["saving_vs_5_samples"],
                "paper saving vs 5 samples": result["paper_saving_vs_5_samples"],
            },
        )
    )
    assert result["iupdater_seconds"] == pytest.approx(55.0, abs=1.0)
    assert result["traditional_50_samples_minutes"] == pytest.approx(46.9, abs=0.2)
    assert result["saving_vs_50_samples"] == pytest.approx(0.979, abs=0.01)
    assert result["saving_vs_5_samples"] == pytest.approx(0.921, abs=0.01)
