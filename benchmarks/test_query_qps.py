"""Serving throughput: looped vs vectorized queries/sec on the read path.

A refreshed synthetic site is published into two :class:`QueryEngine`
variants — the per-query ``"looped"`` reference backend and the batched
``"vectorized"`` backend — and the same query workload is timed through
both at batch sizes 1, 64 and 1024.  Answers must be identical (the parity
invariant the serving engine rests on); the rows are printed as
``BENCH_query_qps_*`` (and optionally written as JSON for CI artifacts via
``REPRO_BENCH_JSON``).

The hard performance assertion — the vectorized backend clears ≥ 10x the
looped throughput at the 1024-query batch — is the point of the read path:
one distance-matrix GEMM instead of 1024 per-query evaluations.  It can be
skipped on noisy runners via ``REPRO_SKIP_PERF_ASSERT``; the parity
assertions always run.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.query import QueryConfig, QueryEngine
from repro.service.service import UpdateService
from repro.service.synthetic import synthesize_fleet
from repro.service.types import FleetReport

BATCH_SIZES = (1, 64, 1024)
REPEATS = 3
MIN_SPEEDUP_AT_1024 = 10.0


@pytest.fixture(scope="module")
def served_site():
    """One genuinely refreshed site published into both engine backends."""
    requests = synthesize_fleet(
        1, elapsed_days=45.0, seed=11, link_count=8, locations_per_link=8
    )
    reports = UpdateService().update_fleet(requests)
    report = FleetReport(elapsed_days=45.0, reports=tuple(reports))
    engines = {
        backend: QueryEngine(QueryConfig(matcher="knn", matcher_backend=backend))
        for backend in ("looped", "vectorized")
    }
    for engine in engines.values():
        engine.publish_report(report)
    site = report.sites[0]
    return engines, site, report.report_for(site).matrix


def test_query_qps_vectorized_vs_looped(served_site):
    """Identical answers, ≥ 10x throughput at the 1024-query batch."""
    engines, site, matrix = served_site
    rng = np.random.default_rng(29)

    rows = {
        "links": matrix.link_count,
        "grids": matrix.location_count,
        "matcher": "knn",
    }
    qps = {}
    for batch_size in BATCH_SIZES:
        truth = rng.integers(0, matrix.location_count, size=batch_size)
        queries = matrix.values.T[truth] + rng.normal(
            0.0, 0.5, size=(batch_size, matrix.link_count)
        )
        answers = {}
        for backend, engine in engines.items():
            best = float("inf")
            for _ in range(REPEATS):
                start = time.perf_counter()
                answers[backend] = engine.localize_batch(site, queries)
                best = min(best, time.perf_counter() - start)
            qps[(backend, batch_size)] = batch_size / best

        # Hard invariant: vectorization never changes an answer.
        np.testing.assert_array_equal(
            answers["vectorized"].indices, answers["looped"].indices
        )
        np.testing.assert_allclose(
            answers["vectorized"].points, answers["looped"].points, atol=1e-10
        )

        rows[f"looped_qps_b{batch_size}"] = round(qps[("looped", batch_size)], 1)
        rows[f"vectorized_qps_b{batch_size}"] = round(
            qps[("vectorized", batch_size)], 1
        )
        rows[f"speedup_b{batch_size}"] = round(
            qps[("vectorized", batch_size)] / qps[("looped", batch_size)], 2
        )

    print()
    for key, value in rows.items():
        print(f"BENCH_query_qps_{key}: {value}")

    json_path = os.environ.get("REPRO_BENCH_JSON")
    if json_path:
        with open(json_path, "w") as handle:
            json.dump({"query_qps": rows}, handle, indent=2)

    if os.environ.get("REPRO_SKIP_PERF_ASSERT"):
        pytest.skip("REPRO_SKIP_PERF_ASSERT set; BENCH_ rows recorded above")
    largest = BATCH_SIZES[-1]
    speedup = rows[f"speedup_b{largest}"]
    assert speedup >= MIN_SPEEDUP_AT_1024, (
        f"vectorized backend only {speedup:.1f}x over looped at "
        f"{largest}-query batches; the GEMM path should clear "
        f"{MIN_SPEEDUP_AT_1024:.0f}x"
    )
