"""Labor-cost planning for large-scale deployments.

The practical selling point of iUpdater is the survey effort it removes.
This example uses the labor-cost model (Section VI-C / Fig. 20) to answer a
deployment-planning question: *how long does it take to keep the fingerprint
database fresh in areas of increasing size, with a traditional full re-survey
versus iUpdater's reference-only updates?*

Run with::

    python examples/labor_cost_planning.py
"""

from __future__ import annotations

from repro.simulation.labor import LaborCostConfig, LaborCostModel


def main() -> None:
    model = LaborCostModel(LaborCostConfig())

    # Paper's office numbers: 94 grids, 8 reference locations.
    traditional = model.traditional_cost(94)
    iupdater = model.iupdater_cost(8)
    print("Office (94 grids, 8 reference locations)")
    print(f"  traditional full re-survey : {traditional.minutes:6.1f} min")
    print(f"  iUpdater update            : {iupdater.seconds:6.1f} s")
    print(f"  saving                     : {model.saving_fraction(94, 8) * 100:5.1f} %")
    print(
        "  saving vs 5-sample survey  : "
        f"{model.saving_fraction(94, 8, traditional_samples=5) * 100:5.1f} %"
    )

    # Scaling the monitored area (Fig. 20): grids grow with the square of the
    # edge length, reference locations only with the number of links.
    print("\nScaling the monitored area (hours per database refresh)")
    print(f"{'edge scale':>11} {'grids':>8} {'traditional':>13} {'iUpdater':>10}")
    curves = model.cost_versus_area(
        base_edge_locations=94, base_reference_locations=8, scale_factors=range(1, 11)
    )
    for scale, traditional_hours, iupdater_hours in zip(
        curves["scale_factors"], curves["traditional_hours"], curves["iupdater_hours"]
    ):
        grids = int(round(94 * scale * scale))
        print(
            f"{scale:>11.0f} {grids:>8d} {traditional_hours:>13.2f} {iupdater_hours:>10.3f}"
        )

    # Weekly maintenance budget for a shopping-mall-sized deployment.
    scale = 6
    weekly_traditional = curves["traditional_hours"][scale - 1] * 7
    weekly_iupdater = curves["iupdater_hours"][scale - 1] * 7
    print(
        f"\nKeeping a {scale}x-edge deployment fresh with daily updates costs "
        f"{weekly_traditional:.1f} person-hours per week traditionally versus "
        f"{weekly_iupdater:.2f} with iUpdater."
    )


if __name__ == "__main__":
    main()
