"""Multi-environment study: hall vs office vs library, as one fleet.

The paper evaluates iUpdater in three environments with very different
multipath characteristics (an empty hall, a furnished office, and a library
full of metal book racks).  This example reproduces that comparison through
the fleet update service: a single :class:`repro.FleetCampaign` deploys all
three sites and refreshes them together — every alternating-least-squares
sweep of the three reconstructions runs as one stacked batched solve.  Per
environment it prints:

* the approximately-low-rank diagnostic of the fingerprint matrix (Fig. 5),
* the reconstruction error of an update after 45 days (Fig. 19), and
* the mean localization error with the stale vs updated database (Fig. 22).

Run with::

    python examples/multi_environment_study.py

Set ``REPRO_EXAMPLE_QUICK=1`` to shrink the deployments (used by the
headless example smoke test).
"""

from __future__ import annotations

import os

import numpy as np

from repro import (
    CampaignConfig,
    FleetCampaign,
    FleetConfig,
    environment_by_name,
)
from repro.core.analysis import low_rank_report
from repro.simulation.collector import CollectionConfig

QUICK = bool(os.environ.get("REPRO_EXAMPLE_QUICK"))

LABELS = {
    "hall": "hall (low multipath)",
    "office": "office (medium multipath)",
    "library": "library (high multipath)",
}


def main() -> None:
    elapsed_days = 45.0
    overrides = {"link_count": 4, "locations_per_link": 5} if QUICK else {}
    specs = {name: environment_by_name(name, **overrides) for name in LABELS}
    fleet = FleetCampaign(
        specs=specs,
        config=FleetConfig(
            environments=tuple(specs),
            campaign=CampaignConfig(
                timestamps_days=(0.0, elapsed_days),
                collection=CollectionConfig(
                    survey_samples=3 if QUICK else 8, reference_samples=5
                ),
                seed=19,
            ),
        ),
    )

    # One stacked refresh updates every site's database at the 45-day stamp.
    report = fleet.refresh(elapsed_days)
    trials = 6 if QUICK else 30

    for site in fleet.sites:
        campaign = fleet.campaign(site)
        spec = fleet.specs[site]
        original = campaign.database.original
        site_report = report.report_for(site)

        diagnostics = low_rank_report(original.values)
        test_indices = campaign.sample_test_locations(trials)
        stale_loc = campaign.localization_errors(original, test_indices, elapsed_days)
        updated_loc = campaign.localization_errors(
            site_report.matrix, test_indices, elapsed_days
        )

        print(f"\n=== {LABELS[site]} ===")
        print(
            f"links: {spec.link_count}, locations: {spec.total_locations}, "
            f"grid spacing: {spec.grid_spacing_m} m"
        )
        print(
            "leading singular value energy: "
            f"{diagnostics.leading_energy_fraction:.2f} "
            f"(approximately low rank: {diagnostics.approximately_low_rank})"
        )
        print(
            f"reconstruction error after {elapsed_days:.0f} days: "
            f"{report.errors_db[site]:.2f} dB "
            f"(stale database: {report.stale_errors_db[site]:.2f} dB)"
        )
        print(
            f"mean localization error: stale {np.mean(stale_loc):.2f} m, "
            f"updated {np.mean(updated_loc):.2f} m"
        )

    aggregate = report.aggregate()
    print(
        f"\nFleet aggregate: {int(aggregate['sites'])} sites refreshed in "
        f"{int(aggregate['stacked_sweeps'])} stacked sweeps, "
        f"mean error {aggregate['mean_error_db']:.2f} dB "
        f"(stale {aggregate['mean_stale_error_db']:.2f} dB)."
    )
    print(
        "As in the paper, the low-multipath hall reconstructs most accurately "
        "and the library is the hardest environment, yet the updated database "
        "beats the stale one everywhere."
    )


if __name__ == "__main__":
    main()
