"""Multi-environment study: hall vs office vs library.

The paper evaluates iUpdater in three environments with very different
multipath characteristics (an empty hall, a furnished office, and a library
full of metal book racks).  This example reproduces that comparison on the
simulated substrate and prints, per environment:

* the approximately-low-rank diagnostic of the fingerprint matrix (Fig. 5),
* the reconstruction error of an update after 45 days (Fig. 19), and
* the mean localization error with the stale vs updated database (Fig. 22).

Run with::

    python examples/multi_environment_study.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CampaignConfig,
    SurveyCampaign,
    hall_environment,
    library_environment,
    office_environment,
)
from repro.core.analysis import low_rank_report
from repro.simulation.collector import CollectionConfig


def main() -> None:
    specs = {
        "hall (low multipath)": hall_environment(),
        "office (medium multipath)": office_environment(),
        "library (high multipath)": library_environment(),
    }
    elapsed_days = 45.0

    for label, spec in specs.items():
        campaign = SurveyCampaign(
            spec,
            CampaignConfig(
                timestamps_days=(0.0, elapsed_days),
                collection=CollectionConfig(survey_samples=8, reference_samples=5),
                seed=19,
            ),
        )
        original = campaign.database.original
        ground_truth = campaign.ground_truth(elapsed_days)

        report = low_rank_report(original.values)
        result = campaign.run_update(elapsed_days)
        recon_error = result.matrix.reconstruction_error_db(ground_truth)
        stale_error = original.reconstruction_error_db(ground_truth)

        test_indices = campaign.sample_test_locations(30)
        stale_loc = campaign.localization_errors(original, test_indices, elapsed_days)
        updated_loc = campaign.localization_errors(result.matrix, test_indices, elapsed_days)

        print(f"\n=== {label} ===")
        print(
            f"links: {spec.link_count}, locations: {spec.total_locations}, "
            f"grid spacing: {spec.grid_spacing_m} m"
        )
        print(
            "leading singular value energy: "
            f"{report.leading_energy_fraction:.2f} "
            f"(approximately low rank: {report.approximately_low_rank})"
        )
        print(
            f"reconstruction error after {elapsed_days:.0f} days: "
            f"{recon_error:.2f} dB (stale database: {stale_error:.2f} dB)"
        )
        print(
            f"mean localization error: stale {np.mean(stale_loc):.2f} m, "
            f"updated {np.mean(updated_loc):.2f} m"
        )

    print(
        "\nAs in the paper, the low-multipath hall reconstructs most accurately "
        "and the library is the hardest environment, yet the updated database "
        "beats the stale one everywhere."
    )


if __name__ == "__main__":
    main()
