"""Long-term maintenance of an office deployment over three months.

Reproduces the paper's maintenance scenario: a fingerprint database is built
once, and over the following three months the environment drifts.  At each
of the paper's survey points (3, 5, 15, 45, 90 days) the operator re-measures
only the MIC reference locations and lets iUpdater reconstruct the full
database.  The script reports, per time stamp:

* the drift of the true fingerprints relative to day 0,
* the reconstruction error of the updated database, and
* the median localization error using the stale, updated, and fresh matrices.

Run with::

    python examples/office_long_term_update.py

Set ``REPRO_EXAMPLE_QUICK=1`` to shrink the deployment and schedule (used by
the headless example smoke test).
"""

from __future__ import annotations

import os

import numpy as np

from repro import CampaignConfig, OMPLocalizer, SurveyCampaign, office_environment
from repro.localization.metrics import summarize_errors
from repro.simulation.collector import CollectionConfig

QUICK = bool(os.environ.get("REPRO_EXAMPLE_QUICK"))


def median_localization_error(campaign, matrix, test_indices, measurements) -> float:
    """Median localization error (metres) for pre-drawn online measurements."""
    locations = campaign.deployment.location_array()
    localizer = OMPLocalizer(matrix, locations)
    errors = []
    for row, true_index in zip(measurements, test_indices):
        estimate = localizer.localize_point(row)
        errors.append(float(np.linalg.norm(estimate - locations[int(true_index)])))
    return summarize_errors(errors).median_m


def main() -> None:
    spec = (
        office_environment(link_count=4, locations_per_link=5)
        if QUICK
        else office_environment()
    )
    stamps = (3.0, 45.0) if QUICK else (3.0, 5.0, 15.0, 45.0, 90.0)
    campaign = SurveyCampaign(
        spec,
        CampaignConfig(
            timestamps_days=(0.0, *stamps),
            collection=CollectionConfig(
                survey_samples=3 if QUICK else 8, reference_samples=5
            ),
            seed=7,
        ),
    )
    original = campaign.database.original
    updater = campaign.make_updater()
    test_indices = campaign.sample_test_locations(8 if QUICK else 40)

    print("Office deployment, 3-month maintenance schedule")
    print(f"Reference locations re-measured per update: {len(updater.reference_indices)}")
    print()
    header = (
        f"{'day':>5} {'drift[dB]':>10} {'recon err[dB]':>14} "
        f"{'stale med[m]':>13} {'updated med[m]':>15} {'fresh med[m]':>13}"
    )
    print(header)

    for days in stamps:
        ground_truth = campaign.ground_truth(days)
        drift = np.mean(np.abs(ground_truth.values - original.values))
        result = campaign.run_update(days, updater=updater)
        recon_error = result.matrix.reconstruction_error_db(ground_truth)

        measurements = campaign.online_measurements(test_indices, days)
        stale_median = median_localization_error(campaign, original, test_indices, measurements)
        updated_median = median_localization_error(
            campaign, result.matrix, test_indices, measurements
        )
        fresh_median = median_localization_error(
            campaign, ground_truth, test_indices, measurements
        )
        print(
            f"{days:>5.0f} {drift:>10.2f} {recon_error:>14.2f} "
            f"{stale_median:>13.2f} {updated_median:>15.2f} {fresh_median:>13.2f}"
        )

    print(
        "\nThe updated database tracks the fresh survey at a fraction of the "
        "labor cost, while the stale database degrades as the drift grows."
    )


if __name__ == "__main__":
    main()
