"""Quickstart: update a stale fingerprint database and localize a target.

This walks through the full iUpdater pipeline on the simulated office
testbed:

1. simulate the deployment and survey the original fingerprint database,
2. 45 days later, collect only the no-decrease measurements (nobody present)
   plus fresh RSS at the 8 MIC reference locations,
3. reconstruct the whole fingerprint matrix with the self-augmented RSVD,
4. localize a person from a single online RSS vector with OMP, and
5. compare against the stale database and a fresh full survey.

Run with::

    python examples/quickstart.py

Set ``REPRO_EXAMPLE_QUICK=1`` to shrink the deployment (used by the headless
example smoke test).
"""

from __future__ import annotations

import os

import numpy as np

from repro import CampaignConfig, OMPLocalizer, SurveyCampaign, office_environment
from repro.simulation.collector import CollectionConfig

QUICK = bool(os.environ.get("REPRO_EXAMPLE_QUICK"))


def main() -> None:
    # ---------------------------------------------------------------- setup
    spec = (
        office_environment(link_count=4, locations_per_link=5)
        if QUICK
        else office_environment()
    )
    campaign = SurveyCampaign(
        spec,
        CampaignConfig(
            timestamps_days=(0.0, 45.0),
            collection=CollectionConfig(
                survey_samples=3 if QUICK else 10, reference_samples=5
            ),
            seed=42,
        ),
    )
    print(f"Environment: {spec.name} ({spec.width_m} m x {spec.height_m} m)")
    print(f"Links: {spec.link_count}, grid locations: {spec.total_locations}")

    original = campaign.database.original
    ground_truth_45 = campaign.ground_truth(45.0)
    drift = np.mean(np.abs(ground_truth_45.values - original.values))
    print(f"\nAfter 45 days the fingerprints drifted by {drift:.2f} dB on average.")

    # ------------------------------------------------------------- update DB
    updater = campaign.make_updater()
    print(f"\nMIC reference locations to re-measure: {list(updater.reference_indices)}")
    print(
        f"That is {len(updater.reference_indices)} of "
        f"{spec.total_locations} locations (labor saving > 90 %)."
    )

    result = campaign.run_update(45.0, updater=updater)
    updated_error = result.matrix.reconstruction_error_db(ground_truth_45)
    stale_error = original.reconstruction_error_db(ground_truth_45)
    print(f"\nReconstruction error vs fresh survey: {updated_error:.2f} dB")
    print(f"Stale database error vs fresh survey : {stale_error:.2f} dB")

    # ------------------------------------------------------------ localization
    locations = campaign.deployment.location_array()
    localizer_updated = OMPLocalizer(result.matrix, locations)
    localizer_stale = OMPLocalizer(original, locations)

    # A grid index in the middle of the area.
    true_location = 7 if QUICK else 37
    online = campaign.collector.online_measurement(true_location, elapsed_days=45.0)

    estimate_updated = localizer_updated.localize_point(online)
    estimate_stale = localizer_stale.localize_point(online)
    truth = locations[true_location]
    print(f"\nTrue target location       : ({truth[0]:.2f}, {truth[1]:.2f}) m")
    print(
        "Estimate with updated DB   : "
        f"({estimate_updated[0]:.2f}, {estimate_updated[1]:.2f}) m, "
        f"error {np.linalg.norm(estimate_updated - truth):.2f} m"
    )
    print(
        "Estimate with stale DB     : "
        f"({estimate_stale[0]:.2f}, {estimate_stale[1]:.2f}) m, "
        f"error {np.linalg.norm(estimate_stale - truth):.2f} m"
    )


if __name__ == "__main__":
    main()
