"""Reproduction of the iUpdater device-free localization system (ICDCS 2017).

The package is organised around the paper's pipeline:

* :mod:`repro.rf` and :mod:`repro.environments` provide the simulated radio
  substrate that stands in for the paper's physical Wi-Fi testbeds.
* :mod:`repro.fingerprint` holds the fingerprint matrix machinery.
* :mod:`repro.core` implements the paper's contribution: MIC selection,
  low-rank representation, the basic and self-augmented RSVD solvers and the
  high-level :class:`~repro.core.updater.IUpdater` pipeline.
* :mod:`repro.service` is the canonical entry point for refreshing
  fingerprint databases: the :class:`~repro.service.service.UpdateService`
  request/response API runs whole fleets of sites through rank-grouped,
  cache-budgeted shards of stacked batched solves — in-process or scattered
  over worker processes via the pluggable
  :mod:`~repro.service.executor` backends — and
  :class:`~repro.service.fleet.FleetCampaign` drives the paper's three
  environments per survey stamp.  ``IUpdater`` remains as a single-site
  adapter over the service.
* :mod:`repro.io` serializes fleets, query workloads and answers to and
  from disk: the NPZ+JSON wire format behind ``fleet export`` / ``fleet run
  --in/--out`` and ``query export`` / ``query run``.
* :mod:`repro.localization` implements the OMP localizer and the KNN / SVR /
  RASS baselines.
* :mod:`repro.query` is the read-path counterpart of the service: the
  :class:`~repro.query.engine.QueryEngine` serves batched localization
  queries against immutable per-site
  :class:`~repro.query.index.QueryIndex` snapshots of refreshed fleet
  databases, with atomic generation hot-swap and an LRU result cache.
* :mod:`repro.daemon` runs both halves as one always-on system: a
  long-running :class:`~repro.daemon.coordinator.Coordinator` with a
  persistent job queue (priorities, retry with backoff, crash recovery)
  executes fleet refreshes over a shared process pool and auto-publishes
  every completed report into its embedded query engine; the
  submit / status / result / cancel / localize API is served over HTTP
  (``daemon start`` CLI, :class:`~repro.daemon.client.DaemonClient`).
* :mod:`repro.simulation` drives multi-timestamp survey campaigns and the
  labor-cost model.
* :mod:`repro.experiments` regenerates every figure of the paper's
  evaluation section and exposes the CLI (including the ``fleet``
  subcommand).
"""

from repro.core.updater import IUpdater, UpdaterConfig, UpdateResult
from repro.daemon import (
    Coordinator,
    DaemonClient,
    DaemonConfig,
    DaemonServer,
    JobQueue,
    JobRecord,
)
from repro.environments import (
    build_deployment,
    environment_by_name,
    hall_environment,
    library_environment,
    office_environment,
)
from repro.fingerprint.matrix import FingerprintMatrix
from repro.fingerprint.database import FingerprintDatabase
from repro.io import (
    FleetDelta,
    apply_delta,
    load_answers,
    load_delta,
    load_queries,
    load_report,
    load_requests,
    report_fingerprint,
    save_answers,
    save_delta,
    save_queries,
    save_report,
    save_requests,
)
from repro.localization.omp import OMPLocalizer
from repro.query import (
    GenerationStore,
    QueryAnswer,
    QueryBatch,
    QueryConfig,
    QueryEngine,
    QueryIndex,
    grid_locations,
    indexes_from_report,
)
from repro.service import (
    Fault,
    FaultPlan,
    FleetCampaign,
    FleetConfig,
    FleetReport,
    InvalidWorkerCountError,
    PooledProcessExecutor,
    ProcessExecutor,
    RemoteExecutor,
    RemoteShardError,
    SerialExecutor,
    ShardConfig,
    ShardExecutor,
    ShardPlan,
    UpdateReport,
    UpdateRequest,
    UpdateService,
    WarmFactors,
    WorkerServer,
    synthesize_fleet,
)
from repro.simulation.campaign import SurveyCampaign, CampaignConfig

__version__ = "1.7.0"

__all__ = [
    "UpdateRequest",
    "UpdateReport",
    "FleetReport",
    "UpdateService",
    "FleetCampaign",
    "FleetConfig",
    "ShardConfig",
    "ShardPlan",
    "ShardExecutor",
    "SerialExecutor",
    "ProcessExecutor",
    "PooledProcessExecutor",
    "RemoteExecutor",
    "WorkerServer",
    "Fault",
    "FaultPlan",
    "RemoteShardError",
    "InvalidWorkerCountError",
    "Coordinator",
    "DaemonConfig",
    "DaemonServer",
    "DaemonClient",
    "JobQueue",
    "JobRecord",
    "WarmFactors",
    "save_requests",
    "load_requests",
    "save_report",
    "load_report",
    "save_queries",
    "load_queries",
    "save_answers",
    "load_answers",
    "FleetDelta",
    "report_fingerprint",
    "save_delta",
    "load_delta",
    "apply_delta",
    "QueryEngine",
    "QueryConfig",
    "QueryIndex",
    "QueryBatch",
    "QueryAnswer",
    "GenerationStore",
    "indexes_from_report",
    "grid_locations",
    "synthesize_fleet",
    "IUpdater",
    "UpdaterConfig",
    "UpdateResult",
    "FingerprintMatrix",
    "FingerprintDatabase",
    "OMPLocalizer",
    "SurveyCampaign",
    "CampaignConfig",
    "office_environment",
    "library_environment",
    "hall_environment",
    "environment_by_name",
    "build_deployment",
    "__version__",
]
