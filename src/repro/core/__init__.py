"""Core algorithms: the paper's primary contribution.

* :mod:`repro.core.constraints` — the structural matrices ``T`` (neighbour
  relationship), ``G`` (location continuity) and ``H`` (adjacent-link
  similarity) of Section IV-C.
* :mod:`repro.core.mic` — maximum-independent-column (reference location)
  selection of Section IV-B.
* :mod:`repro.core.lrr` — low-rank representation (inherent correlation
  matrix ``Z``) solved with an inexact augmented Lagrange multiplier method.
* :mod:`repro.core.rsvd` — the basic regularized-SVD matrix factorisation of
  Section IV-A.
* :mod:`repro.core.self_augmented` — the self-augmented RSVD solver
  (Algorithm 1) combining the basic RSVD with both constraints.
* :mod:`repro.core.stacked` — the lockstep driver advancing many sites'
  :class:`~repro.core.self_augmented.SweepState` solves through one stacked
  batched solve per sweep (the fleet service's engine).
* :mod:`repro.core.analysis` — SVD / NLC / ALS diagnostics used in Section II.
* :mod:`repro.core.updater` — the high-level :class:`IUpdater` pipeline.
"""

from repro.core.analysis import (
    als_values,
    low_rank_report,
    nlc_values,
    singular_value_profile,
)
from repro.core.constraints import (
    continuity_matrix,
    relationship_matrix,
    similarity_matrix,
)
from repro.core.lrr import LRRConfig, LRRResult, low_rank_representation
from repro.core.mic import MICResult, select_reference_locations
from repro.core.rsvd import RSVDConfig, RSVDResult, rsvd_complete
from repro.core.self_augmented import (
    SelfAugmentedConfig,
    SelfAugmentedResult,
    SweepState,
    self_augmented_rsvd,
    solve_state,
)
from repro.core.stacked import run_stacked_sweeps, solve_states
from repro.core.updater import IUpdater, UpdaterConfig, UpdateResult

__all__ = [
    "als_values",
    "low_rank_report",
    "nlc_values",
    "singular_value_profile",
    "continuity_matrix",
    "relationship_matrix",
    "similarity_matrix",
    "LRRConfig",
    "LRRResult",
    "low_rank_representation",
    "MICResult",
    "select_reference_locations",
    "RSVDConfig",
    "RSVDResult",
    "rsvd_complete",
    "SelfAugmentedConfig",
    "SelfAugmentedResult",
    "SweepState",
    "self_augmented_rsvd",
    "solve_state",
    "run_stacked_sweeps",
    "solve_states",
    "IUpdater",
    "UpdaterConfig",
    "UpdateResult",
]
