"""Diagnostics used by the paper's preliminaries (Section II).

* :func:`singular_value_profile` / :func:`low_rank_report` — the
  approximately-low-rank validation behind Observation 1 / Fig. 5.
* :func:`nlc_values` — the neighbouring-location-continuity statistic
  ``NLC(i, u)`` of Eq. (5), whose CDF is Fig. 8.
* :func:`als_values` — the adjacent-link-similarity statistic ``ALS(i, u)``
  of Eq. (6), whose CDF is Fig. 9.
* :func:`difference_stability` — the comparison behind Fig. 6: the RSS
  differences between neighbouring locations / adjacent links fluctuate far
  less over time than the RSS readings themselves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.core.constraints import relationship_matrix
from repro.utils.linalg import normalized_singular_values, relative_energy
from repro.utils.validation import check_2d

__all__ = [
    "LowRankReport",
    "singular_value_profile",
    "low_rank_report",
    "nlc_values",
    "als_values",
    "difference_stability",
]


@dataclass(frozen=True)
class LowRankReport:
    """Summary of a matrix's singular-value structure.

    Attributes
    ----------
    normalized_singular_values:
        Singular values divided by the largest one (the series plotted in
        Fig. 5).
    leading_energy_fraction:
        Fraction of total singular-value mass captured by the first singular
        value.
    rank_energy_fraction:
        Fraction captured by the first ``rank`` singular values.
    rank:
        The nominal rank used (the number of links ``M``).
    exactly_low_rank:
        True when the matrix satisfies both conditions of the paper's
        definition (leading values carry the energy AND ``r << M``); the
        fingerprint matrix is expected to fail the second condition, making
        it only *approximately* low rank.
    approximately_low_rank:
        True when the energy condition holds but ``r`` is not much smaller
        than ``M``.
    """

    normalized_singular_values: np.ndarray
    leading_energy_fraction: float
    rank_energy_fraction: float
    rank: int
    exactly_low_rank: bool
    approximately_low_rank: bool


def singular_value_profile(matrix: np.ndarray) -> np.ndarray:
    """Normalised singular values of a fingerprint matrix (Fig. 5 series)."""
    return normalized_singular_values(matrix)


def low_rank_report(
    matrix: np.ndarray,
    rank: int | None = None,
    energy_threshold: float = 0.9,
    small_rank_ratio: float = 0.25,
) -> LowRankReport:
    """Assess whether a matrix is exactly or approximately low rank.

    Parameters
    ----------
    matrix:
        The fingerprint matrix.
    rank:
        Nominal rank ``r``; defaults to the number of rows (links).
    energy_threshold:
        Minimum fraction of singular-value mass the first ``rank`` values
        must carry for the matrix to be considered (approximately) low rank.
    small_rank_ratio:
        ``r / M`` threshold below which the matrix counts as *exactly* low
        rank (the paper's ``r << M`` condition).
    """
    matrix = check_2d(matrix, "matrix")
    m = matrix.shape[0]
    if rank is None:
        rank = m
    normalized = normalized_singular_values(matrix)
    leading = relative_energy(matrix, 1)
    rank_energy = relative_energy(matrix, rank)
    energy_ok = rank_energy >= energy_threshold
    rank_small = rank <= small_rank_ratio * max(m, 1)
    return LowRankReport(
        normalized_singular_values=normalized,
        leading_energy_fraction=float(leading),
        rank_energy_fraction=float(rank_energy),
        rank=int(rank),
        exactly_low_rank=bool(energy_ok and rank_small),
        approximately_low_rank=bool(energy_ok and not rank_small),
    )


def nlc_values(largely_decrease: np.ndarray) -> np.ndarray:
    """Neighbouring-location-continuity statistic ``NLC(i, u)`` (Eq. 5).

    For each element of the largely-decrease matrix, the absolute difference
    between its magnitude and the average magnitude of its stripe neighbours,
    normalised by the matrix's full dynamic range.  The paper's benchmark
    finds ~90 % of values below 0.2.
    """
    xd = check_2d(largely_decrease, "largely_decrease")
    m, width = xd.shape
    t = relationship_matrix(width)
    magnitudes = np.abs(xd)
    dynamic_range = float(magnitudes.max() - magnitudes.min())
    if dynamic_range <= 0:
        return np.zeros(m * width)

    values = np.zeros((m, width))
    neighbour_counts = t.sum(axis=0)
    neighbour_sums = magnitudes @ t
    neighbour_means = neighbour_sums / np.maximum(neighbour_counts, 1.0)
    values = np.abs(magnitudes - neighbour_means) / dynamic_range
    return values.ravel()


def als_values(largely_decrease: np.ndarray) -> np.ndarray:
    """Adjacent-link-similarity statistic ``ALS(i, u)`` (Eq. 6).

    Absolute difference between adjacent rows of the largely-decrease matrix
    at the same relative stripe position, normalised by the maximum such
    difference.  The paper's benchmark finds >80 % of values below 0.4.
    """
    xd = check_2d(largely_decrease, "largely_decrease")
    if xd.shape[0] < 2:
        raise ValueError("need at least two links to compute adjacent-link similarity")
    differences = np.abs(np.diff(xd, axis=0))
    max_difference = float(differences.max())
    if max_difference <= 0:
        return np.zeros(differences.size)
    return (differences / max_difference).ravel()


def difference_stability(
    rss_series: np.ndarray,
    neighbour_series: np.ndarray,
    adjacent_series: np.ndarray,
) -> Dict[str, float]:
    """Quantify Fig. 6: differences are more stable than raw readings.

    Parameters
    ----------
    rss_series:
        Time series of raw RSS readings at one location (one link).
    neighbour_series:
        Time series of the difference between that reading and the reading at
        a neighbouring location.
    adjacent_series:
        Time series of the difference between that reading and the reading of
        an adjacent link at the same relative location.

    Returns
    -------
    dict
        Peak-to-peak spans and standard deviations of each series, plus the
        stability ratios (difference std / raw std).
    """
    rss = np.asarray(rss_series, dtype=float).ravel()
    neighbour = np.asarray(neighbour_series, dtype=float).ravel()
    adjacent = np.asarray(adjacent_series, dtype=float).ravel()
    if rss.size == 0 or neighbour.size == 0 or adjacent.size == 0:
        raise ValueError("all series must be non-empty")

    def _span(series: np.ndarray) -> float:
        return float(series.max() - series.min())

    rss_std = float(np.std(rss))
    return {
        "rss_span_db": _span(rss),
        "neighbour_span_db": _span(neighbour),
        "adjacent_span_db": _span(adjacent),
        "rss_std_db": rss_std,
        "neighbour_std_db": float(np.std(neighbour)),
        "adjacent_std_db": float(np.std(adjacent)),
        "neighbour_stability_ratio": float(np.std(neighbour) / max(rss_std, 1e-12)),
        "adjacent_stability_ratio": float(np.std(adjacent) / max(rss_std, 1e-12)),
    }
