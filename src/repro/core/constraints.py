"""Structural constraint matrices T, G and H (Section IV-C).

The largely-decrease matrix ``X_D`` (shape ``M x N/M``) has two exploitable
properties:

* **Neighbouring-location continuity** — the RSS readings at neighbouring
  grid locations along the same link differ little.  This is encoded by the
  relationship matrix ``T`` (1 where two stripe offsets are neighbours) and
  the continuity matrix ``G``, a column-normalised combination of ``T`` and a
  diagonal degree matrix (each column scaled so its diagonal entry is 1, as
  in the worked example of Eq. 14) such that ``X_D @ G`` computes, for each
  element, the difference between that element and the average of its
  neighbours.
  Because the RSS profile along a link rises and then falls (largest decrease
  near the transceivers, smallest at the midpoint), the paper replaces the
  mid-column of ``G`` with a first-difference stencil so the penalty does not
  fight the expected peak shape.
* **Adjacent-link similarity** — two adjacent (parallel) links see similar
  RSS when the target stands at the same relative position, encoded by the
  first-difference Toeplitz matrix ``H`` so that ``H @ X_D`` computes
  differences between adjacent rows.

Minimising ``||X_D G||_F^2 + ||H X_D||_F^2`` therefore pulls the estimate
towards a smooth, cross-link-consistent largely-decrease structure, which is
what suppresses short-term RSS outliers (Claim 3 / Fig. 17).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "relationship_matrix",
    "degree_matrix",
    "continuity_matrix",
    "similarity_matrix",
    "continuity_penalty",
    "similarity_penalty",
]


def relationship_matrix(stripe_width: int) -> np.ndarray:
    """Neighbour-relationship matrix ``T`` of size ``(N/M) x (N/M)``.

    ``T[p, q] = 1`` when stripe offsets ``p`` and ``q`` are neighbouring grid
    locations along a link, 0 otherwise (Eq. 4).  Because all links share the
    same stripe layout, a single ``T`` serves every link.
    """
    if stripe_width < 2:
        raise ValueError("stripe_width must be at least 2")
    t = np.zeros((stripe_width, stripe_width), dtype=float)
    for p in range(stripe_width - 1):
        t[p, p + 1] = 1.0
        t[p + 1, p] = 1.0
    return t


def degree_matrix(stripe_width: int) -> np.ndarray:
    """Negative degree matrix paired with ``T`` when forming ``G``.

    The diagonal holds minus the number of neighbours of each stripe offset
    (1 at the ends of a link, 2 in the interior), matching the worked 3x3
    example in Section IV-C.1.
    """
    t = relationship_matrix(stripe_width)
    return -np.diag(t.sum(axis=0))


def continuity_matrix(stripe_width: int, midpoint_adjustment: bool = True) -> np.ndarray:
    """Continuity matrix ``G`` of size ``(N/M) x (N/M)``.

    ``G`` is the column-normalised version of ``T + D`` where ``D`` is the
    negative degree matrix: each column is divided by (minus) its diagonal
    entry so the diagonal becomes 1, reproducing the worked 3x3 example of
    Eq. (14).  For a row vector ``x`` of stripe RSS values, ``(x @ G)[p]``
    equals ``x[p]`` minus the average of ``x`` at ``p``'s neighbours — a
    discrete Laplacian along the link.

    When ``midpoint_adjustment`` is True the column(s) at the middle of the
    stripe are replaced by a first-difference stencil (Eqs. 15-16): the RSS
    decrease is expected to peak near the transceivers and dip at the
    midpoint, so penalising the Laplacian there would bias the estimate.
    """
    if stripe_width < 2:
        raise ValueError("stripe_width must be at least 2")
    g_star = relationship_matrix(stripe_width) + degree_matrix(stripe_width)
    # Scale each column by minus its diagonal entry (the neighbour count) so
    # the diagonal becomes +1, matching the paper's example.
    g = g_star / (-np.diag(g_star))[None, :]
    g = -g

    if midpoint_adjustment and stripe_width >= 3:
        # Paper indexing is 1-based: p = (N/M - 1)/2 + 1.  Convert to 0-based.
        p_one_based = (stripe_width - 1) / 2.0 + 1.0
        if float(p_one_based).is_integer():
            p = int(p_one_based) - 1
            g[:, p] = 0.0
            g[p, p] = 0.0
            if p + 1 < stripe_width:
                g[p + 1, p] = 1.0
            if p - 1 >= 0:
                g[p - 1, p] = -1.0
        else:
            lower = int(math.floor(p_one_based)) - 1
            upper = int(math.ceil(p_one_based)) - 1
            for p in (lower, upper):
                if not 0 <= p < stripe_width:
                    continue
                g[:, p] = 0.0
                g[p, p] = 0.0
                if p + 1 < stripe_width:
                    g[p + 1, p] = 1.0
                if p - 1 >= 0:
                    g[p - 1, p] = -1.0
    return g


def similarity_matrix(link_count: int) -> np.ndarray:
    """Adjacent-link similarity matrix ``H`` of size ``M x M`` (Eq. 17).

    ``H`` is lower-bidiagonal Toeplitz with 1 on the main diagonal and -1 on
    the first sub-diagonal, so ``(H @ X_D)[i] = X_D[i] - X_D[i-1]`` for
    ``i >= 1``: the row-wise differences between adjacent links.
    """
    if link_count < 2:
        raise ValueError("link_count must be at least 2")
    h = np.eye(link_count, dtype=float)
    for i in range(1, link_count):
        h[i, i - 1] = -1.0
    return h


def continuity_penalty(xd: np.ndarray, g: np.ndarray | None = None) -> float:
    """Squared Frobenius norm of ``X_D @ G`` (the continuity penalty term)."""
    xd = np.asarray(xd, dtype=float)
    if g is None:
        g = continuity_matrix(xd.shape[1])
    value = xd @ g
    return float(np.sum(value**2))


def similarity_penalty(xd: np.ndarray, h: np.ndarray | None = None) -> float:
    """Squared Frobenius norm of ``H @ X_D`` (the similarity penalty term)."""
    xd = np.asarray(xd, dtype=float)
    if h is None:
        h = similarity_matrix(xd.shape[0])
    value = h @ xd
    return float(np.sum(value**2))
