"""Low-rank representation (LRR): the inherent correlation matrix Z.

iUpdater captures how each fingerprint column relates to the MIC (reference)
columns by solving the LRR problem of Section IV-B (Eq. 12)::

    min_{Z, E}  ||Z||_* + epsilon * ||E||_{2,1}
    s.t.        X = X_MIC @ Z + E

``Z`` (size ``n_ref x N``) is the *inherent correlation matrix*; ``E``
absorbs column-sparse corruption so the correlation is robust to noisy or
outlying fingerprints.  At update time the fresh reference measurements
``X_R`` are combined with ``Z`` to predict the whole matrix as
``P = X_R @ Z``, which becomes Constraint 1 of the self-augmented RSVD.

The solver is the inexact Augmented Lagrange Multiplier (ALM) method that is
standard for LRR: alternate a singular-value-thresholding step for an
auxiliary nuclear-norm variable ``J``, a linear solve for ``Z``, an ``l2,1``
column-shrinkage step for ``E``, and dual updates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils.linalg import l21_column_shrink, singular_value_threshold
from repro.utils.validation import check_2d

__all__ = ["LRRConfig", "LRRResult", "low_rank_representation"]


@dataclass(frozen=True)
class LRRConfig:
    """Configuration of the inexact-ALM LRR solver.

    Attributes
    ----------
    epsilon:
        Weight of the ``l2,1`` error term (the paper's positive constant that
        "adjusts the percentage of the two parts").
    max_iterations:
        Iteration cap for the ALM loop.
    tolerance:
        Convergence threshold on the primal residuals (relative to the
        Frobenius norm of ``X``).
    mu_initial, mu_max, rho:
        Penalty parameter schedule of the augmented Lagrangian.
    """

    epsilon: float = 0.1
    max_iterations: int = 300
    tolerance: float = 1e-6
    mu_initial: float = 1e-2
    mu_max: float = 1e6
    rho: float = 1.3

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if self.max_iterations <= 0:
            raise ValueError("max_iterations must be positive")
        if self.tolerance <= 0:
            raise ValueError("tolerance must be positive")
        if self.mu_initial <= 0 or self.mu_max <= self.mu_initial:
            raise ValueError("require 0 < mu_initial < mu_max")
        if self.rho <= 1:
            raise ValueError("rho must exceed 1")


@dataclass(frozen=True)
class LRRResult:
    """Outcome of the LRR solve.

    Attributes
    ----------
    correlation:
        The correlation matrix ``Z`` of shape ``(n_ref, N)``.
    error:
        The column-sparse error matrix ``E`` of shape ``(M, N)``.
    iterations:
        Number of ALM iterations executed.
    converged:
        Whether the primal residuals fell below the tolerance.
    residual:
        Final relative primal residual.
    """

    correlation: np.ndarray
    error: np.ndarray
    iterations: int
    converged: bool
    residual: float

    def predict(self, reference_matrix: np.ndarray) -> np.ndarray:
        """Predict the full matrix from fresh reference columns: ``X_R @ Z``."""
        reference_matrix = np.asarray(reference_matrix, dtype=float)
        if reference_matrix.shape[1] != self.correlation.shape[0]:
            raise ValueError(
                "reference matrix has "
                f"{reference_matrix.shape[1]} columns but Z expects "
                f"{self.correlation.shape[0]}"
            )
        return reference_matrix @ self.correlation


def low_rank_representation(
    matrix: np.ndarray,
    dictionary: np.ndarray,
    config: Optional[LRRConfig] = None,
) -> LRRResult:
    """Solve the LRR problem ``min ||Z||_* + eps ||E||_{2,1}`` s.t. ``X = D Z + E``.

    Parameters
    ----------
    matrix:
        The data matrix ``X`` (``M x N``), here the fingerprint matrix at the
        original (or latest-updated) time.
    dictionary:
        The dictionary ``D`` (``M x n_ref``), here the MIC columns
        ``X_MIC``.
    config:
        Solver configuration; defaults are adequate for fingerprint-sized
        problems (8 x ~100).
    """
    x = check_2d(matrix, "matrix")
    d = check_2d(dictionary, "dictionary")
    if d.shape[0] != x.shape[0]:
        raise ValueError("dictionary and matrix must have the same number of rows")
    cfg = config or LRRConfig()

    n_ref = d.shape[1]
    n = x.shape[1]

    z = np.zeros((n_ref, n))
    j = np.zeros((n_ref, n))
    e = np.zeros_like(x)
    y1 = np.zeros_like(x)       # multiplier for X = D Z + E
    y2 = np.zeros((n_ref, n))   # multiplier for Z = J

    mu = cfg.mu_initial
    dtd = d.T @ d
    identity = np.eye(n_ref)
    x_norm = max(np.linalg.norm(x), 1e-12)

    converged = False
    residual = np.inf
    iterations = 0
    for iterations in range(1, cfg.max_iterations + 1):
        # J update: nuclear-norm proximal step on Z + Y2/mu.
        j = singular_value_threshold(z + y2 / mu, 1.0 / mu)

        # Z update: ridge-like linear solve.
        rhs = d.T @ (x - e) + j + (d.T @ y1 - y2) / mu
        z = np.linalg.solve(dtd + identity, rhs)

        # E update: l2,1 shrinkage.
        e = l21_column_shrink(x - d @ z + y1 / mu, cfg.epsilon / mu)

        # Dual updates.
        primal1 = x - d @ z - e
        primal2 = z - j
        y1 = y1 + mu * primal1
        y2 = y2 + mu * primal2
        mu = min(cfg.rho * mu, cfg.mu_max)

        residual = max(
            np.linalg.norm(primal1) / x_norm,
            np.linalg.norm(primal2) / max(np.linalg.norm(z), 1e-12),
        )
        if residual < cfg.tolerance:
            converged = True
            break

    return LRRResult(
        correlation=z,
        error=e,
        iterations=iterations,
        converged=converged,
        residual=float(residual),
    )
