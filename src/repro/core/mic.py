"""Maximum-independent-column (MIC) selection of reference locations.

The whole fingerprint matrix can be represented exactly by its maximum set
of linearly independent columns; the paper selects the grid locations of
those columns as the reference locations at which fresh RSS measurements are
collected (Section IV-B).  The number of MIC columns equals the matrix rank,
which for an ``M x N`` fingerprint matrix is at most ``M`` (8 in the office),
far smaller than the ``N`` (≈94) locations a full re-survey would require.

Because the real fingerprint matrix is only *approximately* low rank and is
noisy, a strict "first non-zero pivot after elementary column transformation"
rule is numerically fragile.  Two strategies are provided:

* ``"qr"`` (default) — rank-revealing QR with column pivoting.  The pivoted
  columns are exactly a maximal independent set and are additionally ordered
  by how much new energy each column contributes, which makes truncation to
  a requested count well-defined.
* ``"gauss"`` — Gaussian elimination over the columns, mirroring the paper's
  elementary-column-transformation description.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np
import scipy.linalg

from repro.utils.validation import check_2d

__all__ = ["MICResult", "select_reference_locations", "numerical_rank"]


@dataclass(frozen=True)
class MICResult:
    """Outcome of MIC-based reference-location selection.

    Attributes
    ----------
    indices:
        Column (location) indices selected as reference locations, in
        selection order.
    rank:
        Numerical rank estimate of the matrix.
    mic_matrix:
        The ``M x len(indices)`` sub-matrix of the selected columns.
    strategy:
        Which selection strategy produced the result.
    """

    indices: tuple
    rank: int
    mic_matrix: np.ndarray
    strategy: str

    @property
    def count(self) -> int:
        """Number of selected reference locations."""
        return len(self.indices)


def numerical_rank(matrix: np.ndarray, tolerance: Optional[float] = None) -> int:
    """Numerical rank of a matrix with an SVD-based tolerance."""
    matrix = check_2d(matrix, "matrix")
    return int(np.linalg.matrix_rank(matrix, tol=tolerance))


def _qr_selection(matrix: np.ndarray, count: int) -> List[int]:
    """Column-pivoted QR: the first ``count`` pivots are the MIC columns."""
    _, _, pivots = scipy.linalg.qr(matrix, mode="economic", pivoting=True)
    return [int(p) for p in pivots[:count]]


def _gauss_selection(matrix: np.ndarray, count: int, tolerance: float) -> List[int]:
    """Greedy Gaussian elimination over columns.

    Walk the columns left to right, keeping a column when it is not (within
    ``tolerance``) a linear combination of the columns already kept.  This is
    the direct analogue of locating the first non-zero element of each row
    after elementary column transformations.
    """
    selected: List[int] = []
    basis: List[np.ndarray] = []
    n = matrix.shape[1]
    for j in range(n):
        column = matrix[:, j].astype(float)
        residual = column.copy()
        for b in basis:
            residual -= (residual @ b) * b
        norm = np.linalg.norm(residual)
        if norm > tolerance * max(np.linalg.norm(column), 1.0):
            basis.append(residual / norm)
            selected.append(j)
        if len(selected) >= count:
            break
    return selected


def select_reference_locations(
    matrix: np.ndarray,
    count: Optional[int] = None,
    strategy: str = "qr",
    tolerance: float = 1e-8,
) -> MICResult:
    """Select reference locations as the maximum independent columns.

    Parameters
    ----------
    matrix:
        The fingerprint matrix (``M x N``) from which to derive reference
        locations — typically the original or latest-updated matrix.
    count:
        Number of reference locations to select.  Defaults to the numerical
        rank of the matrix (which is the paper's minimal choice, equal to the
        number of links for the benchmark matrices).  Requests above ``N``
        are rejected; requests above the rank are honoured by padding with
        the next-best pivot columns (used by the Fig. 14 "8+1" experiment).
    strategy:
        ``"qr"`` (rank-revealing QR, default) or ``"gauss"`` (elementary
        column transformation analogue).
    tolerance:
        Relative tolerance used by the Gaussian strategy to decide linear
        independence.
    """
    matrix = check_2d(matrix, "matrix")
    n = matrix.shape[1]
    rank = numerical_rank(matrix)
    if count is None:
        count = rank
    count = int(count)
    if count <= 0:
        raise ValueError("count must be positive")
    if count > n:
        raise ValueError(f"cannot select {count} columns from a matrix with {n} columns")

    if strategy == "qr":
        indices = _qr_selection(matrix, count)
    elif strategy == "gauss":
        indices = _gauss_selection(matrix, count, tolerance)
        if len(indices) < count:
            # Pad with QR pivots not already selected (requests beyond the
            # numerically independent set, e.g. the "+1 random" experiments).
            extra = [j for j in _qr_selection(matrix, n) if j not in indices]
            indices.extend(extra[: count - len(indices)])
    else:
        raise ValueError(f"unknown strategy {strategy!r}; expected 'qr' or 'gauss'")

    indices = indices[:count]
    mic_matrix = matrix[:, indices].copy()
    return MICResult(
        indices=tuple(int(i) for i in indices),
        rank=rank,
        mic_matrix=mic_matrix,
        strategy=strategy,
    )
