"""Basic Regularized SVD (RSVD) matrix completion (Section IV-A).

The fingerprint matrix is approximately low rank, so iUpdater recovers it
from the observable (no-decrease) entries by solving the regularised
factorisation problem of Eq. (11)::

    min_{L, R}  lambda * (||L||_F^2 + ||R||_F^2) + ||B o (L R^T) - X_B||_F^2

where ``B`` is the 0/1 index matrix of observable entries, ``X_B = B o X``
holds the observable values and ``X_hat = L R^T`` is the reconstruction.
The solver alternates exact per-column / per-row ridge least-squares updates
(the ``MyInverse`` routine of Algorithm 1 restricted to the data-fit terms).

This module implements only the *basic* RSVD used as the ablation baseline in
Fig. 16; the full self-augmented method with Constraints 1 and 2 lives in
:mod:`repro.core.self_augmented`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils.linalg import batched_safe_solve, masked_gram_stack, safe_solve
from repro.utils.random import RngLike, make_rng
from repro.utils.validation import check_2d, check_matching_shapes

__all__ = [
    "SOLVER_BACKENDS",
    "validate_solver_backend",
    "RSVDConfig",
    "RSVDResult",
    "rsvd_complete",
]

#: Recognised values of the ``solver_backend`` configuration fields.
#: ``"batched"`` stacks the per-column normal equations into one
#: ``(n, r, r)`` tensor solve; ``"looped"`` is the per-column reference
#: implementation kept for parity testing and the Fig. 16 ablations.
SOLVER_BACKENDS = ("batched", "looped")


def validate_solver_backend(value: Optional[str], allow_none: bool = False) -> None:
    """Raise ``ValueError`` unless ``value`` names a known solver backend."""
    if value is None and allow_none:
        return
    if value not in SOLVER_BACKENDS:
        suffix = " or None" if allow_none else ""
        raise ValueError(
            f"solver_backend must be one of {SOLVER_BACKENDS}{suffix}, got {value!r}"
        )


@dataclass(frozen=True)
class RSVDConfig:
    """Configuration of the basic RSVD solver.

    Attributes
    ----------
    rank:
        Factorisation rank ``r``.  ``None`` defaults to the number of rows
        (the paper uses ``r = M`` because the matrix is approximately, not
        exactly, low rank).
    regularization:
        The Lagrange multiplier ``lambda`` trading off rank minimisation
        against fitting the observed entries.
    max_iterations:
        Number of alternating update sweeps.
    tolerance:
        Relative change in the objective below which iteration stops early.
    init_scale:
        Standard deviation of the random initialisation of ``L``.
    solver_backend:
        ``"batched"`` (default) solves all per-column/per-row ridge systems
        of a sweep in one stacked ``np.linalg.solve``; ``"looped"`` is the
        original per-column reference path.
    """

    rank: Optional[int] = None
    regularization: float = 0.1
    max_iterations: int = 60
    tolerance: float = 1e-7
    init_scale: float = 1.0
    solver_backend: str = "batched"

    def __post_init__(self) -> None:
        if self.rank is not None and self.rank <= 0:
            raise ValueError("rank must be positive when given")
        if self.regularization < 0:
            raise ValueError("regularization must be non-negative")
        if self.max_iterations <= 0:
            raise ValueError("max_iterations must be positive")
        if self.tolerance <= 0:
            raise ValueError("tolerance must be positive")
        if self.init_scale <= 0:
            raise ValueError("init_scale must be positive")
        validate_solver_backend(self.solver_backend)


@dataclass(frozen=True)
class RSVDResult:
    """Outcome of an RSVD completion.

    Attributes
    ----------
    estimate:
        The reconstructed matrix ``X_hat = L R^T``.
    left, right:
        The factors ``L`` (``M x r``) and ``R`` (``N x r``).
    objective:
        Final value of the regularised objective.
    iterations:
        Number of alternating sweeps executed.
    converged:
        Whether the relative objective change fell below the tolerance.
    """

    estimate: np.ndarray
    left: np.ndarray
    right: np.ndarray
    objective: float
    iterations: int
    converged: bool


def _objective(
    left: np.ndarray,
    right: np.ndarray,
    observed: np.ndarray,
    mask: np.ndarray,
    regularization: float,
) -> float:
    estimate = left @ right.T
    fit = np.sum((mask * estimate - observed) ** 2)
    reg = regularization * (np.sum(left**2) + np.sum(right**2))
    return float(fit + reg)


def rsvd_complete(
    observed: np.ndarray,
    mask: np.ndarray,
    config: Optional[RSVDConfig] = None,
    rng: RngLike = None,
) -> RSVDResult:
    """Reconstruct a matrix from masked observations with the basic RSVD.

    Parameters
    ----------
    observed:
        ``X_B`` — the matrix of observed values; entries where ``mask`` is 0
        are ignored (conventionally 0).
    mask:
        The 0/1 index matrix ``B``.
    config:
        Solver configuration.
    rng:
        Seed or generator for the random initialisation of ``L``.
    """
    observed = check_2d(observed, "observed")
    mask = check_2d(mask, "mask")
    check_matching_shapes(observed, mask, "observed", "mask")
    if not np.all(np.isin(mask, (0.0, 1.0))):
        raise ValueError("mask must contain only 0 and 1")
    cfg = config or RSVDConfig()
    rng = make_rng(rng)

    m, n = observed.shape
    rank = cfg.rank if cfg.rank is not None else m
    rank = min(rank, m, n)

    left = cfg.init_scale * rng.standard_normal((m, rank))
    right = np.zeros((n, rank))
    lam = cfg.regularization
    identity = np.eye(rank)

    batched = cfg.solver_backend == "batched"
    masked_observed = mask * observed

    previous_objective = np.inf
    converged = False
    iterations = 0
    for iterations in range(1, cfg.max_iterations + 1):
        if batched:
            # All n column systems (and then all m row systems) share the
            # structure lhs = lam I + L^T diag(w) L, so stack them into one
            # (batch, r, r) tensor and dispatch a single LAPACK call.
            lhs = lam * identity[None, :, :] + masked_gram_stack(left, mask)
            right = batched_safe_solve(lhs, masked_observed.T @ left)

            lhs = lam * identity[None, :, :] + masked_gram_stack(right, mask.T)
            left = batched_safe_solve(lhs, masked_observed @ right)
        else:
            # Update each column of R^T given L: ridge LS on the observed rows.
            for j in range(n):
                weights = mask[:, j]
                lw = left * weights[:, None]
                lhs = lam * identity + lw.T @ left
                rhs = lw.T @ observed[:, j]
                right[j, :] = safe_solve(lhs, rhs)

            # Update each row of L given R: symmetric problem on the transpose.
            for i in range(m):
                weights = mask[i, :]
                rw = right * weights[:, None]
                lhs = lam * identity + rw.T @ right
                rhs = rw.T @ observed[i, :]
                left[i, :] = safe_solve(lhs, rhs)

        objective = _objective(left, right, observed, mask, lam)
        if previous_objective < np.inf:
            change = abs(previous_objective - objective) / max(previous_objective, 1e-12)
            if change < cfg.tolerance:
                converged = True
                previous_objective = objective
                break
        previous_objective = objective

    estimate = left @ right.T
    return RSVDResult(
        estimate=estimate,
        left=left,
        right=right,
        objective=float(previous_objective),
        iterations=iterations,
        converged=converged,
    )
