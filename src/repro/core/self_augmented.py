"""Self-augmented RSVD: Algorithm 1 of the paper.

The full reconstruction objective (Eq. 18) augments the basic RSVD data-fit
term with two constraints::

    min_{L, R}   lambda (||L||_F^2 + ||R||_F^2)          (rank regulariser)
               + ||B o (L R^T) - X_B||_F^2               (no-decrease fit)
               + w1 ||L R^T - X_R Z||_F^2                (Constraint 1)
               + w2 (||X_D G||_F^2 + ||H X_D||_F^2)      (Constraint 2)

where

* ``X_B`` / ``B`` are the no-decrease observations and their index matrix,
* ``X_R`` holds fresh measurements at the MIC reference locations and ``Z``
  is the inherent correlation matrix, so ``P = X_R Z`` is a full-matrix
  prediction that pins down the otherwise non-unique factorisation,
* ``X_D`` is the largely-decrease part of the *estimate* ``L R^T`` (the
  diagonal stripes), ``G`` is the neighbour-continuity matrix and ``H`` the
  adjacent-link-similarity matrix; the two quadratic penalties smooth the
  estimate along links and across adjacent links, suppressing short-term RSS
  outliers.

The solver alternates exact per-column ridge solves for ``R`` (the paper's
``MyInverse`` with terms ``Q1..Q5`` / ``C1..C5``) and per-row solves for
``L``.  As the paper notes, the three non-data terms can have very different
magnitudes and would otherwise overshadow each other, so each term carries a
weight; by default the weights are auto-scaled to a common order of magnitude
on the first iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.constraints import continuity_matrix, similarity_matrix
from repro.core.rsvd import validate_solver_backend
from repro.utils.linalg import batched_safe_solve, masked_gram_stack, safe_solve
from repro.utils.random import RngLike, make_rng
from repro.utils.validation import check_2d, check_matching_shapes

__all__ = [
    "SelfAugmentedConfig",
    "SelfAugmentedResult",
    "self_augmented_rsvd",
    "solve_state",
    "SweepState",
]


@dataclass(frozen=True)
class SelfAugmentedConfig:
    """Configuration of the self-augmented RSVD solver.

    Attributes
    ----------
    rank:
        Factorisation rank ``r`` (defaults to the number of links ``M``).
    regularization:
        The multiplier ``lambda`` on ``||L||^2 + ||R||^2``.
    max_iterations:
        Number of alternating sweeps (the paper's iteration count ``t``).
    tolerance:
        Relative objective-change threshold for early stopping.
    reference_weight:
        Weight ``w1`` of Constraint 1 (reference/correlation fit).  ``None``
        enables auto-scaling relative to the data-fit term.
    structure_weight:
        Weight ``w2`` of Constraint 2 (continuity + similarity penalties).
        ``None`` enables auto-scaling.
    use_reference_constraint, use_structure_constraint:
        Ablation switches for Fig. 16.
    init_scale:
        Standard deviation of the random initialisation ``L0`` (ignored by
        ``init="svd"``, whose factors are already on the data scale).
    init:
        Cold-start strategy for ``L0``.  ``"random"`` (default, bit-pinned)
        draws from the rng; ``"svd"`` seeds the factors with a truncated SVD
        of the masked observations (``scipy.sparse.linalg.svds`` with a
        deterministic start vector, dense ``np.linalg.svd`` when the rank is
        full or SciPy is unavailable).
    solver_backend:
        ``"batched"`` (default) stacks every per-column/per-row ridge system
        of a sweep into one ``(batch, r, r)`` tensor solve; ``"looped"`` is
        the per-column reference implementation.
    """

    rank: Optional[int] = None
    regularization: float = 0.01
    max_iterations: int = 40
    tolerance: float = 1e-7
    reference_weight: Optional[float] = None
    structure_weight: Optional[float] = None
    use_reference_constraint: bool = True
    use_structure_constraint: bool = True
    init_scale: float = 1.0
    init: str = "random"
    solver_backend: str = "batched"

    def __post_init__(self) -> None:
        if self.rank is not None and self.rank <= 0:
            raise ValueError("rank must be positive when given")
        if self.regularization < 0:
            raise ValueError("regularization must be non-negative")
        if self.max_iterations <= 0:
            raise ValueError("max_iterations must be positive")
        if self.tolerance <= 0:
            raise ValueError("tolerance must be positive")
        for name in ("reference_weight", "structure_weight"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(f"{name} must be non-negative when given")
        if self.init_scale <= 0:
            raise ValueError("init_scale must be positive")
        if self.init not in ("random", "svd"):
            raise ValueError(
                f"init must be 'random' or 'svd', got {self.init!r}"
            )
        validate_solver_backend(self.solver_backend)


@dataclass(frozen=True)
class SelfAugmentedResult:
    """Outcome of the self-augmented RSVD reconstruction.

    Attributes
    ----------
    estimate:
        The reconstructed fingerprint matrix ``X_hat = L R^T``.
    left, right:
        The factors ``L`` (``M x r``) and ``R`` (``N x r``).
    objective:
        Final objective value.
    iterations:
        Number of alternating sweeps executed.
    converged:
        Whether the objective change fell below the tolerance.
    reference_weight, structure_weight:
        The (possibly auto-scaled) constraint weights actually used.
    """

    estimate: np.ndarray
    left: np.ndarray
    right: np.ndarray
    objective: float
    iterations: int
    converged: bool
    reference_weight: float
    structure_weight: float


def _stripe_views(n: int, m: int) -> np.ndarray:
    """Map each column index j to (link ii, stripe offset jj)."""
    width = n // m
    columns = np.arange(n)
    return np.stack([columns // width, columns % width], axis=1)


def _objective(
    left: np.ndarray,
    right: np.ndarray,
    observed: np.ndarray,
    mask: np.ndarray,
    prediction: Optional[np.ndarray],
    g: Optional[np.ndarray],
    h: Optional[np.ndarray],
    locations_per_link: int,
    lam: float,
    w1: float,
    w2: float,
) -> float:
    estimate = left @ right.T
    value = lam * (np.sum(left**2) + np.sum(right**2))
    value += np.sum((mask * estimate - observed) ** 2)
    if prediction is not None:
        value += w1 * np.sum((estimate - prediction) ** 2)
    if g is not None and h is not None:
        xd = _extract_stripes(estimate, locations_per_link)
        value += w2 * (np.sum((xd @ g) ** 2) + np.sum((h @ xd) ** 2))
    return float(value)


def _extract_stripes(matrix: np.ndarray, locations_per_link: int) -> np.ndarray:
    """Largely-decrease matrix of an estimate (diagonal stripe extraction)."""
    m = matrix.shape[0]
    xd = np.zeros((m, locations_per_link))
    for i in range(m):
        xd[i, :] = matrix[i, i * locations_per_link : (i + 1) * locations_per_link]
    return xd


def _svd_init(target: np.ndarray, rank: int, rng: RngLike) -> np.ndarray:
    """Truncated-SVD cold start: ``L0 = U_r sqrt(S_r)`` of the masked data.

    Uses ``scipy.sparse.linalg.svds`` with a deterministic start vector drawn
    from ``rng`` (ARPACK's default start vector is random, which would break
    reproducibility).  ``svds`` requires ``k < min(m, n)``, so the full-rank
    case — the default, since ``rank`` defaults to ``M = min(M, N)`` — and
    environments without SciPy fall back to the dense LAPACK SVD, which is
    deterministic on its own.
    """
    m, n = target.shape
    k = min(rank, m, n)
    if k < min(m, n):
        try:
            from scipy.sparse.linalg import svds
        except ImportError:
            svds = None
        if svds is not None:
            v0 = make_rng(rng).standard_normal(min(m, n))
            u, s, _ = svds(target, k=k, v0=v0)
            # svds returns singular values in ascending order; pin descending.
            order = np.argsort(s)[::-1]
            u, s = u[:, order], s[order]
            return u * np.sqrt(s)
    u, s, _ = np.linalg.svd(target, full_matrices=False)
    return u[:, :k] * np.sqrt(s[:k])


class SweepState:
    """Validated, resumable state of one self-augmented ALS solve.

    The state owns everything :func:`self_augmented_rsvd` needs between
    sweeps: the validated inputs, the (possibly auto-scaled) constraint
    weights, the hoisted Constraint-2 constants, the current factors and the
    convergence bookkeeping.  Each sweep is driven from outside in four
    steps — :meth:`begin_sweep`, a solve of :meth:`right_systems`, a solve of
    :meth:`left_systems`, :meth:`finish_sweep` — which is what lets the
    fleet-stacked solver (:mod:`repro.core.stacked`) advance many sites in
    lockstep while concatenating their per-sweep systems into a single
    batched solve.  Driving a single state to convergence reproduces the
    batched backend of :func:`self_augmented_rsvd` bit for bit.
    """

    def __init__(
        self,
        observed: np.ndarray,
        mask: np.ndarray,
        locations_per_link: int,
        prediction: Optional[np.ndarray] = None,
        config: Optional[SelfAugmentedConfig] = None,
        rng: RngLike = None,
    ) -> None:
        observed = check_2d(observed, "observed")
        mask = check_2d(mask, "mask")
        check_matching_shapes(observed, mask, "observed", "mask")
        if not np.all(np.isin(mask, (0.0, 1.0))):
            raise ValueError("mask must contain only 0 and 1")
        m, n = observed.shape
        if locations_per_link <= 0 or n != m * locations_per_link:
            raise ValueError(
                f"locations_per_link={locations_per_link} inconsistent with matrix shape {observed.shape}"
            )
        if not np.any(observed):
            raise ValueError(
                "observed matrix is entirely zero (fully unobserved); the "
                "self-augmented RSVD needs at least one observed entry to "
                "scale its constraint weights"
            )
        cfg = config or SelfAugmentedConfig()
        if prediction is not None:
            prediction = check_2d(prediction, "prediction")
            check_matching_shapes(prediction, observed, "prediction", "observed")

        self.observed = observed
        self.mask = mask
        self.locations_per_link = locations_per_link
        self.prediction = prediction
        self.cfg = cfg
        self.m = m
        self.n = n
        self.use_reference = cfg.use_reference_constraint and prediction is not None
        self.use_structure = cfg.use_structure_constraint
        self.g = continuity_matrix(locations_per_link) if self.use_structure else None
        self.h = similarity_matrix(m) if self.use_structure else None

        rank = cfg.rank if cfg.rank is not None else m
        self.rank = min(rank, m, n)
        self.lam = cfg.regularization
        self.identity = np.eye(self.rank)

        if cfg.init == "svd":
            self.left = _svd_init(mask * observed, self.rank, rng)
        else:
            self.left = cfg.init_scale * make_rng(rng).standard_normal(
                (m, self.rank)
            )
        self.right = np.zeros((n, self.rank))
        self.stripe_map = _stripe_views(n, m)

        # ------------------------------------------------------------ weights
        # Scale the constraint terms to the same order of magnitude as the
        # data-fit term (Section IV-E).  The data-fit magnitude is estimated
        # from the observed entries; the reference term from the prediction.
        data_scale = float(np.sum(observed**2)) or 1.0
        if self.use_reference:
            if cfg.reference_weight is not None:
                self.w1 = cfg.reference_weight
            else:
                reference_scale = float(np.sum(np.asarray(prediction) ** 2)) or 1.0
                self.w1 = data_scale / reference_scale
        else:
            self.w1 = 0.0
        if self.use_structure:
            if cfg.structure_weight is not None:
                self.w2 = cfg.structure_weight
            else:
                # The structural penalties act on per-element dB differences,
                # the same scale as the per-element data-fit residuals; a
                # small sub-unit weight keeps them influential for outlier
                # suppression without blurring the discriminative structure
                # of the columns.
                self.w2 = 0.1
        else:
            self.w2 = 0.0

        self.masked_observed = mask * observed
        self.prediction_array = (
            np.asarray(prediction) if self.use_reference else None
        )
        if self.use_structure:
            # Constraint-2 coefficients are functions of the constant G / H
            # matrices only: hoist them out of the sweep instead of
            # recomputing np.sum(G[:, jj]**2) per column per iteration.
            self.g_column_sq = np.sum(np.asarray(self.g) ** 2, axis=0)
            self.h_column_sq = np.sum(np.asarray(self.h) ** 2, axis=0)
            self.stripe_links = self.stripe_map[:, 0]
            self.stripe_offsets = self.stripe_map[:, 1]
            self.structural_scale = self.w2 * (
                self.g_column_sq[self.stripe_offsets]
                + self.h_column_sq[self.stripe_links]
            )

        self.previous_objective = np.inf
        self.converged = False
        self.iterations = 0
        self.warm_started = False
        self._structure_active = False
        self._estimate_stripe: Optional[np.ndarray] = None

    # ------------------------------------------------------------ warm start
    def warm_start(
        self,
        left: np.ndarray,
        right: np.ndarray,
        objective: Optional[float] = None,
    ) -> bool:
        """Resume from a previous generation's factors.

        Replaces the cold-start factors with ``left`` / ``right`` and resets
        the convergence bookkeeping so the sweep budget starts over.  The
        objective of the warm factors *on the new data* seeds
        ``previous_objective``, so a barely-drifted refresh converges after a
        single sweep — and when ``objective`` (the previous generation's
        final objective) is given and matches within the configured
        tolerance, the state is marked converged immediately: an unchanged
        refresh runs zero sweeps and :meth:`finalize` reproduces the previous
        factors bit for bit.

        Returns whether the state converged without needing any sweeps.
        """
        left = check_2d(left, "left")
        right = check_2d(right, "right")
        if left.shape != (self.m, self.rank):
            raise ValueError(
                f"warm-start left factor has shape {left.shape}; "
                f"this state needs ({self.m}, {self.rank})"
            )
        if right.shape != (self.n, self.rank):
            raise ValueError(
                f"warm-start right factor has shape {right.shape}; "
                f"this state needs ({self.n}, {self.rank})"
            )
        self.left = left.copy()
        self.right = right.copy()
        self.iterations = 0
        self.converged = False
        self.warm_started = True
        current = _objective(
            self.left,
            self.right,
            self.observed,
            self.mask,
            self.prediction if self.use_reference else None,
            self.g,
            self.h,
            self.locations_per_link,
            self.lam,
            self.w1,
            self.w2,
        )
        if objective is not None and np.isfinite(objective):
            change = abs(objective - current) / max(objective, 1e-12)
            if change < self.cfg.tolerance:
                self.converged = True
        self.previous_objective = current
        return self.converged

    def export_factors(self) -> tuple:
        """Current factors + objective, the warm-start seam for the next
        generation: ``(left copy, right copy, previous_objective)``."""
        return self.left.copy(), self.right.copy(), float(self.previous_objective)

    # ----------------------------------------------------------- sweep driver
    @property
    def active(self) -> bool:
        """Whether another sweep should run (not converged, budget left)."""
        return not self.converged and self.iterations < self.cfg.max_iterations

    def begin_sweep(self) -> None:
        """Start the next sweep: advance the iteration counter and evaluate
        the Constraint-2 structural targets on the estimate of the *previous*
        sweep (or the Constraint-1 prediction on the first sweep), once per
        sweep: pulling every stripe element towards the average of its
        along-link neighbours (continuity, matrix G) and towards the adjacent
        link's value at the same relative position (similarity, matrix H)."""
        self.iterations += 1
        self._structure_active = self.use_structure and (
            self.iterations > 1 or self.use_reference
        )
        if self._structure_active:
            if self.iterations == 1:
                reference_estimate = np.asarray(self.prediction)
            else:
                reference_estimate = self.left @ self.right.T
            self._estimate_stripe = _extract_stripes(
                reference_estimate, self.locations_per_link
            )

    def right_systems(self) -> tuple:
        """Stacked normal equations of the R-column update.

        Every column system shares lhs = lam I + L^T diag(B[:, j]) L plus the
        (column-independent) Constraint-1 Gram term and a rank-1 Constraint-2
        correction; stacking all n of them lets one batched LAPACK call solve
        the whole sweep.
        """
        lhs = self.lam * self.identity[None, :, :] + masked_gram_stack(
            self.left, self.mask
        )
        rhs = self.masked_observed.T @ self.left
        if self.use_reference:
            lhs = lhs + self.w1 * (self.left.T @ self.left)[None, :, :]
            rhs = rhs + self.w1 * (self.prediction_array.T @ self.left)
        if self._structure_active:
            stripe_rows = self.left[self.stripe_links, :]
            lhs = lhs + self.structural_scale[:, None, None] * (
                stripe_rows[:, :, None] * stripe_rows[:, None, :]
            )
            neighbour_targets = _neighbour_average_stripes(self._estimate_stripe)
            adjacent_targets = _adjacent_link_stripes(self._estimate_stripe)
            target_scale = self.w2 * (
                self.g_column_sq[self.stripe_offsets]
                * neighbour_targets[self.stripe_links, self.stripe_offsets]
                + self.h_column_sq[self.stripe_links]
                * adjacent_targets[self.stripe_links, self.stripe_offsets]
            )
            rhs = rhs + target_scale[:, None] * stripe_rows
        return lhs, rhs

    def set_right(self, solution: np.ndarray) -> None:
        """Install the solved R factor for the current sweep."""
        self.right = solution

    def left_systems(self) -> tuple:
        """Stacked normal equations of the L-row update."""
        lhs = self.lam * self.identity[None, :, :] + masked_gram_stack(
            self.right, self.mask.T
        )
        rhs = self.masked_observed @ self.right
        if self.use_reference:
            lhs = lhs + self.w1 * (self.right.T @ self.right)[None, :, :]
            rhs = rhs + self.w1 * (self.prediction_array @ self.right)
        return lhs, rhs

    def set_left(self, solution: np.ndarray) -> None:
        """Install the solved L factor for the current sweep."""
        self.left = solution

    def finish_sweep(self) -> bool:
        """Evaluate the objective and update the convergence bookkeeping."""
        objective = _objective(
            self.left,
            self.right,
            self.observed,
            self.mask,
            self.prediction if self.use_reference else None,
            self.g,
            self.h,
            self.locations_per_link,
            self.lam,
            self.w1,
            self.w2,
        )
        if self.previous_objective < np.inf:
            change = abs(self.previous_objective - objective) / max(
                self.previous_objective, 1e-12
            )
            if change < self.cfg.tolerance:
                self.previous_objective = objective
                self.converged = True
                return True
        self.previous_objective = objective
        return False

    def finalize(self) -> SelfAugmentedResult:
        """Package the converged factors as a :class:`SelfAugmentedResult`."""
        estimate = self.left @ self.right.T
        if self.use_structure:
            estimate = _smooth_stripes(
                estimate,
                self.locations_per_link,
                g=np.asarray(self.g),
                h=np.asarray(self.h),
                weight=0.6,
            )
        return SelfAugmentedResult(
            estimate=estimate,
            left=self.left,
            right=self.right,
            objective=float(self.previous_objective),
            iterations=self.iterations,
            converged=self.converged,
            reference_weight=float(self.w1),
            structure_weight=float(self.w2),
        )


def self_augmented_rsvd(
    observed: np.ndarray,
    mask: np.ndarray,
    locations_per_link: int,
    prediction: Optional[np.ndarray] = None,
    config: Optional[SelfAugmentedConfig] = None,
    rng: RngLike = None,
) -> SelfAugmentedResult:
    """Reconstruct the fingerprint matrix with the self-augmented RSVD.

    Parameters
    ----------
    observed:
        ``X_B`` — no-decrease observations (zero where unobserved).
    mask:
        Index matrix ``B`` (1 where ``observed`` holds a real measurement).
        Entries corresponding to fresh reference columns may also be set to 1
        with the measured values placed in ``observed``; the reference
        information additionally enters through ``prediction``.
    locations_per_link:
        Stripe width ``N / M`` used to address the largely-decrease entries.
    prediction:
        ``P = X_R @ Z`` — the Constraint-1 full-matrix prediction.  ``None``
        disables Constraint 1 (basic-RSVD ablation).
    config:
        Solver configuration.
    rng:
        Seed or generator for the random initialisation ``L0``.
    """
    state = SweepState(
        observed, mask, locations_per_link, prediction, config, rng
    )
    return solve_state(state)


def solve_state(state: SweepState) -> SelfAugmentedResult:
    """Drive a prepared :class:`SweepState` to convergence.

    Dispatches on the state's configured solver backend; this is the entry
    point the fleet service uses for sites it cannot stack (looped backend)
    and what :func:`self_augmented_rsvd` runs for a standalone solve.
    """
    if state.cfg.solver_backend == "batched":
        while state.active:
            state.begin_sweep()
            state.set_right(batched_safe_solve(*state.right_systems()))
            state.set_left(batched_safe_solve(*state.left_systems()))
            state.finish_sweep()
        return state.finalize()
    return _self_augmented_rsvd_looped(state)


def _self_augmented_rsvd_looped(state: SweepState) -> SelfAugmentedResult:
    """Per-column reference implementation driven off a prepared state.

    Shares the :class:`SweepState` sweep lifecycle (structural-target
    evaluation, convergence bookkeeping, result packaging) with the batched
    backend and re-derives only the inner normal-equation solves the
    per-column/per-row reference way, so the state's bookkeeping stays
    authoritative for either backend.
    """
    observed, mask = state.observed, state.mask
    prediction = state.prediction
    use_reference = state.use_reference
    g, h = state.g, state.h
    m, n = state.m, state.n
    lam, identity = state.lam, state.identity
    w1, w2 = state.w1, state.w2
    left, right = state.left, state.right
    stripe_map = state.stripe_map

    while state.active:
        state.begin_sweep()
        structure_active = state._structure_active
        estimate_stripe = state._estimate_stripe

        # ------------------------------------------ update R columns (looped)
        for j in range(n):
            ii, jj = int(stripe_map[j, 0]), int(stripe_map[j, 1])
            weights = mask[:, j]
            lw = left * weights[:, None]
            lhs = lam * identity + lw.T @ left
            rhs = lw.T @ observed[:, j]
            if use_reference:
                lhs = lhs + w1 * (left.T @ left)
                rhs = rhs + w1 * (left.T @ np.asarray(prediction)[:, j])
            if structure_active:
                l_row = left[ii, :]
                # Continuity: column jj of G weights how strongly the
                # stripe element at j participates in the Laplacian
                # penalty.
                g_weight = float(np.sum(np.asarray(g)[:, jj] ** 2))
                # Similarity: row differences through H acting on link ii.
                h_weight = float(np.sum(np.asarray(h)[:, ii] ** 2))
                structural = w2 * (g_weight + h_weight)
                lhs = lhs + structural * np.outer(l_row, l_row)
                neighbour_target = _neighbour_average(estimate_stripe, ii, jj)
                adjacent_target = _adjacent_link_value(estimate_stripe, ii, jj)
                rhs = rhs + w2 * (
                    g_weight * neighbour_target + h_weight * adjacent_target
                ) * l_row
            right[j, :] = safe_solve(lhs, rhs)

        # ---------------------------------------------- update L rows (looped)
        for i in range(m):
            weights = mask[i, :]
            rw = right * weights[:, None]
            lhs = lam * identity + rw.T @ right
            rhs = rw.T @ observed[i, :]
            if use_reference:
                lhs = lhs + w1 * (right.T @ right)
                rhs = rhs + w1 * (right.T @ np.asarray(prediction)[i, :])
            left[i, :] = safe_solve(lhs, rhs)

        state.finish_sweep()

    return state.finalize()


def _neighbour_average(stripes: np.ndarray, link: int, offset: int) -> float:
    """Average of the stripe neighbours of element (link, offset)."""
    width = stripes.shape[1]
    neighbours = []
    if offset > 0:
        neighbours.append(stripes[link, offset - 1])
    if offset < width - 1:
        neighbours.append(stripes[link, offset + 1])
    if not neighbours:
        return float(stripes[link, offset])
    return float(np.mean(neighbours))


def _adjacent_link_value(stripes: np.ndarray, link: int, offset: int) -> float:
    """Value of the adjacent link at the same relative stripe position."""
    m = stripes.shape[0]
    if link > 0:
        return float(stripes[link - 1, offset])
    if link + 1 < m:
        return float(stripes[link + 1, offset])
    return float(stripes[link, offset])


def _neighbour_average_stripes(stripes: np.ndarray) -> np.ndarray:
    """Vectorised :func:`_neighbour_average` over the whole stripe matrix."""
    width = stripes.shape[1]
    if width == 1:
        return stripes.astype(float, copy=True)
    targets = np.empty_like(stripes, dtype=float)
    targets[:, 1:-1] = 0.5 * (stripes[:, :-2] + stripes[:, 2:])
    targets[:, 0] = stripes[:, 1]
    targets[:, -1] = stripes[:, -2]
    return targets


def _adjacent_link_stripes(stripes: np.ndarray) -> np.ndarray:
    """Vectorised :func:`_adjacent_link_value` over the whole stripe matrix."""
    m = stripes.shape[0]
    if m == 1:
        return stripes.astype(float, copy=True)
    targets = np.empty_like(stripes, dtype=float)
    targets[1:, :] = stripes[:-1, :]
    targets[0, :] = stripes[1, :]
    return targets


def _smooth_stripes(
    estimate: np.ndarray,
    locations_per_link: int,
    g: np.ndarray,
    h: np.ndarray,
    weight: float,
    outlier_sigmas: float = 2.0,
) -> np.ndarray:
    """Outlier-removal pass on the largely-decrease stripes (Constraint 2).

    The continuity and similarity properties say each stripe element should
    be close to the average of its along-link neighbours and to the adjacent
    link's value at the same relative position.  Elements whose deviation
    from the neighbour average exceeds ``outlier_sigmas`` standard deviations
    of all such deviations are treated as short-term-variation outliers and
    pulled a fraction ``weight`` of the way towards their structural target;
    well-behaved elements are left untouched so the discriminative structure
    of the fingerprint columns is preserved.
    """
    m = estimate.shape[0]
    result = estimate.copy()
    stripes = _extract_stripes(estimate, locations_per_link)
    deviations = np.zeros_like(stripes)
    targets = np.zeros_like(stripes)
    for i in range(m):
        for u in range(locations_per_link):
            neighbour = _neighbour_average(stripes, i, u)
            adjacent = _adjacent_link_value(stripes, i, u)
            targets[i, u] = 0.7 * neighbour + 0.3 * adjacent
            deviations[i, u] = stripes[i, u] - neighbour
    scale = float(np.std(deviations))
    if scale <= 0:
        return result
    smoothed = stripes.copy()
    outliers = np.abs(deviations) > outlier_sigmas * scale
    smoothed[outliers] = (1.0 - weight) * stripes[outliers] + weight * targets[outliers]
    for i in range(m):
        result[i, i * locations_per_link : (i + 1) * locations_per_link] = smoothed[i, :]
    return result
