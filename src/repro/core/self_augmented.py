"""Self-augmented RSVD: Algorithm 1 of the paper.

The full reconstruction objective (Eq. 18) augments the basic RSVD data-fit
term with two constraints::

    min_{L, R}   lambda (||L||_F^2 + ||R||_F^2)          (rank regulariser)
               + ||B o (L R^T) - X_B||_F^2               (no-decrease fit)
               + w1 ||L R^T - X_R Z||_F^2                (Constraint 1)
               + w2 (||X_D G||_F^2 + ||H X_D||_F^2)      (Constraint 2)

where

* ``X_B`` / ``B`` are the no-decrease observations and their index matrix,
* ``X_R`` holds fresh measurements at the MIC reference locations and ``Z``
  is the inherent correlation matrix, so ``P = X_R Z`` is a full-matrix
  prediction that pins down the otherwise non-unique factorisation,
* ``X_D`` is the largely-decrease part of the *estimate* ``L R^T`` (the
  diagonal stripes), ``G`` is the neighbour-continuity matrix and ``H`` the
  adjacent-link-similarity matrix; the two quadratic penalties smooth the
  estimate along links and across adjacent links, suppressing short-term RSS
  outliers.

The solver alternates exact per-column ridge solves for ``R`` (the paper's
``MyInverse`` with terms ``Q1..Q5`` / ``C1..C5``) and per-row solves for
``L``.  As the paper notes, the three non-data terms can have very different
magnitudes and would otherwise overshadow each other, so each term carries a
weight; by default the weights are auto-scaled to a common order of magnitude
on the first iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.constraints import continuity_matrix, similarity_matrix
from repro.core.rsvd import validate_solver_backend
from repro.utils.linalg import batched_safe_solve, masked_gram_stack, safe_solve
from repro.utils.random import RngLike, make_rng
from repro.utils.validation import check_2d, check_matching_shapes

__all__ = ["SelfAugmentedConfig", "SelfAugmentedResult", "self_augmented_rsvd"]


@dataclass(frozen=True)
class SelfAugmentedConfig:
    """Configuration of the self-augmented RSVD solver.

    Attributes
    ----------
    rank:
        Factorisation rank ``r`` (defaults to the number of links ``M``).
    regularization:
        The multiplier ``lambda`` on ``||L||^2 + ||R||^2``.
    max_iterations:
        Number of alternating sweeps (the paper's iteration count ``t``).
    tolerance:
        Relative objective-change threshold for early stopping.
    reference_weight:
        Weight ``w1`` of Constraint 1 (reference/correlation fit).  ``None``
        enables auto-scaling relative to the data-fit term.
    structure_weight:
        Weight ``w2`` of Constraint 2 (continuity + similarity penalties).
        ``None`` enables auto-scaling.
    use_reference_constraint, use_structure_constraint:
        Ablation switches for Fig. 16.
    init_scale:
        Standard deviation of the random initialisation ``L0``.
    solver_backend:
        ``"batched"`` (default) stacks every per-column/per-row ridge system
        of a sweep into one ``(batch, r, r)`` tensor solve; ``"looped"`` is
        the per-column reference implementation.
    """

    rank: Optional[int] = None
    regularization: float = 0.01
    max_iterations: int = 40
    tolerance: float = 1e-7
    reference_weight: Optional[float] = None
    structure_weight: Optional[float] = None
    use_reference_constraint: bool = True
    use_structure_constraint: bool = True
    init_scale: float = 1.0
    solver_backend: str = "batched"

    def __post_init__(self) -> None:
        if self.rank is not None and self.rank <= 0:
            raise ValueError("rank must be positive when given")
        if self.regularization < 0:
            raise ValueError("regularization must be non-negative")
        if self.max_iterations <= 0:
            raise ValueError("max_iterations must be positive")
        if self.tolerance <= 0:
            raise ValueError("tolerance must be positive")
        for name in ("reference_weight", "structure_weight"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(f"{name} must be non-negative when given")
        if self.init_scale <= 0:
            raise ValueError("init_scale must be positive")
        validate_solver_backend(self.solver_backend)


@dataclass(frozen=True)
class SelfAugmentedResult:
    """Outcome of the self-augmented RSVD reconstruction.

    Attributes
    ----------
    estimate:
        The reconstructed fingerprint matrix ``X_hat = L R^T``.
    left, right:
        The factors ``L`` (``M x r``) and ``R`` (``N x r``).
    objective:
        Final objective value.
    iterations:
        Number of alternating sweeps executed.
    converged:
        Whether the objective change fell below the tolerance.
    reference_weight, structure_weight:
        The (possibly auto-scaled) constraint weights actually used.
    """

    estimate: np.ndarray
    left: np.ndarray
    right: np.ndarray
    objective: float
    iterations: int
    converged: bool
    reference_weight: float
    structure_weight: float


def _stripe_views(n: int, m: int) -> np.ndarray:
    """Map each column index j to (link ii, stripe offset jj)."""
    width = n // m
    columns = np.arange(n)
    return np.stack([columns // width, columns % width], axis=1)


def _objective(
    left: np.ndarray,
    right: np.ndarray,
    observed: np.ndarray,
    mask: np.ndarray,
    prediction: Optional[np.ndarray],
    g: Optional[np.ndarray],
    h: Optional[np.ndarray],
    locations_per_link: int,
    lam: float,
    w1: float,
    w2: float,
) -> float:
    estimate = left @ right.T
    value = lam * (np.sum(left**2) + np.sum(right**2))
    value += np.sum((mask * estimate - observed) ** 2)
    if prediction is not None:
        value += w1 * np.sum((estimate - prediction) ** 2)
    if g is not None and h is not None:
        xd = _extract_stripes(estimate, locations_per_link)
        value += w2 * (np.sum((xd @ g) ** 2) + np.sum((h @ xd) ** 2))
    return float(value)


def _extract_stripes(matrix: np.ndarray, locations_per_link: int) -> np.ndarray:
    """Largely-decrease matrix of an estimate (diagonal stripe extraction)."""
    m = matrix.shape[0]
    xd = np.zeros((m, locations_per_link))
    for i in range(m):
        xd[i, :] = matrix[i, i * locations_per_link : (i + 1) * locations_per_link]
    return xd


def self_augmented_rsvd(
    observed: np.ndarray,
    mask: np.ndarray,
    locations_per_link: int,
    prediction: Optional[np.ndarray] = None,
    config: Optional[SelfAugmentedConfig] = None,
    rng: RngLike = None,
) -> SelfAugmentedResult:
    """Reconstruct the fingerprint matrix with the self-augmented RSVD.

    Parameters
    ----------
    observed:
        ``X_B`` — no-decrease observations (zero where unobserved).
    mask:
        Index matrix ``B`` (1 where ``observed`` holds a real measurement).
        Entries corresponding to fresh reference columns may also be set to 1
        with the measured values placed in ``observed``; the reference
        information additionally enters through ``prediction``.
    locations_per_link:
        Stripe width ``N / M`` used to address the largely-decrease entries.
    prediction:
        ``P = X_R @ Z`` — the Constraint-1 full-matrix prediction.  ``None``
        disables Constraint 1 (basic-RSVD ablation).
    config:
        Solver configuration.
    rng:
        Seed or generator for the random initialisation ``L0``.
    """
    observed = check_2d(observed, "observed")
    mask = check_2d(mask, "mask")
    check_matching_shapes(observed, mask, "observed", "mask")
    if not np.all(np.isin(mask, (0.0, 1.0))):
        raise ValueError("mask must contain only 0 and 1")
    m, n = observed.shape
    if locations_per_link <= 0 or n != m * locations_per_link:
        raise ValueError(
            f"locations_per_link={locations_per_link} inconsistent with matrix shape {observed.shape}"
        )
    cfg = config or SelfAugmentedConfig()
    rng = make_rng(rng)

    if prediction is not None:
        prediction = check_2d(prediction, "prediction")
        check_matching_shapes(prediction, observed, "prediction", "observed")
    use_reference = cfg.use_reference_constraint and prediction is not None
    use_structure = cfg.use_structure_constraint

    g = continuity_matrix(locations_per_link) if use_structure else None
    h = similarity_matrix(m) if use_structure else None

    rank = cfg.rank if cfg.rank is not None else m
    rank = min(rank, m, n)
    lam = cfg.regularization
    identity = np.eye(rank)

    left = cfg.init_scale * rng.standard_normal((m, rank))
    right = np.zeros((n, rank))
    stripe_map = _stripe_views(n, m)

    # ------------------------------------------------------------------ weights
    # Scale the constraint terms to the same order of magnitude as the
    # data-fit term (Section IV-E).  The data-fit magnitude is estimated from
    # the observed entries; the reference term from the prediction matrix.
    data_scale = float(np.sum(observed**2)) or 1.0
    if use_reference:
        if cfg.reference_weight is not None:
            w1 = cfg.reference_weight
        else:
            reference_scale = float(np.sum(np.asarray(prediction) ** 2)) or 1.0
            w1 = data_scale / reference_scale
    else:
        w1 = 0.0
    if use_structure:
        if cfg.structure_weight is not None:
            w2 = cfg.structure_weight
        else:
            # The structural penalties act on per-element dB differences, the
            # same scale as the per-element data-fit residuals; a small
            # sub-unit weight keeps them influential for outlier suppression
            # without blurring the discriminative structure of the columns.
            w2 = 0.1
    else:
        w2 = 0.0

    batched = cfg.solver_backend == "batched"
    masked_observed = mask * observed
    prediction_array = np.asarray(prediction) if use_reference else None
    if batched and use_structure:
        # Constraint-2 coefficients are functions of the constant G / H
        # matrices only: hoist them out of the sweep instead of recomputing
        # np.sum(G[:, jj]**2) per column per iteration.
        g_column_sq = np.sum(np.asarray(g) ** 2, axis=0)
        h_column_sq = np.sum(np.asarray(h) ** 2, axis=0)
        stripe_links = stripe_map[:, 0]
        stripe_offsets = stripe_map[:, 1]
        structural_scale = w2 * (
            g_column_sq[stripe_offsets] + h_column_sq[stripe_links]
        )

    previous_objective = np.inf
    converged = False
    iterations = 0

    for iterations in range(1, cfg.max_iterations + 1):
        # Structural targets (Constraint 2) are evaluated on the estimate of
        # the *previous* sweep (or the Constraint-1 prediction on the first
        # sweep), once per sweep: pulling every stripe element towards the
        # average of its along-link neighbours (continuity, matrix G) and
        # towards the adjacent link's value at the same relative position
        # (similarity, matrix H).
        structure_active = use_structure and (iterations > 1 or use_reference)
        if structure_active:
            if iterations == 1:
                reference_estimate = np.asarray(prediction)
            else:
                reference_estimate = left @ right.T
            estimate_stripe = _extract_stripes(reference_estimate, locations_per_link)

        if batched:
            # ------------------------------------------------ update R columns
            # Every column system shares lhs = lam I + L^T diag(B[:, j]) L
            # plus the (column-independent) Constraint-1 Gram term and a
            # rank-1 Constraint-2 correction; stack all n of them and solve
            # with one batched LAPACK call.
            lhs = lam * identity[None, :, :] + masked_gram_stack(left, mask)
            rhs = masked_observed.T @ left
            if use_reference:
                lhs = lhs + w1 * (left.T @ left)[None, :, :]
                rhs = rhs + w1 * (prediction_array.T @ left)
            if structure_active:
                stripe_rows = left[stripe_links, :]
                lhs = lhs + structural_scale[:, None, None] * (
                    stripe_rows[:, :, None] * stripe_rows[:, None, :]
                )
                neighbour_targets = _neighbour_average_stripes(estimate_stripe)
                adjacent_targets = _adjacent_link_stripes(estimate_stripe)
                target_scale = w2 * (
                    g_column_sq[stripe_offsets]
                    * neighbour_targets[stripe_links, stripe_offsets]
                    + h_column_sq[stripe_links]
                    * adjacent_targets[stripe_links, stripe_offsets]
                )
                rhs = rhs + target_scale[:, None] * stripe_rows
            right = batched_safe_solve(lhs, rhs)

            # --------------------------------------------------- update L rows
            lhs = lam * identity[None, :, :] + masked_gram_stack(right, mask.T)
            rhs = masked_observed @ right
            if use_reference:
                lhs = lhs + w1 * (right.T @ right)[None, :, :]
                rhs = rhs + w1 * (prediction_array @ right)
            left = batched_safe_solve(lhs, rhs)
        else:
            # -------------------------------------- update R columns (looped)
            for j in range(n):
                ii, jj = int(stripe_map[j, 0]), int(stripe_map[j, 1])
                weights = mask[:, j]
                lw = left * weights[:, None]
                lhs = lam * identity + lw.T @ left
                rhs = lw.T @ observed[:, j]
                if use_reference:
                    lhs = lhs + w1 * (left.T @ left)
                    rhs = rhs + w1 * (left.T @ np.asarray(prediction)[:, j])
                if structure_active:
                    l_row = left[ii, :]
                    # Continuity: column jj of G weights how strongly the
                    # stripe element at j participates in the Laplacian
                    # penalty.
                    g_weight = float(np.sum(np.asarray(g)[:, jj] ** 2))
                    # Similarity: row differences through H acting on link ii.
                    h_weight = float(np.sum(np.asarray(h)[:, ii] ** 2))
                    structural = w2 * (g_weight + h_weight)
                    lhs = lhs + structural * np.outer(l_row, l_row)
                    neighbour_target = _neighbour_average(estimate_stripe, ii, jj)
                    adjacent_target = _adjacent_link_value(estimate_stripe, ii, jj)
                    rhs = rhs + w2 * (
                        g_weight * neighbour_target + h_weight * adjacent_target
                    ) * l_row
                right[j, :] = safe_solve(lhs, rhs)

            # ------------------------------------------ update L rows (looped)
            for i in range(m):
                weights = mask[i, :]
                rw = right * weights[:, None]
                lhs = lam * identity + rw.T @ right
                rhs = rw.T @ observed[i, :]
                if use_reference:
                    lhs = lhs + w1 * (right.T @ right)
                    rhs = rhs + w1 * (right.T @ np.asarray(prediction)[i, :])
                left[i, :] = safe_solve(lhs, rhs)

        objective = _objective(
            left,
            right,
            observed,
            mask,
            prediction if use_reference else None,
            g,
            h,
            locations_per_link,
            lam,
            w1,
            w2,
        )
        if previous_objective < np.inf:
            change = abs(previous_objective - objective) / max(previous_objective, 1e-12)
            if change < cfg.tolerance:
                previous_objective = objective
                converged = True
                break
        previous_objective = objective

    estimate = left @ right.T
    if use_structure:
        estimate = _smooth_stripes(
            estimate,
            locations_per_link,
            g=np.asarray(g),
            h=np.asarray(h),
            weight=0.6,
        )

    return SelfAugmentedResult(
        estimate=estimate,
        left=left,
        right=right,
        objective=float(previous_objective),
        iterations=iterations,
        converged=converged,
        reference_weight=float(w1),
        structure_weight=float(w2),
    )


def _neighbour_average(stripes: np.ndarray, link: int, offset: int) -> float:
    """Average of the stripe neighbours of element (link, offset)."""
    width = stripes.shape[1]
    neighbours = []
    if offset > 0:
        neighbours.append(stripes[link, offset - 1])
    if offset < width - 1:
        neighbours.append(stripes[link, offset + 1])
    if not neighbours:
        return float(stripes[link, offset])
    return float(np.mean(neighbours))


def _adjacent_link_value(stripes: np.ndarray, link: int, offset: int) -> float:
    """Value of the adjacent link at the same relative stripe position."""
    m = stripes.shape[0]
    if link > 0:
        return float(stripes[link - 1, offset])
    if link + 1 < m:
        return float(stripes[link + 1, offset])
    return float(stripes[link, offset])


def _neighbour_average_stripes(stripes: np.ndarray) -> np.ndarray:
    """Vectorised :func:`_neighbour_average` over the whole stripe matrix."""
    width = stripes.shape[1]
    if width == 1:
        return stripes.astype(float, copy=True)
    targets = np.empty_like(stripes, dtype=float)
    targets[:, 1:-1] = 0.5 * (stripes[:, :-2] + stripes[:, 2:])
    targets[:, 0] = stripes[:, 1]
    targets[:, -1] = stripes[:, -2]
    return targets


def _adjacent_link_stripes(stripes: np.ndarray) -> np.ndarray:
    """Vectorised :func:`_adjacent_link_value` over the whole stripe matrix."""
    m = stripes.shape[0]
    if m == 1:
        return stripes.astype(float, copy=True)
    targets = np.empty_like(stripes, dtype=float)
    targets[1:, :] = stripes[:-1, :]
    targets[0, :] = stripes[1, :]
    return targets


def _smooth_stripes(
    estimate: np.ndarray,
    locations_per_link: int,
    g: np.ndarray,
    h: np.ndarray,
    weight: float,
    outlier_sigmas: float = 2.0,
) -> np.ndarray:
    """Outlier-removal pass on the largely-decrease stripes (Constraint 2).

    The continuity and similarity properties say each stripe element should
    be close to the average of its along-link neighbours and to the adjacent
    link's value at the same relative position.  Elements whose deviation
    from the neighbour average exceeds ``outlier_sigmas`` standard deviations
    of all such deviations are treated as short-term-variation outliers and
    pulled a fraction ``weight`` of the way towards their structural target;
    well-behaved elements are left untouched so the discriminative structure
    of the fingerprint columns is preserved.
    """
    m = estimate.shape[0]
    result = estimate.copy()
    stripes = _extract_stripes(estimate, locations_per_link)
    deviations = np.zeros_like(stripes)
    targets = np.zeros_like(stripes)
    for i in range(m):
        for u in range(locations_per_link):
            neighbour = _neighbour_average(stripes, i, u)
            adjacent = _adjacent_link_value(stripes, i, u)
            targets[i, u] = 0.7 * neighbour + 0.3 * adjacent
            deviations[i, u] = stripes[i, u] - neighbour
    scale = float(np.std(deviations))
    if scale <= 0:
        return result
    smoothed = stripes.copy()
    outliers = np.abs(deviations) > outlier_sigmas * scale
    smoothed[outliers] = (1.0 - weight) * stripes[outliers] + weight * targets[outliers]
    for i in range(m):
        result[i, i * locations_per_link : (i + 1) * locations_per_link] = smoothed[i, :]
    return result
