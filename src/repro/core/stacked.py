"""Lockstep driver for many self-augmented ALS solves.

This is the computational heart of the fleet update service
(:mod:`repro.service`): a set of per-site :class:`~repro.core.self_augmented.SweepState`
objects — one per fingerprint matrix, with heterogeneous shapes and ranks —
is advanced sweep by sweep *together*.  Every sweep, the per-site R-column and
L-row normal-equation stacks are concatenated per factorisation rank and
solved with one batched LAPACK call per distinct rank through
:func:`~repro.utils.linalg.stacked_rank_solve`, instead of looping a
Python-level solver over the sites.

Because batched LU factorises each ``(r, r)`` slice independently, every
site's iterates are bit-identical to what a standalone
:func:`~repro.core.self_augmented.self_augmented_rsvd` run with the batched
backend would produce — sites that converge early simply drop out of the
stack while the rest keep sweeping.

The same independence is what makes the fleet *shardable*: a shard (any
subset of the states) advanced through :func:`run_stacked_sweeps` — or many
shards through :func:`run_sharded_sweeps` — produces, per site, exactly the
floats the full stack would have produced.  :func:`sweep_stack_nbytes`
estimates the per-sweep system-stack footprint of one state so the scheduler
(:mod:`repro.service.shard`) can size shards to a byte budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.self_augmented import SelfAugmentedResult, SweepState
from repro.utils.linalg import stacked_rank_solve, system_stack_nbytes

__all__ = [
    "ShardResult",
    "run_stacked_sweeps",
    "run_sharded_sweeps",
    "solve_shard",
    "solve_states",
    "sweep_stack_nbytes",
]


@dataclass(frozen=True)
class ShardResult:
    """Outcome of solving one shard's states: the gather-side value type.

    This is what an execution backend (:mod:`repro.service.executor`) hands
    back per shard — whether it solved the states in-process or in a worker
    that rehydrated them from a wire payload.  It is a plain dataclass of
    arrays and scalars, so it crosses process boundaries by pickling without
    perturbing a single float.

    Attributes
    ----------
    results:
        One finalized :class:`~repro.core.self_augmented.SelfAugmentedResult`
        per member state, in the shard's member order.
    sweeps:
        Lockstep sweeps the shard executed (``max`` over its members).
    fallback:
        Whether the stacked run was abandoned and the members were solved
        individually (per-shard singularity isolation).
    """

    results: Tuple[SelfAugmentedResult, ...]
    sweeps: int
    fallback: bool = False


def run_stacked_sweeps(states: Sequence[SweepState]) -> int:
    """Drive every state to convergence (or its iteration budget) in lockstep.

    Returns the number of stacked sweeps executed — the fleet-level iteration
    count, ``max`` over the per-site sweep counts.  Only the given states are
    advanced, which is what a shard-sized call relies on.
    """
    active = [state for state in states if state.active]
    sweeps = 0
    while active:
        sweeps += 1
        for state in active:
            state.begin_sweep()
        rights = stacked_rank_solve([state.right_systems() for state in active])
        for state, solution in zip(active, rights):
            state.set_right(solution)
        lefts = stacked_rank_solve([state.left_systems() for state in active])
        for state, solution in zip(active, lefts):
            state.set_left(solution)
        for state in active:
            state.finish_sweep()
        active = [state for state in active if state.active]
    return sweeps


def run_sharded_sweeps(shards: Sequence[Sequence[SweepState]]) -> List[int]:
    """Advance each shard of states independently; one lockstep run per shard.

    Each shard only ever touches its own states, so the concatenated system
    stacks stay bounded by the largest shard rather than the whole fleet,
    while per-site results remain bit-identical to one unsharded lockstep run
    (each LU slice is factorised independently either way).  Returns the
    per-shard sweep counts in shard order.
    """
    return [run_stacked_sweeps(states) for states in shards]


def sweep_stack_nbytes(state: SweepState) -> int:
    """Estimated peak system-stack bytes one sweep of ``state`` materialises.

    The R-column update dominates: it stacks ``n`` (one per matrix column)
    ``(r, r)`` systems plus right-hand sides, dwarfing the ``m``-system L-row
    stack since ``n = m * locations_per_link``.  The scheduler sums this over
    a shard's sites and keeps the total under its byte budget.
    """
    return system_stack_nbytes(state.n, state.rank)


def solve_shard(states: Sequence[SweepState]) -> ShardResult:
    """Advance one shard's states to convergence and package the outcome.

    The happy path of every execution backend: one lockstep run over the
    shard, then one finalized result per member, in member order.  Numerical
    failures (``LinAlgError`` / ``FloatingPointError``) propagate to the
    caller, which owns the per-shard fallback policy.
    """
    sweeps = run_stacked_sweeps(states)
    return ShardResult(
        results=tuple(state.finalize() for state in states), sweeps=sweeps
    )


def solve_states(states: Sequence[SweepState]) -> List[SelfAugmentedResult]:
    """Run :func:`run_stacked_sweeps` and package every state's result."""
    run_stacked_sweeps(states)
    return [state.finalize() for state in states]
