"""Lockstep driver for many self-augmented ALS solves.

This is the computational heart of the fleet update service
(:mod:`repro.service`): a set of per-site :class:`~repro.core.self_augmented.SweepState`
objects — one per fingerprint matrix, with heterogeneous shapes and ranks —
is advanced sweep by sweep *together*.  Every sweep, the per-site R-column and
L-row normal-equation stacks are concatenated per factorisation rank and
solved with one batched LAPACK call per distinct rank through
:func:`~repro.utils.linalg.stacked_rank_solve`, instead of looping a
Python-level solver over the sites.

Because batched LU factorises each ``(r, r)`` slice independently, every
site's iterates are bit-identical to what a standalone
:func:`~repro.core.self_augmented.self_augmented_rsvd` run with the batched
backend would produce — sites that converge early simply drop out of the
stack while the rest keep sweeping.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.self_augmented import SelfAugmentedResult, SweepState
from repro.utils.linalg import stacked_rank_solve

__all__ = ["run_stacked_sweeps", "solve_states"]


def run_stacked_sweeps(states: Sequence[SweepState]) -> int:
    """Drive every state to convergence (or its iteration budget) in lockstep.

    Returns the number of stacked sweeps executed — the fleet-level iteration
    count, ``max`` over the per-site sweep counts.
    """
    active = [state for state in states if state.active]
    sweeps = 0
    while active:
        sweeps += 1
        for state in active:
            state.begin_sweep()
        rights = stacked_rank_solve([state.right_systems() for state in active])
        for state, solution in zip(active, rights):
            state.set_right(solution)
        lefts = stacked_rank_solve([state.left_systems() for state in active])
        for state, solution in zip(active, lefts):
            state.set_left(solution)
        for state in active:
            state.finish_sweep()
        active = [state for state in active if state.active]
    return sweeps


def solve_states(states: Sequence[SweepState]) -> List[SelfAugmentedResult]:
    """Run :func:`run_stacked_sweeps` and package every state's result."""
    run_stacked_sweeps(states)
    return [state.finalize() for state in states]
