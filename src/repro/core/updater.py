"""The high-level iUpdater pipeline.

``IUpdater`` ties the four modules of the system overview (Section III)
together:

1. **Inherent Correlation Acquisition** — select the MIC reference locations
   from the original (or latest-updated) fingerprint matrix and solve the
   LRR problem for the correlation matrix ``Z``.
2. **Reconstruction Data Collection** — the caller supplies the no-decrease
   matrix ``X_B`` (measured with nobody present) and the reference matrix
   ``X_R`` (fresh measurements at the reference locations); helpers on the
   simulation side produce both.
3. **Fingerprint Matrix Reconstruction** — run the self-augmented RSVD with
   Constraint 1 (``X_R Z``) and Constraint 2 (continuity / similarity).
4. **Target Localization** — hand the reconstructed matrix to the OMP
   localizer (:mod:`repro.localization.omp`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

import numpy as np

from repro.core.lrr import LRRConfig, LRRResult, low_rank_representation
from repro.core.mic import MICResult, select_reference_locations
from repro.core.rsvd import validate_solver_backend
from repro.core.self_augmented import SelfAugmentedConfig, SelfAugmentedResult
from repro.fingerprint.matrix import FingerprintMatrix
from repro.utils.random import RngLike
from repro.utils.validation import check_2d

__all__ = ["UpdaterConfig", "UpdateResult", "IUpdater"]


@dataclass(frozen=True)
class UpdaterConfig:
    """Configuration of the full iUpdater pipeline.

    Attributes
    ----------
    reference_count:
        Number of reference locations; ``None`` uses the matrix rank (the
        paper's minimal choice, equal to the number of links).
    mic_strategy:
        Reference-selection strategy (``"qr"`` or ``"gauss"``).
    lrr:
        Configuration of the low-rank-representation solve.
    solver:
        Configuration of the self-augmented RSVD solver.
    include_reference_in_mask:
        When True (default) the fresh reference columns are also added to the
        observation mask so the data-fit term sees them directly, in addition
        to Constraint 1.
    solver_backend:
        Convenience override of ``solver.solver_backend`` (``"batched"`` or
        ``"looped"``); ``None`` keeps whatever the solver config says.  Lets
        callers flip the whole pipeline between the vectorised and the
        reference ALS core without rebuilding the nested solver config.
    """

    reference_count: Optional[int] = None
    mic_strategy: str = "qr"
    lrr: LRRConfig = field(default_factory=LRRConfig)
    solver: SelfAugmentedConfig = field(default_factory=SelfAugmentedConfig)
    include_reference_in_mask: bool = True
    solver_backend: Optional[str] = None

    def __post_init__(self) -> None:
        validate_solver_backend(self.solver_backend, allow_none=True)

    def resolved_solver(self) -> SelfAugmentedConfig:
        """Solver config with the pipeline-level backend override applied."""
        if self.solver_backend is None:
            return self.solver
        return replace(self.solver, solver_backend=self.solver_backend)


@dataclass(frozen=True)
class UpdateResult:
    """Outcome of one fingerprint-database update.

    Attributes
    ----------
    matrix:
        The reconstructed fingerprint matrix.
    reference_indices:
        Column indices of the reference locations that were measured.
    mic:
        The MIC-selection result used (indices, rank, sub-matrix).
    lrr:
        The LRR solve result (correlation matrix ``Z``).
    solver:
        The self-augmented RSVD result.
    """

    matrix: FingerprintMatrix
    reference_indices: tuple
    mic: MICResult
    lrr: Optional[LRRResult]
    solver: SelfAugmentedResult

    @property
    def estimate(self) -> np.ndarray:
        """Raw reconstructed matrix values."""
        return self.matrix.values


class IUpdater:
    """The iUpdater fingerprint-update pipeline.

    Parameters
    ----------
    baseline:
        The original (or latest-updated) fingerprint matrix from which the
        MIC reference locations and the correlation matrix are derived.
    config:
        Pipeline configuration.
    rng:
        Seed or generator controlling the solver's random initialisation.
    """

    def __init__(
        self,
        baseline: FingerprintMatrix,
        config: Optional[UpdaterConfig] = None,
        rng: RngLike = None,
    ) -> None:
        self.baseline = baseline
        self.config = config or UpdaterConfig()
        self._rng = rng
        self._mic: Optional[MICResult] = None
        self._lrr: Optional[LRRResult] = None

    # ------------------------------------------------------------ module 1
    def acquire_correlation(self) -> tuple[MICResult, LRRResult]:
        """Run the Inherent Correlation Acquisition module.

        Selects the MIC reference locations from the baseline matrix and
        solves the LRR problem for the correlation matrix ``Z``.  The result
        is cached; call :meth:`reset_correlation` to force recomputation
        (e.g. after replacing the baseline).
        """
        if self._mic is None or self._lrr is None:
            self._mic = select_reference_locations(
                self.baseline.values,
                count=self.config.reference_count,
                strategy=self.config.mic_strategy,
            )
            self._lrr = low_rank_representation(
                self.baseline.values,
                self._mic.mic_matrix,
                config=self.config.lrr,
            )
        return self._mic, self._lrr

    def reset_correlation(self) -> None:
        """Drop the cached MIC / LRR results."""
        self._mic = None
        self._lrr = None

    @property
    def reference_indices(self) -> tuple:
        """Column indices where fresh measurements must be collected."""
        mic, _ = self.acquire_correlation()
        return mic.indices

    # ------------------------------------------------------------ module 3
    def update(
        self,
        no_decrease_matrix: np.ndarray,
        no_decrease_mask: np.ndarray,
        reference_matrix: np.ndarray,
        reference_indices: Optional[Sequence[int]] = None,
    ) -> UpdateResult:
        """Reconstruct the fingerprint matrix from fresh measurements.

        This is now a thin single-site adapter over the fleet service
        (:class:`repro.service.UpdateService`): the call builds a one-site
        :class:`~repro.service.types.UpdateRequest` carrying the pipeline's
        cached MIC / LRR results and returns the service's
        :class:`UpdateResult` unchanged, so existing callers keep identical
        results (pinned by ``tests/service/test_fleet_parity.py``).

        Parameters
        ----------
        no_decrease_matrix:
            ``X_B`` — fresh no-decrease measurements (zero where unobserved).
        no_decrease_mask:
            Index matrix ``B`` matching ``no_decrease_matrix``.
        reference_matrix:
            ``X_R`` — fresh measurements at the reference locations, one
            column per reference location, ordered like
            ``reference_indices``.
        reference_indices:
            Column indices the reference measurements correspond to.
            Defaults to the pipeline's own MIC selection.
        """
        # Imported here: repro.service builds on this module, so the shim
        # cannot import it at module load time.
        from repro.service.service import UpdateService
        from repro.service.types import UpdateRequest

        no_decrease_matrix = check_2d(no_decrease_matrix, "no_decrease_matrix")
        no_decrease_mask = check_2d(no_decrease_mask, "no_decrease_mask")
        reference_matrix = check_2d(reference_matrix, "reference_matrix")

        mic, lrr = self.acquire_correlation()
        if reference_indices is None:
            reference_indices = mic.indices
        reference_indices = tuple(int(i) for i in reference_indices)

        request = UpdateRequest(
            site="site",
            baseline=self.baseline,
            no_decrease_matrix=no_decrease_matrix,
            no_decrease_mask=no_decrease_mask,
            reference_matrix=reference_matrix,
            reference_indices=reference_indices,
            config=self.config,
            rng=self._rng,
            correlation=(mic, lrr),
        )
        return UpdateService().update(request).result
