"""The always-on fleet daemon: refresh and serve under one lifecycle.

Everything else in this repo is a batch you run; this package is the
system that stays up.  A :class:`~repro.daemon.coordinator.Coordinator`
owns a **persistent job queue** (:class:`~repro.daemon.queue.JobQueue`:
JSON journal + NPZ payload spool, priorities, FIFO within priority,
bounded retry with exponential backoff, crash recovery on restart), a
scheduler that runs concurrent fleet refreshes through the existing
:class:`~repro.service.executor.ShardExecutor` backends over **one shared
process pool**, and an embedded
:class:`~repro.query.engine.QueryEngine` that every completed refresh
auto-publishes into — so ``/api/localize`` always answers from the
freshest fleet.  :class:`~repro.daemon.http.DaemonServer` puts the
submit / status / result / cancel / localize API on an HTTP socket
(stdlib ``ThreadingHTTPServer``, JSON bodies);
:class:`~repro.daemon.client.DaemonClient` is the matching stdlib
client.  Graceful draining — stop accepting, finish running jobs,
journal the rest — is wired to SIGTERM by the ``daemon start`` CLI.

See ``docs/ARCHITECTURE.md`` for the lifecycle (survey → job queue →
refresh → publish → serve) and ``docs/API.md`` for the HTTP surface.
"""

from repro.daemon.client import DaemonClient, DaemonError
from repro.daemon.coordinator import (
    JOB_KINDS,
    REFRESH_FLEET,
    SERVE_PUBLISH,
    Coordinator,
    DaemonConfig,
)
from repro.daemon.http import DaemonRequestHandler, DaemonServer
from repro.daemon.queue import JobQueue
from repro.io.jobs import JOB_STATES, JobRecord

__all__ = [
    "JOB_KINDS",
    "JOB_STATES",
    "REFRESH_FLEET",
    "SERVE_PUBLISH",
    "JobRecord",
    "JobQueue",
    "DaemonConfig",
    "Coordinator",
    "DaemonServer",
    "DaemonRequestHandler",
    "DaemonClient",
    "DaemonError",
]
