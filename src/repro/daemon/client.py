"""Stdlib HTTP client for the fleet daemon's submit/status/result API.

:class:`DaemonClient` wraps ``urllib.request`` around the routes
:mod:`repro.daemon.http` serves, translating JSON error bodies into
:class:`DaemonError` and job/answer JSON back into plain dicts and NumPy
arrays.  It is deliberately dependency-free so any process that can
``import repro`` — or a few lines of hand-rolled ``urllib`` in one that
cannot — can drive a running daemon.
"""

from __future__ import annotations

import base64
import http.client
import json
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

__all__ = ["DaemonError", "DaemonClient"]


class DaemonError(RuntimeError):
    """An error response from the daemon (or a transport failure).

    ``status`` carries the HTTP status code, or ``None`` when the request
    never reached the daemon (connection refused, timeout).
    """

    def __init__(self, message: str, status: Optional[int] = None) -> None:
        super().__init__(message)
        self.status = status


class DaemonClient:
    """Talk to a running :class:`~repro.daemon.http.DaemonServer`.

    Parameters
    ----------
    url:
        Base URL the daemon listens on, e.g. ``http://127.0.0.1:8753``.
    timeout:
        Per-request socket timeout in seconds.
    """

    def __init__(self, url: str, timeout: float = 30.0) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout

    # ---------------------------------------------------------------- plumbing
    def _request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> bytes:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read()
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                message = json.loads(raw).get("error", raw.decode("utf-8", "replace"))
            except (json.JSONDecodeError, AttributeError):
                message = raw.decode("utf-8", "replace") or str(exc)
            raise DaemonError(message, status=exc.code) from exc
        except urllib.error.URLError as exc:
            raise DaemonError(
                f"cannot reach daemon at {self.url}: {exc.reason}"
            ) from exc
        except (http.client.HTTPException, OSError) as exc:
            # e.g. RemoteDisconnected / ConnectionResetError when the
            # daemon closes its socket mid-request while draining.
            raise DaemonError(
                f"connection to daemon at {self.url} failed: {exc}"
            ) from exc

    def _request_json(self, method: str, path: str, body: Optional[dict] = None):
        raw = self._request(method, path, body)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise DaemonError(
                f"daemon sent a non-JSON response from {path}: {exc}"
            ) from exc

    # --------------------------------------------------------------- endpoints
    def health(self) -> dict:
        """``GET /api/health`` — status, queue counts, current generation."""
        return self._request_json("GET", "/api/health")

    def jobs(self) -> List[dict]:
        """``GET /api/jobs`` — every job record, in submission order."""
        return self._request_json("GET", "/api/jobs")["jobs"]

    def status(self, job_id: str) -> dict:
        """``GET /api/jobs/<id>`` — one job record."""
        return self._request_json("GET", f"/api/jobs/{job_id}")

    def submit(
        self,
        payload: Union[bytes, str, Path],
        kind: str = "refresh_fleet",
        *,
        priority: int = 0,
        max_attempts: int = 3,
        backoff_seconds: float = 0.5,
        label: str = "",
        max_stack_bytes: Optional[int] = None,
        workers: int = 0,
        upload: bool = False,
    ) -> dict:
        """``POST /api/jobs`` — enqueue a job, return its record.

        ``payload`` is NPZ wire bytes (always uploaded) or a path: by
        default paths are passed by reference for the daemon to read
        locally; ``upload=True`` reads the file here and ships the bytes
        instead (for clients on another machine than the daemon).
        """
        body = {
            "kind": kind,
            "priority": priority,
            "max_attempts": max_attempts,
            "backoff_seconds": backoff_seconds,
            "label": label,
            "max_stack_bytes": max_stack_bytes,
            "workers": workers,
        }
        if isinstance(payload, bytes):
            body["payload_b64"] = base64.b64encode(payload).decode("ascii")
        elif upload:
            body["payload_b64"] = base64.b64encode(
                Path(payload).read_bytes()
            ).decode("ascii")
        else:
            body["payload_path"] = str(Path(payload).resolve())
        return self._request_json("POST", "/api/jobs", body)

    def cancel(self, job_id: str) -> dict:
        """``POST /api/jobs/<id>/cancel`` — cancel a queued job."""
        return self._request_json("POST", f"/api/jobs/{job_id}/cancel", {})

    def result(self, job_id: str) -> bytes:
        """``GET /api/jobs/<id>/result`` — the report payload's NPZ bytes."""
        return self._request("GET", f"/api/jobs/{job_id}/result")

    def fetch_result(self, job_id: str, out: Union[str, Path]) -> Path:
        """Download a completed job's result payload to ``out``."""
        out = Path(out)
        out.write_bytes(self.result(job_id))
        return out

    def localize(self, site: str, measurements) -> dict:
        """``POST /api/localize`` — answer a query batch.

        Returns the answer dict with ``indices`` (and ``points``, when the
        serving index has geometry) converted to NumPy arrays.  JSON
        carries the floats via ``repr`` round-tripping, so the values
        match the in-process engine bit for bit.
        """
        measurements = np.asarray(measurements, dtype=float)
        answer = self._request_json(
            "POST",
            "/api/localize",
            {"site": site, "measurements": measurements.tolist()},
        )
        answer["indices"] = np.asarray(answer["indices"], dtype=int)
        if answer.get("points") is not None:
            answer["points"] = np.asarray(answer["points"], dtype=float)
        return answer

    def drain(self) -> dict:
        """``POST /api/drain`` — begin graceful shutdown."""
        return self._request_json("POST", "/api/drain", {})

    # ------------------------------------------------------------------ polling
    def wait(
        self, job_id: str, timeout: float = 120.0, poll: float = 0.1
    ) -> dict:
        """Poll until a job is terminal; raises ``TimeoutError`` otherwise."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.status(job_id)
            if record["state"] in ("done", "failed", "cancelled"):
                return record
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id!r} still {record['state']!r} after {timeout:g}s"
                )
            time.sleep(poll)

    def wait_until_ready(self, timeout: float = 30.0, poll: float = 0.1) -> dict:
        """Poll ``/api/health`` until the daemon answers (startup barrier)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.health()
            except DaemonError as exc:
                if time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"daemon at {self.url} not ready after {timeout:g}s: {exc}"
                    ) from exc
            time.sleep(poll)
