"""The always-on fleet coordinator: one lifecycle for refresh *and* serve.

Everything before this module was a script you run: ``fleet run``
refreshes a payload and exits, ``query run`` serves whatever a script
hand-published.  The :class:`Coordinator` turns those one-shots into a
system that serves traffic:

* Work arrives as durable jobs on a :class:`~repro.daemon.queue.JobQueue`
  (priorities, FIFO within priority, bounded retry with exponential
  backoff, crash recovery from the JSON journal).
* A dispatcher thread claims runnable jobs and fans them out to a small
  pool of **job threads** (``DaemonConfig.job_workers`` concurrent jobs).
  Refresh jobs solve through the existing
  :class:`~repro.service.executor.ShardExecutor` seam — serially in the
  job thread, or scattered over the coordinator's **one shared process
  pool** via :class:`~repro.service.executor.PooledProcessExecutor`, each
  job honoring its own ``workers`` budget and ``max_stack_bytes`` shard
  config.  Results stay bit-identical to an offline serial refresh.
* **Lifecycle unification**: a completed ``refresh_fleet`` job writes its
  :class:`~repro.service.types.FleetReport` to the spool *and*
  auto-publishes it as the next generation of the embedded
  :class:`~repro.query.engine.QueryEngine`, so localization queries are
  always answered from the freshest fleet.  ``serve_publish`` jobs
  publish a pre-built report payload without solving anything.
* **Graceful draining**: :meth:`drain` stops accepting submissions and
  claiming new jobs, lets running jobs finish, and leaves everything
  still queued in the journal for the next start — the SIGTERM path of
  the ``daemon start`` CLI.

The coordinator itself is the same-process API (submit / status / result
/ cancel / localize); :mod:`repro.daemon.http` exposes the identical
surface over HTTP.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.daemon.queue import JobQueue
from repro.io.jobs import JobRecord
from repro.query.engine import QueryConfig, QueryEngine

__all__ = ["JOB_KINDS", "REFRESH_FLEET", "SERVE_PUBLISH", "DaemonConfig", "Coordinator"]

REFRESH_FLEET = "refresh_fleet"
"""Job kind: run a request payload through the update service."""

SERVE_PUBLISH = "serve_publish"
"""Job kind: publish an existing report payload into the query engine."""

JOB_KINDS = (REFRESH_FLEET, SERVE_PUBLISH)
"""Job kinds the coordinator ships runners for."""

#: A runner maps a claimed job to ``(result_path, generation_ordinal)``;
#: the result path is spool-relative (or ``None`` for publish-only jobs).
JobRunner = Callable[[JobRecord], Tuple[Optional[str], Optional[int]]]


@dataclass(frozen=True)
class DaemonConfig:
    """Configuration of the coordinator.

    Attributes
    ----------
    job_workers:
        Jobs executed concurrently (each on its own thread).  1 gives
        strictly serial, priority-ordered execution.
    pool_workers:
        Size of the shared process pool refresh jobs scatter shards onto;
        ``None`` uses the CPU count, 0 disables the pool entirely (every
        job solves serially regardless of its ``workers`` budget).  The
        pool is created lazily, on the first job that asks for workers.
    poll_interval:
        Dispatcher sleep between claim attempts when the queue is empty
        or backing off, in seconds.
    publish_on_refresh:
        Whether a completed refresh auto-publishes its report into the
        embedded query engine (the unified lifecycle; on by default).
    warm_refresh:
        Whether ``refresh_fleet`` jobs warm-start from the last completed
        report of the same fleet (matched by its site-name set; on by
        default).  Sites the remembered report does not cover — or whose
        geometry changed — fall back to a cold solve per site.
    query:
        Configuration of the embedded :class:`~repro.query.engine.QueryEngine`
        (matcher, backend, result cache).
    endpoints:
        Optional remote worker URLs (``fleet workers serve`` machines).
        When set, refresh jobs that ask for workers scatter their shards
        over a :class:`~repro.service.remote.RemoteExecutor` across these
        endpoints instead of the local process pool — bit-identical either
        way.  Jobs with ``workers <= 0`` still solve serially in-process.
    remote_timeout:
        Per-shard dispatch timeout for remote execution, in seconds.
    """

    job_workers: int = 2
    pool_workers: Optional[int] = None
    poll_interval: float = 0.05
    publish_on_refresh: bool = True
    warm_refresh: bool = True
    query: QueryConfig = field(default_factory=QueryConfig)
    endpoints: Optional[Tuple[str, ...]] = None
    remote_timeout: float = 30.0

    def __post_init__(self) -> None:
        if self.job_workers < 1:
            raise ValueError(
                f"job_workers must be at least 1, got {self.job_workers}"
            )
        if self.pool_workers is not None and self.pool_workers < 0:
            raise ValueError(
                f"pool_workers must be non-negative or None, got {self.pool_workers}"
            )
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        if self.endpoints is not None:
            endpoints = tuple(str(e) for e in self.endpoints)
            if not endpoints or not all(e.strip() for e in endpoints):
                raise ValueError(
                    "endpoints must be a non-empty tuple of worker URLs, "
                    f"got {self.endpoints!r}"
                )
            object.__setattr__(self, "endpoints", endpoints)
        if self.remote_timeout <= 0:
            raise ValueError(
                f"remote_timeout must be positive, got {self.remote_timeout}"
            )


class Coordinator:
    """Long-running fleet coordinator over a persistent job queue.

    Parameters
    ----------
    spool:
        Spool directory (journal + payloads + results); an existing
        journal is recovered — interrupted jobs re-queue and run again
        once :meth:`start` is called.
    config:
        Daemon configuration; defaults to :class:`DaemonConfig`.
    runners:
        Optional job-kind → runner overrides, merged over the built-in
        ``refresh_fleet`` / ``serve_publish`` runners.  The seam tests
        use to inject worker failures; production code never needs it.
    clock:
        Wall-clock source shared with the queue (injectable for tests).
    """

    def __init__(
        self,
        spool: Union[str, Path],
        config: Optional[DaemonConfig] = None,
        runners: Optional[Dict[str, JobRunner]] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.config = config or DaemonConfig()
        self.queue = JobQueue(spool, clock=clock)
        self.engine = QueryEngine(self.config.query)
        self.engine.add_publish_listener(self._record_generation)
        self._generations: List[Tuple[int, str]] = []
        self._runners: Dict[str, JobRunner] = {
            REFRESH_FLEET: self._run_refresh,
            SERVE_PUBLISH: self._run_publish,
        }
        if runners:
            self._runners.update(runners)
        self._clock = clock
        self._pool = None
        self._pool_lock = threading.Lock()
        # Last completed report per fleet (keyed by sorted site names), the
        # warm-start source for the next refresh of the same fleet.
        self._warm_reports: Dict[Tuple[str, ...], object] = {}
        self._warm_lock = threading.Lock()
        self._draining = threading.Event()
        self._stop_dispatch = threading.Event()
        self._dispatcher: Optional[threading.Thread] = None
        self._job_threads: List[threading.Thread] = []
        self._inflight = 0
        self._inflight_cond = threading.Condition()
        self._started = False

    # ---------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Start the dispatcher; idempotent while running."""
        if self._started:
            return
        if self._draining.is_set():
            raise RuntimeError("coordinator has drained; build a fresh one")
        self._stop_dispatch.clear()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-daemon-dispatch", daemon=True
        )
        self._started = True
        self._dispatcher.start()

    @property
    def is_draining(self) -> bool:
        """Whether the coordinator has stopped accepting submissions."""
        return self._draining.is_set()

    def stop_accepting(self) -> None:
        """Reject new submissions from now on (first half of a drain)."""
        self._draining.set()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Gracefully shut down: stop accepting, finish running jobs.

        New submissions are rejected immediately; the dispatcher stops
        claiming, so everything still ``queued`` stays journaled for the
        next start.  Returns ``True`` once every in-flight job finished
        (``False`` on timeout — the jobs keep running on their daemon
        threads, but the journal marks them ``running`` so a restart
        would resume them).
        """
        self._draining.set()
        self._stop_dispatch.set()
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=timeout)
        with self._inflight_cond:
            drained = self._inflight_cond.wait_for(
                lambda: self._inflight == 0, timeout=timeout
            )
        for thread in list(self._job_threads):
            thread.join(timeout=0 if not drained else timeout)
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=drained)
                self._pool = None
        self._started = False
        return drained

    # --------------------------------------------------------------- dispatcher
    def _dispatch_loop(self) -> None:
        while not self._stop_dispatch.is_set():
            job = None
            with self._inflight_cond:
                has_slot = self._inflight < self.config.job_workers
            if has_slot:
                job = self.queue.claim()
            if job is None:
                self._stop_dispatch.wait(self.config.poll_interval)
                continue
            with self._inflight_cond:
                self._inflight += 1
            thread = threading.Thread(
                target=self._run_job,
                args=(job,),
                name=f"repro-daemon-job-{job.id}",
                daemon=True,
            )
            self._job_threads.append(thread)
            thread.start()

    def _run_job(self, job: JobRecord) -> None:
        try:
            runner = self._runners.get(job.kind)
            try:
                if runner is None:
                    raise ValueError(
                        f"no runner registered for job kind {job.kind!r}; "
                        f"known kinds: {sorted(self._runners)}"
                    )
                result, generation = runner(job)
            except Exception as exc:  # noqa: BLE001 — every failure re-queues
                self.queue.fail(job.id, f"{type(exc).__name__}: {exc}")
            else:
                self.queue.complete(job.id, result=result, generation=generation)
        finally:
            self._job_threads = [
                t for t in self._job_threads if t is not threading.current_thread()
            ]
            with self._inflight_cond:
                self._inflight -= 1
                self._inflight_cond.notify_all()

    # ------------------------------------------------------------------ runners
    def _ensure_pool(self):
        """The lazily-created shared process pool (``None`` when disabled)."""
        import os

        if self.config.pool_workers == 0:
            return None
        with self._pool_lock:
            if self._pool is None and not self._draining.is_set():
                from concurrent.futures import ProcessPoolExecutor

                self._pool = ProcessPoolExecutor(
                    max_workers=self.config.pool_workers or os.cpu_count() or 1
                )
            return self._pool

    def _executor_for(self, job: JobRecord):
        from repro.service.executor import PooledProcessExecutor, SerialExecutor

        if job.workers <= 0:
            return SerialExecutor()
        if self.config.endpoints:
            from repro.service.remote import RemoteExecutor

            return RemoteExecutor(
                endpoints=self.config.endpoints,
                timeout=self.config.remote_timeout,
                max_attempts=max(1, job.max_attempts),
                backoff=job.backoff_seconds,
                max_workers=job.workers,
            )
        pool = self._ensure_pool()
        if pool is None:
            return SerialExecutor()
        return PooledProcessExecutor(pool, max_workers=job.workers)

    @staticmethod
    def _shards_for(job: JobRecord):
        from repro.service.shard import ShardConfig

        if job.max_stack_bytes is None:
            return ShardConfig()
        if job.max_stack_bytes == 0:
            return None
        return ShardConfig(max_stack_bytes=job.max_stack_bytes)

    def _run_refresh(self, job: JobRecord) -> Tuple[Optional[str], Optional[int]]:
        """Built-in ``refresh_fleet`` runner: solve, save, auto-publish."""
        from repro.io import load_requests, payload_info, save_report
        from repro.service.service import UpdateService
        from repro.service.types import FleetReport

        payload_path = self.queue.payload_path(job)
        info = payload_info(payload_path)
        requests = load_requests(payload_path)
        executor = self._executor_for(job)
        service = UpdateService()
        fleet_key = tuple(sorted(request.site for request in requests))
        warm_from = None
        if self.config.warm_refresh:
            with self._warm_lock:
                warm_from = self._warm_reports.get(fleet_key)
        reports = service.update_fleet(
            requests,
            shards=self._shards_for(job),
            executor=executor,
            warm_from=warm_from,
        )
        report = FleetReport(
            elapsed_days=float(info.get("elapsed_days") or 0.0),
            reports=tuple(reports),
            stacked_sweeps=service.last_stacked_sweeps,
            plan=service.last_plan,
            executor=executor.name,
            workers=executor.workers,
            sweeps_saved=service.last_sweeps_saved,
        )
        if self.config.warm_refresh:
            with self._warm_lock:
                self._warm_reports[fleet_key] = report
        result_rel = f"results/{job.id}.npz"
        save_report(self.queue.spool / result_rel, report)
        generation = None
        if self.config.publish_on_refresh:
            generation = self.engine.publish_report(
                report, label=job.label or f"job:{job.id}"
            ).ordinal
        return result_rel, generation

    def _run_publish(self, job: JobRecord) -> Tuple[Optional[str], Optional[int]]:
        """Built-in ``serve_publish`` runner: hot-swap a report payload in."""
        from repro.io import load_report

        report = load_report(self.queue.payload_path(job))
        generation = self.engine.publish_report(
            report, label=job.label or f"job:{job.id}"
        ).ordinal
        return None, generation

    def _record_generation(self, generation) -> None:
        self._generations.append((generation.ordinal, generation.label))

    # ----------------------------------------------------- same-process client
    def submit(
        self,
        kind: str,
        payload: Union[bytes, str, Path],
        *,
        priority: int = 0,
        max_attempts: int = 3,
        backoff_seconds: float = 0.5,
        label: str = "",
        max_stack_bytes: Optional[int] = None,
        workers: int = 0,
    ) -> JobRecord:
        """Durably enqueue a job (rejected once draining)."""
        if kind not in self._runners:
            raise ValueError(
                f"unknown job kind {kind!r}; known kinds: {sorted(self._runners)}"
            )
        if self._draining.is_set():
            raise RuntimeError(
                "coordinator is draining; not accepting new jobs"
            )
        return self.queue.submit(
            kind,
            payload,
            priority=priority,
            max_attempts=max_attempts,
            backoff_seconds=backoff_seconds,
            label=label,
            max_stack_bytes=max_stack_bytes,
            workers=workers,
        )

    def status(self, job_id: str) -> JobRecord:
        """Current record of one job (raises ``KeyError`` when unknown)."""
        return self.queue.get(job_id)

    def jobs(self) -> List[JobRecord]:
        """Every job record, in submission order."""
        return self.queue.jobs()

    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a queued job."""
        return self.queue.cancel(job_id)

    def result_path(self, job_id: str) -> Path:
        """Absolute path of a completed job's result payload."""
        job = self.queue.get(job_id)
        path = self.queue.result_path(job)
        if path is None:
            raise ValueError(
                f"job {job_id!r} is {job.state!r} and has no result payload"
            )
        return path

    def result_bytes(self, job_id: str) -> bytes:
        """A completed job's result payload as NPZ wire bytes."""
        return self.result_path(job_id).read_bytes()

    def wait(
        self, job_id: str, timeout: float = 60.0, poll: float = 0.02
    ) -> JobRecord:
        """Block until a job reaches a terminal state (or raise ``TimeoutError``)."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.queue.get(job_id)
            if job.is_terminal:
                return job
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id!r} still {job.state!r} after {timeout:g}s"
                )
            time.sleep(poll)

    def localize(self, site: str, measurements):
        """Answer a query batch from the current generation (read path)."""
        return self.engine.localize_batch(site, measurements)

    @property
    def generations(self) -> List[Tuple[int, str]]:
        """(ordinal, label) of every generation published so far."""
        return list(self._generations)

    def health(self) -> Dict[str, object]:
        """Flat status snapshot (the HTTP ``/api/health`` body)."""
        counts = self.queue.counts()
        try:
            generation = self.engine.store.current().ordinal
        except RuntimeError:
            generation = None
        return {
            "status": "draining" if self.is_draining else "serving",
            "draining": self.is_draining,
            "jobs": counts,
            "generation": generation,
            "generations_published": self.engine.store.generation_count,
            "sites": list(self.engine.sites),
            "spool": str(self.queue.spool),
        }
