"""HTTP surface of the daemon: submit / status / result / cancel / localize.

A thin stdlib layer — ``http.server.ThreadingHTTPServer`` plus a request
handler — over the :class:`~repro.daemon.coordinator.Coordinator`'s
same-process API.  Bodies are JSON both ways (job payloads ride either as
a filesystem path the daemon can read, or uploaded inline as
base64-encoded NPZ wire bytes); the one binary endpoint is the result
download, which streams the report payload back as
``application/octet-stream``.

Routes::

    GET  /api/health              daemon status, queue counts, generation
    GET  /api/jobs                every job record (+ per-state counts)
    GET  /api/jobs/<id>           one job record
    GET  /api/jobs/<id>/result    completed job's report payload (NPZ bytes)
    POST /api/jobs                submit {kind, payload_path|payload_b64, ...}
    POST /api/jobs/<id>/cancel    cancel a queued job
    POST /api/localize            {site, measurements} -> indices/points
    POST /api/drain               begin graceful shutdown (idempotent)

Error responses are JSON ``{"error": ...}`` with conventional status
codes: 400 malformed, 404 unknown job/route, 409 illegal transition,
503 draining.  See :class:`~repro.daemon.client.DaemonClient` for the
matching client and ``docs/API.md`` for the full request/response shapes.
"""

from __future__ import annotations

import base64
import binascii
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

import numpy as np

__all__ = ["DaemonRequestHandler", "DaemonServer"]

_MAX_BODY_BYTES = 256 * 1024 * 1024  # refuse absurd uploads outright


class DaemonRequestHandler(BaseHTTPRequestHandler):
    """Maps the HTTP routes onto the owning server's coordinator."""

    server_version = "repro-daemon"
    protocol_version = "HTTP/1.1"

    @property
    def coordinator(self):
        return self.server.coordinator

    def log_message(self, format, *args):  # noqa: A002 — BaseHTTPRequestHandler API
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    # ------------------------------------------------------------- responses
    def _send(self, code: int, body: bytes, content_type: str) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, code: int, payload) -> None:
        self._send(
            code, json.dumps(payload).encode("utf-8"), "application/json"
        )

    def _send_error_json(self, code: int, message: str) -> None:
        self._send_json(code, {"error": message})

    def _read_json_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length < 0 or length > _MAX_BODY_BYTES:
            raise ValueError(f"unreasonable request body size {length}")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ValueError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(body, dict):
            raise ValueError("request body must be a JSON object")
        return body

    @staticmethod
    def _record_json(job) -> dict:
        from repro.io.jobs import job_to_json

        return job_to_json(job)

    # ----------------------------------------------------------------- routes
    def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        path = self.path.split("?", 1)[0].rstrip("/")
        try:
            if path == "/api/health":
                self._send_json(200, self.coordinator.health())
            elif path == "/api/jobs":
                self._send_json(
                    200,
                    {
                        "jobs": [
                            self._record_json(job)
                            for job in self.coordinator.jobs()
                        ],
                        "counts": self.coordinator.queue.counts(),
                    },
                )
            elif path.startswith("/api/jobs/") and path.endswith("/result"):
                job_id = path[len("/api/jobs/") : -len("/result")]
                self._send(
                    200,
                    self.coordinator.result_bytes(job_id),
                    "application/octet-stream",
                )
            elif path.startswith("/api/jobs/"):
                job_id = path[len("/api/jobs/") :]
                self._send_json(
                    200, self._record_json(self.coordinator.status(job_id))
                )
            else:
                self._send_error_json(404, f"unknown route {path!r}")
        except KeyError as exc:
            self._send_error_json(404, str(exc.args[0]) if exc.args else str(exc))
        except ValueError as exc:
            self._send_error_json(409, str(exc))

    def do_POST(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        path = self.path.split("?", 1)[0].rstrip("/")
        try:
            body = self._read_json_body()
        except ValueError as exc:
            self._send_error_json(400, str(exc))
            return
        try:
            if path == "/api/jobs":
                self._submit(body)
            elif path.startswith("/api/jobs/") and path.endswith("/cancel"):
                job_id = path[len("/api/jobs/") : -len("/cancel")]
                self._send_json(
                    200, self._record_json(self.coordinator.cancel(job_id))
                )
            elif path == "/api/localize":
                self._localize(body)
            elif path == "/api/drain":
                self.server.initiate_drain()
                self._send_json(202, {"draining": True})
            else:
                self._send_error_json(404, f"unknown route {path!r}")
        except KeyError as exc:
            self._send_error_json(404, str(exc.args[0]) if exc.args else str(exc))
        except RuntimeError as exc:
            self._send_error_json(503, str(exc))
        except ValueError as exc:
            self._send_error_json(400, str(exc))

    # ---------------------------------------------------------------- handlers
    def _submit(self, body: dict) -> None:
        kind = body.get("kind", "refresh_fleet")
        payload_path = body.get("payload_path")
        payload_b64 = body.get("payload_b64")
        if (payload_path is None) == (payload_b64 is None):
            raise ValueError(
                "submit needs exactly one of payload_path (a file the daemon "
                "can read) or payload_b64 (base64 NPZ wire bytes)"
            )
        if payload_b64 is not None:
            try:
                payload = base64.b64decode(payload_b64, validate=True)
            except (binascii.Error, TypeError) as exc:
                raise ValueError(f"payload_b64 is not valid base64: {exc}") from exc
        else:
            payload = str(payload_path)
        job = self.coordinator.submit(
            str(kind),
            payload,
            priority=int(body.get("priority", 0)),
            max_attempts=int(body.get("max_attempts", 3)),
            backoff_seconds=float(body.get("backoff_seconds", 0.5)),
            label=str(body.get("label", "")),
            max_stack_bytes=(
                None
                if body.get("max_stack_bytes") is None
                else int(body["max_stack_bytes"])
            ),
            workers=int(body.get("workers", 0)),
        )
        self._send_json(201, self._record_json(job))

    def _localize(self, body: dict) -> None:
        site = body.get("site")
        measurements = body.get("measurements")
        if not site or measurements is None:
            raise ValueError("localize needs 'site' and 'measurements'")
        answer = self.coordinator.localize(
            str(site), np.asarray(measurements, dtype=float)
        )
        self._send_json(
            200,
            {
                "site": answer.site,
                "matcher": answer.matcher,
                "backend": answer.backend,
                "generation": answer.generation,
                "indices": [int(i) for i in answer.indices],
                "points": (
                    None
                    if answer.points is None
                    else [[float(x) for x in row] for row in answer.points]
                ),
                "cache_hits": int(answer.cache_hits),
            },
        )


class DaemonServer(ThreadingHTTPServer):
    """The daemon's HTTP front end, owning one coordinator.

    ``start`` boots the coordinator's scheduler and serves requests on a
    background thread; ``initiate_drain`` (also triggered by the
    ``POST /api/drain`` route and the CLI's SIGTERM handler) runs the
    graceful shutdown sequence — coordinator drains first, the socket
    closes last, so status queries keep working while running jobs
    finish.  ``wait`` blocks until that sequence completes.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, coordinator, host: str = "127.0.0.1", port: int = 0) -> None:
        super().__init__((host, port), DaemonRequestHandler)
        self.coordinator = coordinator
        self.verbose = False
        self._serve_thread: Optional[threading.Thread] = None
        self._drain_thread: Optional[threading.Thread] = None
        self._drain_lock = threading.Lock()
        self._drained = threading.Event()

    @property
    def url(self) -> str:
        """Base URL clients should talk to."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> None:
        """Start the coordinator and serve HTTP on a background thread."""
        self.coordinator.start()
        self._serve_thread = threading.Thread(
            target=self.serve_forever, name="repro-daemon-http", daemon=True
        )
        self._serve_thread.start()

    def initiate_drain(self) -> None:
        """Begin graceful shutdown without blocking the calling thread."""
        with self._drain_lock:
            if self._drain_thread is not None:
                return
            # Reject new submissions immediately; the background thread
            # then waits out the running jobs before closing the socket.
            self.coordinator.stop_accepting()
            self._drain_thread = threading.Thread(
                target=self._drain_and_close,
                name="repro-daemon-drain",
                daemon=True,
            )
            self._drain_thread.start()

    def _drain_and_close(self) -> None:
        try:
            self.coordinator.drain()
            self.shutdown()
            self.server_close()
        finally:
            self._drained.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until a drain completes; returns ``False`` on timeout."""
        return self._drained.wait(timeout=timeout)

    def stop(self, timeout: Optional[float] = None) -> bool:
        """Drain and wait — the blocking convenience for tests and the CLI."""
        self.initiate_drain()
        return self.wait(timeout=timeout)
