"""The daemon's persistent job queue: a spool directory plus a JSON journal.

Every mutation — submit, claim, complete, fail, cancel — rewrites the
journal atomically (:func:`repro.io.jobs.save_journal`), so the queue on
disk is always a consistent snapshot of the queue in memory.  That is the
whole crash-recovery story: a coordinator killed at any instant restarts
by loading the journal, moving interrupted ``running`` jobs back to
``queued`` (their payloads are still in the spool, their attempt counts
survive), and letting the scheduler claim them again.

Ordering is **priority first, FIFO within priority**: ``claim`` picks the
queued job with the highest ``priority``, breaking ties on the monotonic
submission ``sequence``.  Failed jobs re-queue with exponential backoff
(``not_before = now + backoff_seconds * 2**(attempts-1)``) until their
``max_attempts`` bound, after which they park terminally ``failed`` with
the last error message preserved.

Spool layout::

    <spool>/
      journal.json          # every job record (repro-daemon-journal v1)
      payloads/<job id>.npz # inputs uploaded as bytes at submit time
      results/<job id>.npz  # refresh reports written at completion

Payloads submitted by *path* stay where the caller put them; only
byte-uploads are copied into ``payloads/``.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.io.jobs import (
    JOB_CANCELLED,
    JOB_DONE,
    JOB_FAILED,
    JOB_QUEUED,
    JOB_RUNNING,
    JobRecord,
    copy_record,
    load_journal,
    save_journal,
)

__all__ = ["JobQueue"]


class JobQueue:
    """Durable, thread-safe priority queue of :class:`~repro.io.jobs.JobRecord`.

    Parameters
    ----------
    spool:
        Directory holding the journal and payload/result files; created
        (with parents) if missing.  An existing journal is loaded and
        recovered: interrupted ``running`` jobs go back to ``queued``.
    clock:
        Wall-clock source (epoch seconds); injectable for tests that
        exercise backoff without sleeping.
    """

    def __init__(
        self, spool: Union[str, Path], clock: Callable[[], float] = time.time
    ) -> None:
        self.spool = Path(spool)
        self.payload_dir = self.spool / "payloads"
        self.result_dir = self.spool / "results"
        for directory in (self.spool, self.payload_dir, self.result_dir):
            directory.mkdir(parents=True, exist_ok=True)
        self._clock = clock
        self._lock = threading.RLock()
        self._jobs: Dict[str, JobRecord] = {}
        self._sequence = 0
        self._recovered: List[str] = []
        if self.journal_path.exists():
            for job in load_journal(self.journal_path):
                self._jobs[job.id] = job
                self._sequence = max(self._sequence, job.sequence + 1)
            self._recover()

    @property
    def journal_path(self) -> Path:
        """The queue's JSON journal file."""
        return self.spool / "journal.json"

    @property
    def recovered_jobs(self) -> List[str]:
        """Ids of ``running`` jobs this instance re-queued at load time."""
        return list(self._recovered)

    # ------------------------------------------------------------- persistence
    def _persist(self) -> None:
        save_journal(self.journal_path, list(self._jobs.values()))

    def _recover(self) -> None:
        """Re-queue jobs a dead coordinator left ``running``.

        The interrupted attempt already counted (claims increment
        ``attempts``), so a job that keeps killing its coordinator still
        converges to ``failed`` instead of crash-looping forever.
        """
        requeued = []
        for job in self._jobs.values():
            if job.state == JOB_RUNNING:
                job.state = JOB_QUEUED
                job.started_at = None
                requeued.append(job.id)
        self._recovered = requeued
        if requeued:
            self._persist()

    # ------------------------------------------------------------------ submit
    def submit(
        self,
        kind: str,
        payload: Union[bytes, str, Path],
        *,
        priority: int = 0,
        max_attempts: int = 3,
        backoff_seconds: float = 0.5,
        label: str = "",
        max_stack_bytes: Optional[int] = None,
        workers: int = 0,
    ) -> JobRecord:
        """Durably enqueue one job and return a copy of its record.

        ``payload`` is either raw NPZ wire bytes (spooled into
        ``payloads/<id>.npz``) or a path to an existing payload file
        (referenced in place; must exist at submit time).
        """
        with self._lock:
            now = self._clock()
            job_id = f"j{self._sequence:06d}"
            if isinstance(payload, bytes):
                payload_ref = f"payloads/{job_id}.npz"
                (self.spool / payload_ref).write_bytes(payload)
            else:
                path = Path(payload)
                if not path.is_file():
                    raise ValueError(
                        f"payload path {str(path)!r} does not exist; submit "
                        "bytes to spool the payload with the job instead"
                    )
                payload_ref = str(path.resolve())
            job = JobRecord(
                id=job_id,
                kind=kind,
                priority=int(priority),
                sequence=self._sequence,
                max_attempts=max_attempts,
                backoff_seconds=backoff_seconds,
                payload=payload_ref,
                label=label,
                max_stack_bytes=max_stack_bytes,
                workers=workers,
                submitted_at=now,
            )
            self._sequence += 1
            self._jobs[job.id] = job
            self._persist()
            return copy_record(job)

    # ------------------------------------------------------------- scheduling
    def claim(self) -> Optional[JobRecord]:
        """Claim the next runnable job (highest priority, FIFO within).

        Returns a copy of the claimed record marked ``running`` with its
        attempt counted, or ``None`` when nothing is claimable (empty
        queue, or every queued job is still inside its backoff window).
        """
        with self._lock:
            now = self._clock()
            runnable = [
                job
                for job in self._jobs.values()
                if job.state == JOB_QUEUED and job.not_before <= now
            ]
            if not runnable:
                return None
            job = min(runnable, key=lambda j: (-j.priority, j.sequence))
            job.state = JOB_RUNNING
            job.attempts += 1
            job.started_at = now
            self._persist()
            return copy_record(job)

    def next_eta(self) -> Optional[float]:
        """Epoch time the earliest backoff window opens (``None`` if none)."""
        with self._lock:
            etas = [
                job.not_before
                for job in self._jobs.values()
                if job.state == JOB_QUEUED and job.not_before > self._clock()
            ]
            return min(etas) if etas else None

    # ------------------------------------------------------------- transitions
    def _running(self, job_id: str) -> JobRecord:
        job = self._jobs.get(job_id)
        if job is None:
            raise KeyError(f"unknown job {job_id!r}")
        if job.state != JOB_RUNNING:
            raise ValueError(
                f"job {job_id!r} is {job.state!r}, not running; only claimed "
                "jobs can complete or fail"
            )
        return job

    def complete(
        self,
        job_id: str,
        result: Optional[str] = None,
        generation: Optional[int] = None,
    ) -> JobRecord:
        """Mark a running job ``done``, recording its result payload path
        (spool-relative) and the serving generation it published."""
        with self._lock:
            job = self._running(job_id)
            job.state = JOB_DONE
            job.result = result
            job.generation = generation
            job.error = None
            job.finished_at = self._clock()
            self._persist()
            return copy_record(job)

    def fail(self, job_id: str, error: str) -> JobRecord:
        """Record a failed attempt: re-queue with exponential backoff, or
        park the job terminally ``failed`` once ``max_attempts`` is spent."""
        with self._lock:
            job = self._running(job_id)
            job.error = str(error)
            now = self._clock()
            if job.attempts >= job.max_attempts:
                job.state = JOB_FAILED
                job.finished_at = now
            else:
                job.state = JOB_QUEUED
                job.started_at = None
                job.not_before = now + job.backoff_seconds * 2 ** (job.attempts - 1)
            self._persist()
            return copy_record(job)

    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a queued job (running and terminal jobs cannot be)."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(f"unknown job {job_id!r}")
            if job.state != JOB_QUEUED:
                raise ValueError(
                    f"job {job_id!r} is {job.state!r}; only queued jobs can "
                    "be cancelled"
                )
            job.state = JOB_CANCELLED
            job.finished_at = self._clock()
            self._persist()
            return copy_record(job)

    # -------------------------------------------------------------- inspection
    def get(self, job_id: str) -> JobRecord:
        """A copy of one record; raises ``KeyError`` when unknown."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(f"unknown job {job_id!r}")
            return copy_record(job)

    def jobs(self) -> List[JobRecord]:
        """Copies of every record, in submission order."""
        with self._lock:
            return [
                copy_record(job)
                for job in sorted(self._jobs.values(), key=lambda j: j.sequence)
            ]

    def counts(self) -> Dict[str, int]:
        """Number of jobs per state (every state present, zero or not)."""
        with self._lock:
            counts = {state: 0 for state in (
                JOB_QUEUED, JOB_RUNNING, JOB_DONE, JOB_FAILED, JOB_CANCELLED
            )}
            for job in self._jobs.values():
                counts[job.state] += 1
            return counts

    @property
    def pending_count(self) -> int:
        """Queued plus running jobs — what a drain leaves journaled."""
        counts = self.counts()
        return counts[JOB_QUEUED] + counts[JOB_RUNNING]

    # ------------------------------------------------------------------- paths
    def payload_path(self, job: JobRecord) -> Path:
        """Absolute path of the job's input payload."""
        path = Path(job.payload)
        return path if path.is_absolute() else self.spool / path

    def result_path(self, job: JobRecord) -> Optional[Path]:
        """Absolute path of the job's result payload (``None`` until done)."""
        if job.result is None:
            return None
        path = Path(job.result)
        return path if path.is_absolute() else self.spool / path
