"""Deployment environments matching the paper's three testbeds."""

from repro.environments.base import Deployment, EnvironmentSpec
from repro.environments.builder import build_deployment
from repro.environments.hall import hall_environment
from repro.environments.library import library_environment
from repro.environments.office import office_environment

__all__ = [
    "Deployment",
    "EnvironmentSpec",
    "build_deployment",
    "office_environment",
    "library_environment",
    "hall_environment",
]
