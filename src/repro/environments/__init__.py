"""Deployment environments matching the paper's three testbeds."""

from repro.environments.base import Deployment, EnvironmentSpec
from repro.environments.builder import build_deployment
from repro.environments.hall import hall_environment
from repro.environments.library import library_environment
from repro.environments.office import office_environment

__all__ = [
    "Deployment",
    "EnvironmentSpec",
    "ENVIRONMENT_FACTORIES",
    "build_deployment",
    "environment_by_name",
    "office_environment",
    "library_environment",
    "hall_environment",
]

ENVIRONMENT_FACTORIES = {
    "office": office_environment,
    "hall": hall_environment,
    "library": library_environment,
}
"""Registry mapping environment names to their spec factories."""


def environment_by_name(name: str, **overrides) -> EnvironmentSpec:
    """Build an environment spec from its registered name.

    Keyword overrides (e.g. ``link_count``, ``locations_per_link``) are
    forwarded to the factory, which is how the fleet CLI shrinks the paper
    testbeds down to CI-sized deployments.
    """
    try:
        factory = ENVIRONMENT_FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown environment {name!r}; expected one of "
            f"{sorted(ENVIRONMENT_FACTORIES)}"
        ) from None
    return factory(**overrides)
