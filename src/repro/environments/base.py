"""Deployment data structures.

A *deployment* couples an environment specification (size, grid layout,
multipath richness) with the concrete link geometry and the number of
location grids per link.  The fingerprint matrix built on top of a deployment
has one row per link and one column per grid location; the grid ordering
follows the paper's convention (Fig. 3): the locations of link ``i`` occupy
columns ``(i-1) * N/M .. i * N/M - 1``, i.e. columns are grouped into
per-link stripes so that the largely-decrease matrix ``X_D`` is simply the
diagonal of stripes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.rf.channel import ChannelConfig, LinkChannel
from repro.rf.geometry import Link, Point

__all__ = ["EnvironmentSpec", "Deployment"]


@dataclass(frozen=True)
class EnvironmentSpec:
    """Static description of a monitoring environment.

    Attributes
    ----------
    name:
        Human-readable name ("office", "library", "hall").
    width_m, height_m:
        Physical dimensions of the monitoring area.
    link_count:
        Number of parallel transmitter/receiver pairs (``M``).
    locations_per_link:
        Number of grid locations assigned to each link's stripe
        (``N / M``); the paper's office uses 94 grids over 8 links, which we
        round to a per-link stripe so the matrix structure is exact.
    grid_spacing_m:
        Distance between adjacent grid locations along a link (0.6 m in the
        paper).
    multipath_level:
        Qualitative multipath richness ("low", "medium", "high"), used by the
        builder to size the scatterer field.
    channel_config:
        Full physical-layer configuration for the environment.
    """

    name: str
    width_m: float
    height_m: float
    link_count: int
    locations_per_link: int
    grid_spacing_m: float = 0.6
    multipath_level: str = "medium"
    channel_config: ChannelConfig = field(default_factory=ChannelConfig)

    def __post_init__(self) -> None:
        if self.width_m <= 0 or self.height_m <= 0:
            raise ValueError("environment dimensions must be positive")
        if self.link_count <= 1:
            raise ValueError("link_count must be at least 2")
        if self.locations_per_link <= 1:
            raise ValueError("locations_per_link must be at least 2")
        if self.grid_spacing_m <= 0:
            raise ValueError("grid_spacing_m must be positive")
        if self.multipath_level not in {"low", "medium", "high"}:
            raise ValueError("multipath_level must be 'low', 'medium' or 'high'")

    @property
    def total_locations(self) -> int:
        """Total number of grid locations ``N = M * (N/M)``."""
        return self.link_count * self.locations_per_link


@dataclass
class Deployment:
    """A concrete deployment: links, grid locations and the radio channel."""

    spec: EnvironmentSpec
    links: List[Link]
    locations: List[Point]
    channel: LinkChannel

    def __post_init__(self) -> None:
        if len(self.links) != self.spec.link_count:
            raise ValueError("number of links does not match the specification")
        if len(self.locations) != self.spec.total_locations:
            raise ValueError("number of locations does not match the specification")

    @property
    def link_count(self) -> int:
        """Number of links ``M``."""
        return len(self.links)

    @property
    def location_count(self) -> int:
        """Number of grid locations ``N``."""
        return len(self.locations)

    @property
    def locations_per_link(self) -> int:
        """Stripe width ``N / M``."""
        return self.spec.locations_per_link

    def location_array(self) -> np.ndarray:
        """All grid locations as an ``(N, 2)`` array of coordinates."""
        return np.array([[p.x, p.y] for p in self.locations], dtype=float)

    def stripe_indices(self, link_index: int) -> range:
        """Column indices of the grid locations lying on ``link_index``'s path."""
        if not 0 <= link_index < self.link_count:
            raise ValueError(f"link_index must lie in [0, {self.link_count - 1}]")
        width = self.locations_per_link
        return range(link_index * width, (link_index + 1) * width)

    def link_of_location(self, location_index: int) -> int:
        """Index of the link whose stripe contains ``location_index``."""
        if not 0 <= location_index < self.location_count:
            raise ValueError(
                f"location_index must lie in [0, {self.location_count - 1}]"
            )
        return location_index // self.locations_per_link

    def stripe_offset(self, location_index: int) -> int:
        """Offset of ``location_index`` within its link stripe (``u`` in the paper)."""
        return location_index % self.locations_per_link

    def location_point(self, location_index: int) -> Point:
        """Coordinates of a grid location."""
        return self.locations[location_index]

    def neighbours_along_link(self, location_index: int) -> List[int]:
        """Indices of the neighbouring locations on the same link stripe."""
        link = self.link_of_location(location_index)
        offset = self.stripe_offset(location_index)
        stripe = list(self.stripe_indices(link))
        neighbours = []
        if offset > 0:
            neighbours.append(stripe[offset - 1])
        if offset < self.locations_per_link - 1:
            neighbours.append(stripe[offset + 1])
        return neighbours

    def localization_error_m(self, true_index: int, estimated_index: int) -> float:
        """Euclidean distance between two grid locations (the paper's metric)."""
        true_point = self.location_point(true_index)
        estimated_point = self.location_point(estimated_index)
        return true_point.distance_to(estimated_point)
