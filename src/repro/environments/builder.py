"""Deployment builder: place parallel links and the per-link grid stripes.

The paper deploys ``M`` parallel transmitter/receiver pairs across the area
(Fig. 3).  The builder places link ``i`` as a horizontal segment at a fixed
``y`` coordinate; the ``N/M`` grid locations of that link's stripe are spread
evenly along the segment, which mirrors the paper's column ordering where
location ``j = (i-1) * N/M + u`` is the ``u``-th grid on link ``i``.

Grid locations deliberately lie *on* the link paths: that is what generates
the large / small / no-decrease structure of the fingerprint matrix — a
target standing on link ``i``'s stripe blocks link ``i`` (large decrease),
sits inside the Fresnel zone of the adjacent links (small decrease), and has
no measurable effect on far-away links (no decrease).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.environments.base import Deployment, EnvironmentSpec
from repro.rf.channel import ChannelConfig, LinkChannel
from repro.rf.geometry import Link, Point
from repro.rf.multipath import MultipathConfig

__all__ = ["build_deployment", "multipath_config_for_level"]

_MULTIPATH_LEVELS = {
    "low": MultipathConfig(
        scatterer_count=4, strength_std_db=0.5, target_coupling_db=0.35
    ),
    "medium": MultipathConfig(
        scatterer_count=14, strength_std_db=1.0, target_coupling_db=0.8
    ),
    "high": MultipathConfig(
        scatterer_count=28, strength_std_db=1.5, target_coupling_db=1.3
    ),
}


def multipath_config_for_level(level: str) -> MultipathConfig:
    """Multipath configuration associated with a qualitative richness level."""
    try:
        return _MULTIPATH_LEVELS[level]
    except KeyError as exc:
        raise ValueError(
            f"unknown multipath level {level!r}; expected one of {sorted(_MULTIPATH_LEVELS)}"
        ) from exc


def build_deployment(spec: EnvironmentSpec, seed: Optional[int] = None) -> Deployment:
    """Construct a :class:`Deployment` from an environment specification.

    Parameters
    ----------
    spec:
        Environment description (size, link count, stripe width, multipath
        level, channel configuration).
    seed:
        Seed controlling the random parts of the radio substrate (shadowing,
        scatterer placement, temporal drift realisations).  Two deployments
        built from the same spec and seed produce identical RSS.
    """
    margin = 0.5  # keep transceivers slightly inside the walls
    usable_height = spec.height_m - 2 * margin
    if usable_height <= 0:
        raise ValueError("environment too small for the 0.5 m deployment margin")

    # Evenly spaced horizontal links.
    links = []
    for i in range(spec.link_count):
        y = margin + usable_height * (i + 0.5) / spec.link_count
        transmitter = Point(margin, y)
        receiver = Point(spec.width_m - margin, y)
        links.append(Link(index=i, transmitter=transmitter, receiver=receiver))

    # Grid locations: per-link stripes along each link.
    locations = []
    for i, link in enumerate(links):
        for u in range(spec.locations_per_link):
            fraction = (u + 0.5) / spec.locations_per_link
            x = link.transmitter.x + fraction * (link.receiver.x - link.transmitter.x)
            y = link.transmitter.y + fraction * (link.receiver.y - link.transmitter.y)
            locations.append(Point(x, y))

    channel_config = spec.channel_config
    desired_multipath = multipath_config_for_level(spec.multipath_level)
    if channel_config.multipath != desired_multipath:
        channel_config = replace(channel_config, multipath=desired_multipath)

    channel = LinkChannel(
        links=links,
        area_width=spec.width_m,
        area_height=spec.height_m,
        config=channel_config,
        seed=seed,
    )
    return Deployment(spec=spec, links=links, locations=locations, channel=channel)
