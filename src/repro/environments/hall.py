"""The hall environment (10 m x 10 m, 8 links, 120 effective grids).

The paper's empty hall has mostly line-of-sight links and therefore low
multipath.  120 grids over 8 links gives exactly 15 grid locations per link
stripe.
"""

from __future__ import annotations

from repro.environments.base import EnvironmentSpec
from repro.rf.channel import ChannelConfig
from repro.rf.propagation import PropagationConfig
from repro.rf.variation import VariationConfig

__all__ = ["hall_environment"]


def hall_environment(
    locations_per_link: int = 15,
    link_count: int = 8,
    channel_config: ChannelConfig | None = None,
) -> EnvironmentSpec:
    """Environment specification for the paper's empty-hall testbed."""
    if channel_config is None:
        channel_config = ChannelConfig(
            propagation=PropagationConfig(path_loss_exponent=2.0, shadowing_std_db=1.5),
            variation=VariationConfig(
                short_term_std_db=1.0,
                outlier_probability=0.04,
            ),
        )
    return EnvironmentSpec(
        name="hall",
        width_m=10.0,
        height_m=10.0,
        link_count=link_count,
        locations_per_link=locations_per_link,
        grid_spacing_m=0.6,
        multipath_level="low",
        channel_config=channel_config,
    )
