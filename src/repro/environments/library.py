"""The library environment (8 m x 11 m, 6 links, 72 effective grids).

The paper's library is full of metal book racks, producing rich non-line-of-
sight multipath ("high" level).  72 grids over 6 links gives exactly 12 grid
locations per link stripe.
"""

from __future__ import annotations

from repro.environments.base import EnvironmentSpec
from repro.rf.channel import ChannelConfig
from repro.rf.propagation import PropagationConfig
from repro.rf.variation import VariationConfig

__all__ = ["library_environment"]


def library_environment(
    locations_per_link: int = 12,
    link_count: int = 6,
    channel_config: ChannelConfig | None = None,
) -> EnvironmentSpec:
    """Environment specification for the paper's library testbed."""
    if channel_config is None:
        channel_config = ChannelConfig(
            propagation=PropagationConfig(path_loss_exponent=3.0, shadowing_std_db=3.5),
            variation=VariationConfig(
                short_term_std_db=1.5,
                outlier_probability=0.07,
            ),
        )
    return EnvironmentSpec(
        name="library",
        width_m=11.0,
        height_m=8.0,
        link_count=link_count,
        locations_per_link=locations_per_link,
        grid_spacing_m=0.6,
        multipath_level="high",
        channel_config=channel_config,
    )
