"""The office environment (9 m x 12 m, 8 links, 94 effective grids).

The paper's office has desks and cubicles producing a mix of line-of-sight
and non-line-of-sight links ("medium" multipath).  94 effective grids do not
divide evenly into 8 per-link stripes, so we use 96 grids (12 per link); the
two extra grids correspond to cells the paper excluded for furniture and do
not change any of the matrix-structure arguments.
"""

from __future__ import annotations

from dataclasses import replace

from repro.environments.base import EnvironmentSpec
from repro.rf.channel import ChannelConfig
from repro.rf.propagation import PropagationConfig
from repro.rf.variation import VariationConfig

__all__ = ["office_environment"]


def office_environment(
    locations_per_link: int = 12,
    link_count: int = 8,
    channel_config: ChannelConfig | None = None,
) -> EnvironmentSpec:
    """Environment specification for the paper's office testbed.

    Parameters
    ----------
    locations_per_link:
        Stripe width ``N / M``; the default of 12 gives 96 grid locations,
        the closest stripe-aligned value to the paper's 94.
    link_count:
        Number of parallel Wi-Fi links (8 in the paper).
    channel_config:
        Optional override of the physical-layer configuration.
    """
    if channel_config is None:
        channel_config = ChannelConfig(
            propagation=PropagationConfig(path_loss_exponent=2.6, shadowing_std_db=2.5),
            variation=VariationConfig(),
        )
    return EnvironmentSpec(
        name="office",
        width_m=12.0,
        height_m=9.0,
        link_count=link_count,
        locations_per_link=locations_per_link,
        grid_spacing_m=0.6,
        multipath_level="medium",
        channel_config=channel_config,
    )
