"""Experiment harness regenerating every figure of the paper's evaluation."""

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentRunner
from repro.experiments import figures

__all__ = ["ExperimentConfig", "ExperimentRunner", "figures"]
