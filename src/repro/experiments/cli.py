"""Command-line interface for the experiment harness.

Lets a downstream user list and run the per-figure experiments without
writing any code::

    python -m repro.experiments.cli list
    python -m repro.experiments.cli run labor_cost_savings
    python -m repro.experiments.cli run fig21_localization_cdf --preset full

The output uses the same text formatters as the benchmark harness, so the
rows can be compared directly against the paper's figures.
"""

from __future__ import annotations

import argparse
import sys
from typing import Iterable, Optional

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import (
    format_cdf_summary,
    format_key_values,
    format_series_table,
)
from repro.experiments.runner import ExperimentRunner

__all__ = ["main", "build_parser", "render_result"]


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the evaluation figures of the iUpdater paper.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available experiments")

    run_parser = subparsers.add_parser("run", help="run one or more experiments")
    run_parser.add_argument("names", nargs="+", help="experiment names (see 'list')")
    run_parser.add_argument(
        "--preset",
        choices=("quick", "full"),
        default="quick",
        help="experiment preset: 'quick' (CI-sized) or 'full' (paper protocol)",
    )
    run_parser.add_argument(
        "--seed", type=int, default=None, help="override the substrate random seed"
    )
    return parser


def _is_scalar_mapping(value) -> bool:
    return isinstance(value, dict) and all(
        isinstance(v, (int, float, bool, np.floating, np.integer)) for v in value.values()
    )


def _is_series_mapping(value) -> bool:
    return isinstance(value, dict) and all(isinstance(v, dict) for v in value.values()) and value


def _is_sample_mapping(value) -> bool:
    return isinstance(value, dict) and all(
        isinstance(v, (list, tuple, np.ndarray)) for v in value.values()
    ) and value


def render_result(name: str, result: dict) -> str:
    """Render an experiment's result dictionary as plain text."""
    lines = [f"== {name} =="]
    scalars = {}
    for key, value in result.items():
        if isinstance(value, (int, float, bool, str, np.floating, np.integer)):
            scalars[key] = value
        elif _is_scalar_mapping(value):
            lines.append(format_key_values(key, value))
        elif _is_series_mapping(value):
            lines.append(format_series_table(key, value))
        elif _is_sample_mapping(value):
            lines.append(format_cdf_summary(key, value))
        elif isinstance(value, np.ndarray) and value.ndim == 1 and value.size <= 16:
            scalars[key] = np.array2string(value, precision=3)
        # Large arrays are omitted from the textual report.
    if scalars:
        lines.insert(1, format_key_values("summary", scalars))
    return "\n".join(lines)


def main(argv: Optional[Iterable[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)

    if args.command == "list":
        for name in ExperimentRunner.available():
            print(name)
        return 0

    config = ExperimentConfig.full() if args.preset == "full" else ExperimentConfig.quick()
    if args.seed is not None:
        config = ExperimentConfig(
            timestamps_days=config.timestamps_days,
            localization_trials=config.localization_trials,
            seed=args.seed,
            survey_samples=config.survey_samples,
            reference_samples=config.reference_samples,
            online_samples=config.online_samples,
        )
    runner = ExperimentRunner(config)

    available = set(ExperimentRunner.available())
    unknown = [name for name in args.names if name not in available]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print("use 'list' to see the available names", file=sys.stderr)
        return 2

    for name in args.names:
        result = runner.run(name)
        print(render_result(name, result))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
