"""Command-line interface for the experiment harness.

Lets a downstream user list and run the per-figure experiments without
writing any code::

    python -m repro.experiments.cli list
    python -m repro.experiments.cli run labor_cost_savings
    python -m repro.experiments.cli run fig21_localization_cdf --preset full
    python -m repro.experiments.cli run fig20_labor_cost fig05_low_rank --jobs 2
    python -m repro.experiments.cli fleet --environments office,hall,library
    python -m repro.experiments.cli fleet export --sites 100 --out requests.npz
    python -m repro.experiments.cli fleet run --in requests.npz --out report.npz

The ``fleet`` subcommand drives the update service across several
environments at once (rank-grouped, cache-budgeted shards of stacked
batched solves) and reports per-site and aggregate refresh quality.  Its
``export`` sub-subcommand synthesizes a fleet of N sites from the
environment registry into an NPZ wire payload; ``run`` refreshes such a
payload from disk — no simulator required on the serving side — and
optionally writes the full report payload back out.  ``fleet run
--workers N`` scatters the planned shards over N worker processes
(bit-identical to serial execution); ``run --jobs N`` fans independent
experiments out across worker processes.

The output uses the same text formatters as the benchmark harness, so the
rows can be compared directly against the paper's figures.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import Iterable, Optional

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import (
    format_cdf_summary,
    format_fleet_report,
    format_key_values,
    format_series_table,
)
from repro.experiments.runner import ExperimentRunner

__all__ = ["main", "build_parser", "render_result", "run_fleet"]


def _parse_environments(value: str) -> list:
    names = [name.strip() for name in value.split(",") if name.strip()]
    if not names:
        raise argparse.ArgumentTypeError("expected a comma-separated environment list")
    return names


def _parse_days(value: str) -> list:
    try:
        days = [float(part) for part in value.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError("expected a comma-separated list of day stamps")
    if not days or any(d <= 0 for d in days):
        raise argparse.ArgumentTypeError("day stamps must be positive")
    return days


def _parse_int_list(value: str) -> list:
    """Comma-separated positive integers (cycled per site by ``fleet export``)."""
    try:
        numbers = [int(part) for part in value.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError("expected a comma-separated list of integers")
    if not numbers or any(n <= 0 for n in numbers):
        raise argparse.ArgumentTypeError("values must be positive integers")
    return numbers


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the evaluation figures of the iUpdater paper.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available experiments")

    run_parser = subparsers.add_parser("run", help="run one or more experiments")
    run_parser.add_argument("names", nargs="+", help="experiment names (see 'list')")
    run_parser.add_argument(
        "--preset",
        choices=("quick", "full"),
        default="quick",
        help="experiment preset: 'quick' (CI-sized) or 'full' (paper protocol)",
    )
    run_parser.add_argument(
        "--seed", type=int, default=None, help="override the substrate random seed"
    )
    run_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="fan independent experiments out across N worker processes",
    )

    fleet_parser = subparsers.add_parser(
        "fleet",
        help="refresh a fleet of environments through the batched update service",
    )
    fleet_sub = fleet_parser.add_subparsers(dest="fleet_command")

    export_parser = fleet_sub.add_parser(
        "export",
        help="synthesize a fleet of N sites into an NPZ request payload",
    )
    export_parser.add_argument(
        "--sites", type=int, default=3, help="number of sites to synthesize"
    )
    export_parser.add_argument(
        "--out", required=True, help="destination request payload (.npz)"
    )
    # These four flags also exist on the parent `fleet` parser; SUPPRESS
    # keeps argparse's sub-namespace copy-over from silently clobbering a
    # value the user passed before the `export` word (the handler resolves
    # the final defaults).
    export_parser.add_argument(
        "--environments",
        type=_parse_environments,
        default=argparse.SUPPRESS,
        help="registered environment names, cycled across the sites "
        "(default: office,hall,library)",
    )
    export_parser.add_argument(
        "--day",
        type=float,
        default=45.0,
        help="refresh stamp (days) the fresh measurements are collected at",
    )
    export_parser.add_argument(
        "--seed",
        type=int,
        default=argparse.SUPPRESS,
        help="base substrate seed (site k adds k*101; default 7)",
    )
    export_parser.add_argument(
        "--link-count",
        type=_parse_int_list,
        default=argparse.SUPPRESS,
        help="per-site link-count override; a comma list is cycled per site",
    )
    export_parser.add_argument(
        "--locations-per-link",
        type=_parse_int_list,
        default=argparse.SUPPRESS,
        help="per-site stripe-width override; a comma list is cycled per site",
    )

    fleet_run_parser = fleet_sub.add_parser(
        "run",
        help="refresh a from-disk request payload through the sharded service",
    )
    fleet_run_parser.add_argument(
        "--in",
        dest="input",
        required=True,
        help="request payload written by 'fleet export' (.npz)",
    )
    fleet_run_parser.add_argument(
        "--out", default=None, help="optional destination report payload (.npz)"
    )
    fleet_run_parser.add_argument(
        "--max-stack-bytes",
        type=int,
        default=None,
        help=(
            "per-shard system-stack budget in bytes (default: the L3-ish "
            "32 MiB ShardConfig default; 0 disables sharding)"
        ),
    )
    fleet_run_parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help=(
            "scatter shards over N worker processes (ProcessExecutor); "
            "0 (default) executes serially in-process — results are "
            "bit-identical either way"
        ),
    )
    fleet_run_parser.add_argument(
        "--warm-from",
        dest="warm_from",
        default=None,
        help=(
            "previous report payload (.npz) to warm-start from: sites it "
            "covers resume from its factors instead of a cold init"
        ),
    )
    fleet_run_parser.add_argument(
        "--endpoints",
        default=None,
        help=(
            "comma-separated worker URLs ('fleet workers serve' machines); "
            "scatters shards remotely (RemoteExecutor) instead of "
            "--workers — results stay bit-identical to serial"
        ),
    )
    fleet_run_parser.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="per-shard dispatch timeout in seconds (remote only; default 30)",
    )
    fleet_run_parser.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        help="dispatch attempts per shard before failing (remote only; default 3)",
    )
    fleet_run_parser.add_argument(
        "--backoff",
        type=float,
        default=0.1,
        help="base retry backoff in seconds, doubling per attempt "
        "(remote only; default 0.1)",
    )
    fleet_run_parser.add_argument(
        "--straggler-after",
        dest="straggler_after",
        type=float,
        default=None,
        help="re-dispatch a silent shard to a second worker after this many "
        "seconds (remote only; default: disabled)",
    )

    workers_parser = fleet_sub.add_parser(
        "workers",
        help="manage remote shard workers for 'fleet run --endpoints'",
    )
    workers_sub = workers_parser.add_subparsers(
        dest="workers_command", required=True
    )
    workers_serve_parser = workers_sub.add_parser(
        "serve",
        help="serve shard-solve requests over HTTP (a RemoteExecutor worker)",
    )
    workers_serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    workers_serve_parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="listen port (default 0: pick a free port, printed at startup)",
    )
    workers_serve_parser.add_argument(
        "--fault",
        action="append",
        default=None,
        metavar="SPEC",
        help=(
            "arm an injected fault: kind[:shard=N][,attempt=N][,seconds=X] "
            "with kind one of drop/delay/duplicate/corrupt/kill; repeatable "
            "(chaos testing)"
        ),
    )
    workers_serve_parser.add_argument(
        "--verbose",
        action="store_true",
        help="log each HTTP request to stderr",
    )

    fleet_diff_parser = fleet_sub.add_parser(
        "diff",
        help=(
            "compute or apply a repro-fleet-delta payload between two "
            "report payloads"
        ),
    )
    fleet_diff_parser.add_argument(
        "--base",
        required=True,
        help="base report payload (.npz) the delta is relative to",
    )
    fleet_diff_parser.add_argument(
        "--target",
        default=None,
        help="target report payload (.npz); computes target - base",
    )
    fleet_diff_parser.add_argument(
        "--delta",
        default=None,
        help="delta payload (.npz) to apply on top of --base instead",
    )
    fleet_diff_parser.add_argument(
        "--out",
        default=None,
        help=(
            "destination payload: the delta (with --target; optional, "
            "prints a summary without it) or the reconstructed report "
            "(with --delta; required)"
        ),
    )

    query_parser = subparsers.add_parser(
        "query",
        help="serve localization queries against a refreshed fleet report",
    )
    query_sub = query_parser.add_subparsers(dest="query_command", required=True)

    query_export_parser = query_sub.add_parser(
        "export",
        help="sample a query workload from a report payload into an NPZ",
    )
    query_export_parser.add_argument(
        "--report", required=True, help="report payload written by 'fleet run' (.npz)"
    )
    query_export_parser.add_argument(
        "--out", required=True, help="destination queries payload (.npz)"
    )
    query_export_parser.add_argument(
        "--per-site", type=int, default=16, help="queries sampled per site"
    )
    query_export_parser.add_argument(
        "--noise-db",
        type=float,
        default=0.5,
        help="stddev of the Gaussian noise added to each sampled fingerprint",
    )
    query_export_parser.add_argument(
        "--seed", type=int, default=7, help="workload sampling seed"
    )

    query_run_parser = query_sub.add_parser(
        "run",
        help="answer a queries payload against a report through the QueryEngine",
    )
    query_run_parser.add_argument(
        "--report", required=True, help="report payload the engine serves (.npz)"
    )
    query_run_parser.add_argument(
        "--queries", required=True, help="queries payload from 'query export' (.npz)"
    )
    query_run_parser.add_argument(
        "--out", default=None, help="optional destination answers payload (.npz)"
    )
    query_run_parser.add_argument(
        "--matcher",
        choices=("knn", "omp", "svr", "rass"),
        default="knn",
        help="localization matcher the engine binds per site",
    )
    query_run_parser.add_argument(
        "--backend",
        choices=("vectorized", "looped"),
        default="vectorized",
        help="matcher backend: batched GEMM path or the per-query reference",
    )
    query_run_parser.add_argument(
        "--cache",
        type=int,
        default=0,
        help="LRU result-cache capacity in entries (0 disables caching)",
    )

    query_bench_parser = query_sub.add_parser(
        "bench",
        help="measure queries/sec of the looped vs vectorized backends",
    )
    query_bench_parser.add_argument(
        "--report",
        default=None,
        help="report payload to serve (default: refresh a small fleet in-process)",
    )
    query_bench_parser.add_argument(
        "--matcher",
        choices=("knn", "omp", "svr", "rass"),
        default="knn",
        help="matcher to benchmark",
    )
    query_bench_parser.add_argument(
        "--batch-sizes",
        type=_parse_int_list,
        default=[1, 64, 1024],
        help="comma-separated query batch sizes (default 1,64,1024)",
    )
    query_bench_parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats (best is kept)"
    )
    query_bench_parser.add_argument(
        "--noise-db", type=float, default=0.5, help="query noise stddev"
    )
    query_bench_parser.add_argument(
        "--seed", type=int, default=7, help="workload sampling seed"
    )
    query_bench_parser.add_argument(
        "--qps-target",
        type=float,
        default=None,
        help=(
            "fail (exit 1) unless the vectorized backend reaches this many "
            "queries/sec at the largest batch size"
        ),
    )

    daemon_parser = subparsers.add_parser(
        "daemon",
        help="run (or talk to) the always-on fleet coordinator",
    )
    daemon_sub = daemon_parser.add_subparsers(dest="daemon_command", required=True)

    daemon_start_parser = daemon_sub.add_parser(
        "start",
        help="start the coordinator: job queue + HTTP API + query serving",
    )
    daemon_start_parser.add_argument(
        "--spool",
        required=True,
        help="spool directory (journal + payloads + results); created if missing",
    )
    daemon_start_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    daemon_start_parser.add_argument(
        "--port",
        type=int,
        default=8753,
        help="listen port (default 8753; 0 picks a free port, printed at startup)",
    )
    daemon_start_parser.add_argument(
        "--job-workers",
        type=int,
        default=2,
        help="jobs executed concurrently (default 2)",
    )
    daemon_start_parser.add_argument(
        "--pool-workers",
        type=int,
        default=None,
        help=(
            "size of the shared process pool refresh jobs scatter shards "
            "onto (default: CPU count; 0 disables the pool — all jobs "
            "solve serially)"
        ),
    )
    daemon_start_parser.add_argument(
        "--endpoints",
        default=None,
        help=(
            "comma-separated remote worker URLs ('fleet workers serve'); "
            "refresh jobs with a worker budget scatter shards over these "
            "machines instead of the local process pool"
        ),
    )
    daemon_start_parser.add_argument(
        "--matcher",
        choices=("knn", "omp", "svr", "rass"),
        default="knn",
        help="matcher the embedded query engine binds at each publish",
    )
    daemon_start_parser.add_argument(
        "--cache",
        type=int,
        default=0,
        help="LRU result-cache capacity of the query engine (0 disables)",
    )
    daemon_start_parser.add_argument(
        "--verbose",
        action="store_true",
        help="log each HTTP request to stderr",
    )

    daemon_submit_parser = daemon_sub.add_parser(
        "submit", help="submit a job to a running daemon over HTTP"
    )
    daemon_submit_parser.add_argument(
        "--url", required=True, help="daemon base URL, e.g. http://127.0.0.1:8753"
    )
    daemon_submit_parser.add_argument(
        "--in",
        dest="input",
        required=True,
        help="job payload: a 'fleet export' request payload (refresh_fleet) "
        "or a report payload (serve_publish)",
    )
    daemon_submit_parser.add_argument(
        "--kind",
        choices=("refresh_fleet", "serve_publish"),
        default="refresh_fleet",
        help="job kind (default refresh_fleet)",
    )
    daemon_submit_parser.add_argument(
        "--priority", type=int, default=0, help="higher runs first (default 0)"
    )
    daemon_submit_parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="per-job shard budget on the daemon's shared process pool "
        "(0 = solve serially)",
    )
    daemon_submit_parser.add_argument(
        "--max-stack-bytes",
        type=int,
        default=None,
        help="per-shard stack budget (default: service default; 0 unsharded)",
    )
    daemon_submit_parser.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        help="retry bound before the job parks as failed (default 3)",
    )
    daemon_submit_parser.add_argument(
        "--backoff",
        type=float,
        default=0.5,
        help="base retry backoff in seconds, doubling per attempt (default 0.5)",
    )
    daemon_submit_parser.add_argument(
        "--label", default="", help="free-form label (also the generation label)"
    )
    daemon_submit_parser.add_argument(
        "--upload",
        action="store_true",
        help="ship the payload bytes in the request instead of passing the path",
    )
    daemon_submit_parser.add_argument(
        "--wait",
        action="store_true",
        help="block until the job is terminal; exit 1 unless it completed",
    )
    daemon_submit_parser.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        help="--wait polling budget in seconds (default 600)",
    )

    daemon_status_parser = daemon_sub.add_parser(
        "status", help="show the daemon's health, or one job's record"
    )
    daemon_status_parser.add_argument("--url", required=True, help="daemon base URL")
    daemon_status_parser.add_argument(
        "--job", default=None, help="job id (default: overall health + queue)"
    )

    daemon_result_parser = daemon_sub.add_parser(
        "result", help="download a completed job's report payload"
    )
    daemon_result_parser.add_argument("--url", required=True, help="daemon base URL")
    daemon_result_parser.add_argument("--job", required=True, help="job id")
    daemon_result_parser.add_argument(
        "--out", required=True, help="destination report payload (.npz)"
    )

    daemon_stop_parser = daemon_sub.add_parser(
        "stop", help="gracefully drain a running daemon over HTTP"
    )
    daemon_stop_parser.add_argument("--url", required=True, help="daemon base URL")
    daemon_stop_parser.add_argument(
        "--timeout",
        type=float,
        default=120.0,
        help="seconds to wait for the drain to finish (default 120)",
    )

    fleet_parser.add_argument(
        "--environments",
        type=_parse_environments,
        default=["office", "hall", "library"],
        help="comma-separated registered environment names (default: all three)",
    )
    fleet_parser.add_argument(
        "--days",
        type=_parse_days,
        default=None,
        help="comma-separated refresh stamps in days (default: the preset's stamps)",
    )
    fleet_parser.add_argument(
        "--preset",
        choices=("quick", "full"),
        default="quick",
        help="collection preset: 'quick' (CI-sized) or 'full' (paper protocol)",
    )
    fleet_parser.add_argument(
        "--seed", type=int, default=None, help="override the substrate random seed"
    )
    fleet_parser.add_argument(
        "--link-count",
        type=int,
        default=None,
        help="override every site's link count (shrinks the deployments for CI)",
    )
    fleet_parser.add_argument(
        "--locations-per-link",
        type=int,
        default=None,
        help="override every site's stripe width (shrinks the deployments for CI)",
    )
    return parser


def _is_scalar_mapping(value) -> bool:
    return isinstance(value, dict) and all(
        isinstance(v, (int, float, bool, np.floating, np.integer)) for v in value.values()
    )


def _is_series_mapping(value) -> bool:
    return isinstance(value, dict) and all(isinstance(v, dict) for v in value.values()) and value


def _is_sample_mapping(value) -> bool:
    return isinstance(value, dict) and all(
        isinstance(v, (list, tuple, np.ndarray)) for v in value.values()
    ) and value


def render_result(name: str, result: dict) -> str:
    """Render an experiment's result dictionary as plain text."""
    lines = [f"== {name} =="]
    scalars = {}
    for key, value in result.items():
        if isinstance(value, (int, float, bool, str, np.floating, np.integer)):
            scalars[key] = value
        elif _is_scalar_mapping(value):
            lines.append(format_key_values(key, value))
        elif _is_series_mapping(value):
            lines.append(format_series_table(key, value))
        elif _is_sample_mapping(value):
            lines.append(format_cdf_summary(key, value))
        elif isinstance(value, np.ndarray) and value.ndim == 1 and value.size <= 16:
            scalars[key] = np.array2string(value, precision=3)
        # Large arrays are omitted from the textual report.
    if scalars:
        lines.insert(1, format_key_values("summary", scalars))
    return "\n".join(lines)


def run_fleet_export(args) -> int:
    """Run ``fleet export``: synthesize N sites into a request payload."""
    from repro.io import save_requests
    from repro.service.synthetic import synthesize_fleet

    if args.sites <= 0:
        print(f"--sites must be positive, got {args.sites}", file=sys.stderr)
        return 2
    # Flags may come from the export subparser or (when typed before the
    # `export` word) from the parent `fleet` parser, whose defaults differ.
    seed = getattr(args, "seed", None)
    try:
        requests = synthesize_fleet(
            args.sites,
            environments=getattr(args, "environments", None)
            or ["office", "hall", "library"],
            elapsed_days=args.day,
            seed=7 if seed is None else seed,
            link_count=getattr(args, "link_count", None),
            locations_per_link=getattr(args, "locations_per_link", None),
        )
        save_requests(args.out, requests, elapsed_days=args.day)
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    total_locations = sum(r.baseline.location_count for r in requests)
    print(
        f"wrote {len(requests)} requests ({total_locations} grid locations total) "
        f"to {args.out}"
    )
    return 0


def run_fleet_run(args) -> int:
    """Run ``fleet run``: refresh a from-disk payload through the sharded service."""
    from repro.io import load_report, load_requests, payload_info, save_report
    from repro.service.executor import ProcessExecutor, SerialExecutor
    from repro.service.remote import RemoteExecutor, RemoteShardError
    from repro.service.service import UpdateService
    from repro.service.shard import ShardConfig
    from repro.service.types import FleetReport

    if args.max_stack_bytes is None:
        shards = ShardConfig()
    elif args.max_stack_bytes == 0:
        shards = None
    elif args.max_stack_bytes > 0:
        shards = ShardConfig(max_stack_bytes=args.max_stack_bytes)
    else:
        print("--max-stack-bytes must be non-negative", file=sys.stderr)
        return 2
    if args.workers < 0:
        print("--workers must be non-negative", file=sys.stderr)
        return 2
    endpoints = getattr(args, "endpoints", None)
    if endpoints:
        if args.workers:
            print(
                "--endpoints and --workers are mutually exclusive: shards "
                "scatter either remotely or onto local processes",
                file=sys.stderr,
            )
            return 2
        try:
            executor = RemoteExecutor(
                endpoints=[e for e in endpoints.split(",") if e.strip()],
                timeout=args.timeout,
                max_attempts=args.max_attempts,
                backoff=args.backoff,
                straggler_after=args.straggler_after,
            )
        except ValueError as error:
            print(error, file=sys.stderr)
            return 2
    elif args.workers == 0:
        executor = SerialExecutor()
    else:
        executor = ProcessExecutor(args.workers)

    try:
        info = payload_info(args.input)
        requests = load_requests(args.input)
        warm_from = (
            load_report(args.warm_from) if args.warm_from else None
        )
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2

    service = UpdateService()
    try:
        reports = service.update_fleet(
            requests, shards=shards, executor=executor, warm_from=warm_from
        )
    except RemoteShardError as error:
        print(error, file=sys.stderr)
        return 1
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    plan = service.last_plan
    report = FleetReport(
        elapsed_days=float(info.get("elapsed_days") or 0.0),
        reports=tuple(reports),
        stacked_sweeps=service.last_stacked_sweeps,
        plan=plan,
        executor=executor.name,
        workers=executor.workers,
        sweeps_saved=service.last_sweeps_saved,
    )
    print(f"loaded {len(requests)} requests from {args.input}")
    if warm_from is not None:
        warm_sites = sum(r.warm_started for r in reports)
        saved = sum(service.last_sweeps_saved.values())
        print(
            f"warm start from {args.warm_from}: {warm_sites}/{len(reports)} "
            f"sites resumed, {saved} sweeps saved"
        )
    if plan is not None and plan.shard_count:
        print(
            f"plan: {plan.shard_count} shards over {plan.site_count} sites "
            f"in {len(plan.ranks)} rank groups, peak stack "
            f"{plan.peak_stack_bytes} bytes"
            + (
                f" (budget {plan.max_stack_bytes})"
                if plan.max_stack_bytes is not None
                else " (unbounded)"
            )
        )
        if isinstance(executor, RemoteExecutor):
            attempts = sum(executor.last_attempts.values())
            retries = sum(executor.last_retries.values())
            redispatched = sum(executor.last_redispatches.values())
            print(
                f"executor: remote ({len(executor.endpoints)} endpoint(s); "
                f"{attempts} dispatch(es), {retries} retried, "
                f"{redispatched} re-dispatched, "
                f"{executor.last_duplicates_dropped} duplicate(s) dropped)"
            )
        else:
            print(
                f"executor: {executor.name}"
                + (f" ({executor.workers} workers)" if executor.workers else "")
            )
    print()
    print(format_fleet_report(report))
    if args.out:
        save_report(args.out, report)
        print(f"wrote report to {args.out}")
    return 0


def run_fleet_workers_serve(args) -> int:
    """Run ``fleet workers serve``: one remote shard worker, until signalled."""
    import signal
    import threading

    from repro.service.remote import FaultPlan, WorkerServer

    faults = None
    if args.fault:
        try:
            faults = FaultPlan.parse(args.fault)
        except ValueError as error:
            print(error, file=sys.stderr)
            return 2
    try:
        server = WorkerServer(host=args.host, port=args.port, faults=faults)
    except OSError as error:
        print(f"cannot bind {args.host}:{args.port}: {error}", file=sys.stderr)
        return 2
    server.verbose = args.verbose

    # Stop from the signal handler without joining the serve loop inline:
    # WorkerServer.stop() is safe off the serving thread (start() serves on
    # a daemon thread), and wait() below unblocks once it has run.
    def _stop(signum, frame):
        threading.Thread(target=server.stop, daemon=True).start()

    signal.signal(signal.SIGTERM, _stop)
    signal.signal(signal.SIGINT, _stop)

    server.start()
    armed = 0 if faults is None else len(faults.pending)
    print(
        f"worker listening on {server.url}"
        + (f" ({armed} fault(s) armed)" if armed else ""),
        flush=True,
    )
    server.wait()
    print(f"worker stopped after solving {server.solved} shard(s)", flush=True)
    return 0


def run_fleet_diff(args) -> int:
    """Run ``fleet diff``: compute or apply a ``repro-fleet-delta`` payload.

    With ``--target``, computes the delta of target vs base (written to
    ``--out`` when given, summarized either way).  With ``--delta``, applies
    a previously computed delta on top of the base and writes the
    reconstructed report to ``--out``.
    """
    from repro.io import (
        apply_delta,
        load_delta,
        load_report,
        save_delta,
        save_report,
    )

    if (args.target is None) == (args.delta is None):
        print(
            "fleet diff needs exactly one of --target (compute a delta) or "
            "--delta (apply one)",
            file=sys.stderr,
        )
        return 2
    try:
        base = load_report(args.base)
        if args.target is not None:
            target = load_report(args.target)
            if args.out:
                save_delta(args.out, base, target)
                delta = load_delta(args.out)
            else:
                import io as _io

                buffer = _io.BytesIO()
                save_delta(buffer, base, target)
                buffer.seek(0)
                delta = load_delta(buffer)
        else:
            if not args.out:
                print(
                    "fleet diff --delta needs --out for the reconstructed "
                    "report",
                    file=sys.stderr,
                )
                return 2
            delta = load_delta(args.delta)
            report = apply_delta(base, delta)
            save_report(args.out, report)
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2

    modes = delta.modes
    counts = {
        mode: sum(1 for m in modes.values() if m == mode)
        for mode in ("same", "patch", "full")
    }
    print(
        f"delta over {len(modes)} sites: "
        f"{counts['same']} same, {counts['patch']} patched, "
        f"{counts['full']} full"
    )
    if args.target is not None and args.out:
        print(f"wrote delta to {args.out}")
    if args.delta is not None:
        print(f"applied {args.delta} onto {args.base}; wrote {args.out}")
    return 0


def run_query_export(args) -> int:
    """Run ``query export``: sample a query workload from a report payload."""
    import numpy as np

    from repro.io import load_report, save_queries
    from repro.query import QueryBatch, grid_locations

    if args.per_site <= 0:
        print(f"--per-site must be positive, got {args.per_site}", file=sys.stderr)
        return 2
    if args.noise_db < 0:
        print("--noise-db must be non-negative", file=sys.stderr)
        return 2
    try:
        report = load_report(args.report)
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2

    batches = []
    for offset, site_report in enumerate(report.reports):
        matrix = site_report.matrix
        rng = np.random.default_rng(args.seed + offset * 1009)
        true_indices = rng.integers(0, matrix.location_count, size=args.per_site)
        measurements = matrix.values.T[true_indices] + rng.normal(
            0.0, args.noise_db, size=(args.per_site, matrix.link_count)
        )
        batches.append(
            QueryBatch(
                site=site_report.site,
                measurements=measurements,
                true_indices=true_indices,
                locations=grid_locations(
                    matrix.link_count, matrix.locations_per_link
                ),
            )
        )
    save_queries(args.out, batches)
    total = sum(batch.count for batch in batches)
    print(f"wrote {total} queries over {len(batches)} sites to {args.out}")
    return 0


def run_query_run(args) -> int:
    """Run ``query run``: answer a queries payload against a report payload."""
    import time

    import numpy as np

    from repro.io import load_queries, load_report, save_answers
    from repro.localization.metrics import localization_errors
    from repro.query import QueryConfig, QueryEngine

    if args.cache < 0:
        print("--cache must be non-negative", file=sys.stderr)
        return 2
    try:
        report = load_report(args.report)
        batches = load_queries(args.queries)
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2

    engine = QueryEngine(
        QueryConfig(
            matcher=args.matcher,
            matcher_backend=args.backend,
            cache_size=args.cache,
        )
    )
    locations = {
        batch.site: batch.locations
        for batch in batches
        if batch.locations is not None
    }
    try:
        generation = engine.publish_report(report, locations=locations)
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    print(
        f"serving generation {generation.ordinal} ({generation.label}): "
        f"{len(generation.sites)} sites, matcher={args.matcher}, "
        f"backend={args.backend}"
    )

    answers = []
    total_queries = 0
    start = time.perf_counter()
    for batch in batches:
        try:
            answers.append(engine.answer(batch))
        except ValueError as error:
            print(error, file=sys.stderr)
            return 2
        total_queries += batch.count
    elapsed = time.perf_counter() - start

    errors = []
    for batch, answer in zip(batches, answers):
        if batch.true_indices is None or batch.locations is None:
            continue
        if answer.points is None:
            continue
        errors.extend(
            localization_errors(batch.locations[batch.true_indices], answer.points)
        )
    qps = total_queries / elapsed if elapsed > 0 else float("inf")
    print(
        f"answered {total_queries} queries in {elapsed:.3f}s ({qps:,.0f} queries/s)"
    )
    if args.cache:
        hits = sum(answer.cache_hits for answer in answers)
        print(f"cache: {hits}/{total_queries} hits")
    if errors:
        errors = np.asarray(errors)
        print(
            f"accuracy vs ground truth: mean {errors.mean():.3f} m, "
            f"median {np.median(errors):.3f} m over {errors.size} queries"
        )
    if args.out:
        save_answers(args.out, answers)
        print(f"wrote {len(answers)} answer batches to {args.out}")
    return 0


def run_query_bench(args) -> int:
    """Run ``query bench``: looped vs vectorized queries/sec at several batches."""
    import time

    import numpy as np

    from repro.query import QueryConfig, QueryEngine

    if args.repeats <= 0:
        print("--repeats must be positive", file=sys.stderr)
        return 2
    if args.report is not None:
        from repro.io import load_report

        try:
            report = load_report(args.report)
        except ValueError as error:
            print(error, file=sys.stderr)
            return 2
    else:
        from repro.service.service import UpdateService
        from repro.service.synthetic import synthesize_fleet
        from repro.service.types import FleetReport

        requests = synthesize_fleet(
            1, link_count=8, locations_per_link=8, seed=args.seed
        )
        reports = UpdateService().update_fleet(requests)
        report = FleetReport(elapsed_days=45.0, reports=tuple(reports))
        print("no --report given; refreshed a 1-site fleet in-process")

    engines = {
        backend: QueryEngine(
            QueryConfig(matcher=args.matcher, matcher_backend=backend)
        )
        for backend in ("looped", "vectorized")
    }
    for engine in engines.values():
        engine.publish_report(report)
    site = engines["vectorized"].sites[0]
    site_report = report.report_for(site)
    matrix = site_report.matrix
    rng = np.random.default_rng(args.seed)

    print(
        f"site {site!r}: {matrix.link_count} links x "
        f"{matrix.location_count} grids, matcher={args.matcher}"
    )
    target_met = True
    for batch_size in args.batch_sizes:
        truth = rng.integers(0, matrix.location_count, size=batch_size)
        queries = matrix.values.T[truth] + rng.normal(
            0.0, args.noise_db, size=(batch_size, matrix.link_count)
        )
        qps = {}
        for backend, engine in engines.items():
            best = float("inf")
            for _ in range(args.repeats):
                start = time.perf_counter()
                engine.localize_batch(site, queries)
                best = min(best, time.perf_counter() - start)
            qps[backend] = batch_size / best if best > 0 else float("inf")
        speedup = qps["vectorized"] / qps["looped"]
        print(
            f"batch {batch_size:>5}: looped {qps['looped']:>12,.0f} q/s | "
            f"vectorized {qps['vectorized']:>12,.0f} q/s | {speedup:6.1f}x"
        )
        if (
            args.qps_target is not None
            and batch_size == max(args.batch_sizes)
            and qps["vectorized"] < args.qps_target
        ):
            target_met = False
            print(
                f"vectorized backend reached {qps['vectorized']:,.0f} q/s at "
                f"batch {batch_size}, below the target {args.qps_target:,.0f}",
                file=sys.stderr,
            )
    return 0 if target_met else 1


def run_fleet(args) -> int:
    """Run the ``fleet`` subcommand: refresh several sites per survey stamp."""
    from repro.environments import environment_by_name
    from repro.service.fleet import FleetCampaign, FleetConfig

    config = ExperimentConfig.full() if args.preset == "full" else ExperimentConfig.quick()
    if args.seed is not None:
        config = replace(config, seed=args.seed)
    days = list(args.days) if args.days else list(config.later_timestamps)
    config = replace(config, timestamps_days=(0.0, *sorted(set(days))))

    if len(set(args.environments)) != len(args.environments):
        print(f"duplicate environments: {', '.join(args.environments)}", file=sys.stderr)
        return 2
    overrides = {}
    if args.link_count is not None:
        overrides["link_count"] = args.link_count
    if args.locations_per_link is not None:
        overrides["locations_per_link"] = args.locations_per_link
    try:
        specs = {
            name: environment_by_name(name, **overrides) for name in args.environments
        }
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2

    fleet = FleetCampaign(
        specs=specs,
        config=FleetConfig(
            environments=tuple(specs), campaign=config.campaign_config()
        ),
    )
    print(
        f"fleet: {', '.join(fleet.sites)} "
        f"({sum(spec.total_locations for spec in specs.values())} grid locations total)"
    )
    for elapsed_days in sorted(set(days)):
        report = fleet.refresh(elapsed_days)
        print()
        print(format_fleet_report(report))
    return 0


def run_daemon_start(args) -> int:
    """Run the ``daemon start`` subcommand: serve until drained."""
    import signal

    from repro.daemon import Coordinator, DaemonConfig, DaemonServer
    from repro.query import QueryConfig

    if args.cache < 0:
        print("--cache must be non-negative", file=sys.stderr)
        return 2
    try:
        endpoints = None
        if getattr(args, "endpoints", None):
            endpoints = tuple(
                e.strip() for e in args.endpoints.split(",") if e.strip()
            )
        config = DaemonConfig(
            job_workers=args.job_workers,
            pool_workers=args.pool_workers,
            query=QueryConfig(matcher=args.matcher, cache_size=args.cache),
            endpoints=endpoints,
        )
        coordinator = Coordinator(args.spool, config=config)
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    recovered = coordinator.queue.recovered_jobs
    if recovered:
        print(
            f"recovered {len(recovered)} interrupted job(s): "
            f"{', '.join(recovered)}",
            file=sys.stderr,
        )

    server = DaemonServer(coordinator, host=args.host, port=args.port)
    server.verbose = args.verbose

    def _drain(signum, frame):
        server.initiate_drain()

    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, _drain)

    server.start()
    print(
        f"daemon listening on {server.url} (spool: {coordinator.queue.spool})",
        flush=True,
    )
    server.wait()
    print("daemon drained; queued jobs are journaled for the next start", flush=True)
    return 0


def run_daemon_submit(args) -> int:
    """Run the ``daemon submit`` subcommand."""
    from repro.daemon import DaemonClient, DaemonError

    client = DaemonClient(args.url)
    try:
        record = client.submit(
            args.input,
            kind=args.kind,
            priority=args.priority,
            max_attempts=args.max_attempts,
            backoff_seconds=args.backoff,
            label=args.label,
            max_stack_bytes=args.max_stack_bytes,
            workers=args.workers,
            upload=args.upload,
        )
    except DaemonError as error:
        print(error, file=sys.stderr)
        return 1
    print(f"submitted {record['id']} ({record['kind']}, priority {record['priority']})")
    if not args.wait:
        return 0
    try:
        record = client.wait(record["id"], timeout=args.timeout)
    except (DaemonError, TimeoutError) as error:
        print(error, file=sys.stderr)
        return 1
    line = f"{record['id']}: {record['state']} after {record['attempts']} attempt(s)"
    if record.get("generation") is not None:
        line += f", published generation {record['generation']}"
    if record.get("error"):
        line += f" — {record['error']}"
    print(line)
    return 0 if record["state"] == "done" else 1


def run_daemon_status(args) -> int:
    """Run the ``daemon status`` subcommand."""
    import json as _json

    from repro.daemon import DaemonClient, DaemonError

    client = DaemonClient(args.url)
    try:
        payload = client.status(args.job) if args.job else client.health()
    except DaemonError as error:
        print(error, file=sys.stderr)
        return 1
    print(_json.dumps(payload, indent=2, sort_keys=True))
    return 0


def run_daemon_result(args) -> int:
    """Run the ``daemon result`` subcommand."""
    from repro.daemon import DaemonClient, DaemonError

    client = DaemonClient(args.url)
    try:
        out = client.fetch_result(args.job, args.out)
    except DaemonError as error:
        print(error, file=sys.stderr)
        return 1
    print(f"wrote {out} ({out.stat().st_size:,} bytes)")
    return 0


def run_daemon_stop(args) -> int:
    """Run the ``daemon stop`` subcommand: drain over HTTP."""
    import time as _time

    from repro.daemon import DaemonClient, DaemonError

    client = DaemonClient(args.url)
    try:
        client.drain()
    except DaemonError as error:
        print(error, file=sys.stderr)
        return 1
    deadline = _time.monotonic() + args.timeout
    health = {"jobs": {}}
    while _time.monotonic() < deadline:
        try:
            health = client.health()
        except DaemonError:
            print("daemon drained")
            return 0
        _time.sleep(min(0.2, max(0.0, deadline - _time.monotonic())))
    print(
        f"daemon still draining after {args.timeout:g}s "
        f"({health['jobs'].get('running', 0)} job(s) running)",
        file=sys.stderr,
    )
    return 1


def main(argv: Optional[Iterable[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)

    if args.command == "list":
        for name in ExperimentRunner.available():
            print(name)
        return 0

    if args.command == "fleet":
        fleet_command = getattr(args, "fleet_command", None)
        if fleet_command == "export":
            return run_fleet_export(args)
        if fleet_command == "run":
            return run_fleet_run(args)
        if fleet_command == "workers":
            return run_fleet_workers_serve(args)
        if fleet_command == "diff":
            return run_fleet_diff(args)
        return run_fleet(args)

    if args.command == "daemon":
        if args.daemon_command == "start":
            return run_daemon_start(args)
        if args.daemon_command == "submit":
            return run_daemon_submit(args)
        if args.daemon_command == "status":
            return run_daemon_status(args)
        if args.daemon_command == "result":
            return run_daemon_result(args)
        return run_daemon_stop(args)

    if args.command == "query":
        if args.query_command == "export":
            return run_query_export(args)
        if args.query_command == "run":
            return run_query_run(args)
        return run_query_bench(args)

    config = ExperimentConfig.full() if args.preset == "full" else ExperimentConfig.quick()
    if args.seed is not None:
        config = replace(config, seed=args.seed)
    runner = ExperimentRunner(config)

    available = set(ExperimentRunner.available())
    unknown = [name for name in args.names if name not in available]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print("use 'list' to see the available names", file=sys.stderr)
        return 2
    if args.jobs < 1:
        print("--jobs must be at least 1", file=sys.stderr)
        return 2

    results = runner.run_many(args.names, jobs=args.jobs)
    for name in args.names:
        print(render_result(name, results[name]))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
