"""Command-line interface for the experiment harness.

Lets a downstream user list and run the per-figure experiments without
writing any code::

    python -m repro.experiments.cli list
    python -m repro.experiments.cli run labor_cost_savings
    python -m repro.experiments.cli run fig21_localization_cdf --preset full
    python -m repro.experiments.cli fleet --environments office,hall,library

The ``fleet`` subcommand drives the update service across several
environments at once (one stacked batched solve per sweep) and reports
per-site and aggregate refresh quality.

The output uses the same text formatters as the benchmark harness, so the
rows can be compared directly against the paper's figures.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import Iterable, Optional

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import (
    format_cdf_summary,
    format_fleet_report,
    format_key_values,
    format_series_table,
)
from repro.experiments.runner import ExperimentRunner

__all__ = ["main", "build_parser", "render_result", "run_fleet"]


def _parse_environments(value: str) -> list:
    names = [name.strip() for name in value.split(",") if name.strip()]
    if not names:
        raise argparse.ArgumentTypeError("expected a comma-separated environment list")
    return names


def _parse_days(value: str) -> list:
    try:
        days = [float(part) for part in value.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError("expected a comma-separated list of day stamps")
    if not days or any(d <= 0 for d in days):
        raise argparse.ArgumentTypeError("day stamps must be positive")
    return days


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the evaluation figures of the iUpdater paper.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available experiments")

    run_parser = subparsers.add_parser("run", help="run one or more experiments")
    run_parser.add_argument("names", nargs="+", help="experiment names (see 'list')")
    run_parser.add_argument(
        "--preset",
        choices=("quick", "full"),
        default="quick",
        help="experiment preset: 'quick' (CI-sized) or 'full' (paper protocol)",
    )
    run_parser.add_argument(
        "--seed", type=int, default=None, help="override the substrate random seed"
    )

    fleet_parser = subparsers.add_parser(
        "fleet",
        help="refresh a fleet of environments through the batched update service",
    )
    fleet_parser.add_argument(
        "--environments",
        type=_parse_environments,
        default=["office", "hall", "library"],
        help="comma-separated registered environment names (default: all three)",
    )
    fleet_parser.add_argument(
        "--days",
        type=_parse_days,
        default=None,
        help="comma-separated refresh stamps in days (default: the preset's stamps)",
    )
    fleet_parser.add_argument(
        "--preset",
        choices=("quick", "full"),
        default="quick",
        help="collection preset: 'quick' (CI-sized) or 'full' (paper protocol)",
    )
    fleet_parser.add_argument(
        "--seed", type=int, default=None, help="override the substrate random seed"
    )
    fleet_parser.add_argument(
        "--link-count",
        type=int,
        default=None,
        help="override every site's link count (shrinks the deployments for CI)",
    )
    fleet_parser.add_argument(
        "--locations-per-link",
        type=int,
        default=None,
        help="override every site's stripe width (shrinks the deployments for CI)",
    )
    return parser


def _is_scalar_mapping(value) -> bool:
    return isinstance(value, dict) and all(
        isinstance(v, (int, float, bool, np.floating, np.integer)) for v in value.values()
    )


def _is_series_mapping(value) -> bool:
    return isinstance(value, dict) and all(isinstance(v, dict) for v in value.values()) and value


def _is_sample_mapping(value) -> bool:
    return isinstance(value, dict) and all(
        isinstance(v, (list, tuple, np.ndarray)) for v in value.values()
    ) and value


def render_result(name: str, result: dict) -> str:
    """Render an experiment's result dictionary as plain text."""
    lines = [f"== {name} =="]
    scalars = {}
    for key, value in result.items():
        if isinstance(value, (int, float, bool, str, np.floating, np.integer)):
            scalars[key] = value
        elif _is_scalar_mapping(value):
            lines.append(format_key_values(key, value))
        elif _is_series_mapping(value):
            lines.append(format_series_table(key, value))
        elif _is_sample_mapping(value):
            lines.append(format_cdf_summary(key, value))
        elif isinstance(value, np.ndarray) and value.ndim == 1 and value.size <= 16:
            scalars[key] = np.array2string(value, precision=3)
        # Large arrays are omitted from the textual report.
    if scalars:
        lines.insert(1, format_key_values("summary", scalars))
    return "\n".join(lines)


def run_fleet(args) -> int:
    """Run the ``fleet`` subcommand: refresh several sites per survey stamp."""
    from repro.environments import environment_by_name
    from repro.service.fleet import FleetCampaign, FleetConfig

    config = ExperimentConfig.full() if args.preset == "full" else ExperimentConfig.quick()
    if args.seed is not None:
        config = replace(config, seed=args.seed)
    days = list(args.days) if args.days else list(config.later_timestamps)
    config = replace(config, timestamps_days=(0.0, *sorted(set(days))))

    if len(set(args.environments)) != len(args.environments):
        print(f"duplicate environments: {', '.join(args.environments)}", file=sys.stderr)
        return 2
    overrides = {}
    if args.link_count is not None:
        overrides["link_count"] = args.link_count
    if args.locations_per_link is not None:
        overrides["locations_per_link"] = args.locations_per_link
    try:
        specs = {
            name: environment_by_name(name, **overrides) for name in args.environments
        }
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2

    fleet = FleetCampaign(
        specs=specs,
        config=FleetConfig(
            environments=tuple(specs), campaign=config.campaign_config()
        ),
    )
    print(
        f"fleet: {', '.join(fleet.sites)} "
        f"({sum(spec.total_locations for spec in specs.values())} grid locations total)"
    )
    for elapsed_days in sorted(set(days)):
        report = fleet.refresh(elapsed_days)
        print()
        print(format_fleet_report(report))
    return 0


def main(argv: Optional[Iterable[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)

    if args.command == "list":
        for name in ExperimentRunner.available():
            print(name)
        return 0

    if args.command == "fleet":
        return run_fleet(args)

    config = ExperimentConfig.full() if args.preset == "full" else ExperimentConfig.quick()
    if args.seed is not None:
        config = replace(config, seed=args.seed)
    runner = ExperimentRunner(config)

    available = set(ExperimentRunner.available())
    unknown = [name for name in args.names if name not in available]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print("use 'list' to see the available names", file=sys.stderr)
        return 2

    for name in args.names:
        result = runner.run(name)
        print(render_result(name, result))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
