"""Command-line interface for the experiment harness.

Lets a downstream user list and run the per-figure experiments without
writing any code::

    python -m repro.experiments.cli list
    python -m repro.experiments.cli run labor_cost_savings
    python -m repro.experiments.cli run fig21_localization_cdf --preset full
    python -m repro.experiments.cli run fig20_labor_cost fig05_low_rank --jobs 2
    python -m repro.experiments.cli fleet --environments office,hall,library
    python -m repro.experiments.cli fleet export --sites 100 --out requests.npz
    python -m repro.experiments.cli fleet run --in requests.npz --out report.npz

The ``fleet`` subcommand drives the update service across several
environments at once (rank-grouped, cache-budgeted shards of stacked
batched solves) and reports per-site and aggregate refresh quality.  Its
``export`` sub-subcommand synthesizes a fleet of N sites from the
environment registry into an NPZ wire payload; ``run`` refreshes such a
payload from disk — no simulator required on the serving side — and
optionally writes the full report payload back out.  ``fleet run
--workers N`` scatters the planned shards over N worker processes
(bit-identical to serial execution); ``run --jobs N`` fans independent
experiments out across worker processes.

The output uses the same text formatters as the benchmark harness, so the
rows can be compared directly against the paper's figures.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import Iterable, Optional

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import (
    format_cdf_summary,
    format_fleet_report,
    format_key_values,
    format_series_table,
)
from repro.experiments.runner import ExperimentRunner

__all__ = ["main", "build_parser", "render_result", "run_fleet"]


def _parse_environments(value: str) -> list:
    names = [name.strip() for name in value.split(",") if name.strip()]
    if not names:
        raise argparse.ArgumentTypeError("expected a comma-separated environment list")
    return names


def _parse_days(value: str) -> list:
    try:
        days = [float(part) for part in value.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError("expected a comma-separated list of day stamps")
    if not days or any(d <= 0 for d in days):
        raise argparse.ArgumentTypeError("day stamps must be positive")
    return days


def _parse_int_list(value: str) -> list:
    """Comma-separated positive integers (cycled per site by ``fleet export``)."""
    try:
        numbers = [int(part) for part in value.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError("expected a comma-separated list of integers")
    if not numbers or any(n <= 0 for n in numbers):
        raise argparse.ArgumentTypeError("values must be positive integers")
    return numbers


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the evaluation figures of the iUpdater paper.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available experiments")

    run_parser = subparsers.add_parser("run", help="run one or more experiments")
    run_parser.add_argument("names", nargs="+", help="experiment names (see 'list')")
    run_parser.add_argument(
        "--preset",
        choices=("quick", "full"),
        default="quick",
        help="experiment preset: 'quick' (CI-sized) or 'full' (paper protocol)",
    )
    run_parser.add_argument(
        "--seed", type=int, default=None, help="override the substrate random seed"
    )
    run_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="fan independent experiments out across N worker processes",
    )

    fleet_parser = subparsers.add_parser(
        "fleet",
        help="refresh a fleet of environments through the batched update service",
    )
    fleet_sub = fleet_parser.add_subparsers(dest="fleet_command")

    export_parser = fleet_sub.add_parser(
        "export",
        help="synthesize a fleet of N sites into an NPZ request payload",
    )
    export_parser.add_argument(
        "--sites", type=int, default=3, help="number of sites to synthesize"
    )
    export_parser.add_argument(
        "--out", required=True, help="destination request payload (.npz)"
    )
    # These four flags also exist on the parent `fleet` parser; SUPPRESS
    # keeps argparse's sub-namespace copy-over from silently clobbering a
    # value the user passed before the `export` word (the handler resolves
    # the final defaults).
    export_parser.add_argument(
        "--environments",
        type=_parse_environments,
        default=argparse.SUPPRESS,
        help="registered environment names, cycled across the sites "
        "(default: office,hall,library)",
    )
    export_parser.add_argument(
        "--day",
        type=float,
        default=45.0,
        help="refresh stamp (days) the fresh measurements are collected at",
    )
    export_parser.add_argument(
        "--seed",
        type=int,
        default=argparse.SUPPRESS,
        help="base substrate seed (site k adds k*101; default 7)",
    )
    export_parser.add_argument(
        "--link-count",
        type=_parse_int_list,
        default=argparse.SUPPRESS,
        help="per-site link-count override; a comma list is cycled per site",
    )
    export_parser.add_argument(
        "--locations-per-link",
        type=_parse_int_list,
        default=argparse.SUPPRESS,
        help="per-site stripe-width override; a comma list is cycled per site",
    )

    fleet_run_parser = fleet_sub.add_parser(
        "run",
        help="refresh a from-disk request payload through the sharded service",
    )
    fleet_run_parser.add_argument(
        "--in",
        dest="input",
        required=True,
        help="request payload written by 'fleet export' (.npz)",
    )
    fleet_run_parser.add_argument(
        "--out", default=None, help="optional destination report payload (.npz)"
    )
    fleet_run_parser.add_argument(
        "--max-stack-bytes",
        type=int,
        default=None,
        help=(
            "per-shard system-stack budget in bytes (default: the L3-ish "
            "32 MiB ShardConfig default; 0 disables sharding)"
        ),
    )
    fleet_run_parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help=(
            "scatter shards over N worker processes (ProcessExecutor); "
            "0 (default) executes serially in-process — results are "
            "bit-identical either way"
        ),
    )

    fleet_parser.add_argument(
        "--environments",
        type=_parse_environments,
        default=["office", "hall", "library"],
        help="comma-separated registered environment names (default: all three)",
    )
    fleet_parser.add_argument(
        "--days",
        type=_parse_days,
        default=None,
        help="comma-separated refresh stamps in days (default: the preset's stamps)",
    )
    fleet_parser.add_argument(
        "--preset",
        choices=("quick", "full"),
        default="quick",
        help="collection preset: 'quick' (CI-sized) or 'full' (paper protocol)",
    )
    fleet_parser.add_argument(
        "--seed", type=int, default=None, help="override the substrate random seed"
    )
    fleet_parser.add_argument(
        "--link-count",
        type=int,
        default=None,
        help="override every site's link count (shrinks the deployments for CI)",
    )
    fleet_parser.add_argument(
        "--locations-per-link",
        type=int,
        default=None,
        help="override every site's stripe width (shrinks the deployments for CI)",
    )
    return parser


def _is_scalar_mapping(value) -> bool:
    return isinstance(value, dict) and all(
        isinstance(v, (int, float, bool, np.floating, np.integer)) for v in value.values()
    )


def _is_series_mapping(value) -> bool:
    return isinstance(value, dict) and all(isinstance(v, dict) for v in value.values()) and value


def _is_sample_mapping(value) -> bool:
    return isinstance(value, dict) and all(
        isinstance(v, (list, tuple, np.ndarray)) for v in value.values()
    ) and value


def render_result(name: str, result: dict) -> str:
    """Render an experiment's result dictionary as plain text."""
    lines = [f"== {name} =="]
    scalars = {}
    for key, value in result.items():
        if isinstance(value, (int, float, bool, str, np.floating, np.integer)):
            scalars[key] = value
        elif _is_scalar_mapping(value):
            lines.append(format_key_values(key, value))
        elif _is_series_mapping(value):
            lines.append(format_series_table(key, value))
        elif _is_sample_mapping(value):
            lines.append(format_cdf_summary(key, value))
        elif isinstance(value, np.ndarray) and value.ndim == 1 and value.size <= 16:
            scalars[key] = np.array2string(value, precision=3)
        # Large arrays are omitted from the textual report.
    if scalars:
        lines.insert(1, format_key_values("summary", scalars))
    return "\n".join(lines)


def run_fleet_export(args) -> int:
    """Run ``fleet export``: synthesize N sites into a request payload."""
    from repro.io import save_requests
    from repro.service.synthetic import synthesize_fleet

    if args.sites <= 0:
        print(f"--sites must be positive, got {args.sites}", file=sys.stderr)
        return 2
    # Flags may come from the export subparser or (when typed before the
    # `export` word) from the parent `fleet` parser, whose defaults differ.
    seed = getattr(args, "seed", None)
    try:
        requests = synthesize_fleet(
            args.sites,
            environments=getattr(args, "environments", None)
            or ["office", "hall", "library"],
            elapsed_days=args.day,
            seed=7 if seed is None else seed,
            link_count=getattr(args, "link_count", None),
            locations_per_link=getattr(args, "locations_per_link", None),
        )
        save_requests(args.out, requests, elapsed_days=args.day)
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    total_locations = sum(r.baseline.location_count for r in requests)
    print(
        f"wrote {len(requests)} requests ({total_locations} grid locations total) "
        f"to {args.out}"
    )
    return 0


def run_fleet_run(args) -> int:
    """Run ``fleet run``: refresh a from-disk payload through the sharded service."""
    from repro.io import load_requests, payload_info, save_report
    from repro.service.executor import ProcessExecutor, SerialExecutor
    from repro.service.service import UpdateService
    from repro.service.shard import ShardConfig
    from repro.service.types import FleetReport

    if args.max_stack_bytes is None:
        shards = ShardConfig()
    elif args.max_stack_bytes == 0:
        shards = None
    elif args.max_stack_bytes > 0:
        shards = ShardConfig(max_stack_bytes=args.max_stack_bytes)
    else:
        print("--max-stack-bytes must be non-negative", file=sys.stderr)
        return 2
    if args.workers < 0:
        print("--workers must be non-negative", file=sys.stderr)
        return 2
    executor = SerialExecutor() if args.workers == 0 else ProcessExecutor(args.workers)

    try:
        info = payload_info(args.input)
        requests = load_requests(args.input)
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2

    service = UpdateService()
    try:
        reports = service.update_fleet(requests, shards=shards, executor=executor)
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    plan = service.last_plan
    report = FleetReport(
        elapsed_days=float(info.get("elapsed_days") or 0.0),
        reports=tuple(reports),
        stacked_sweeps=service.last_stacked_sweeps,
        plan=plan,
        executor=executor.name,
        workers=executor.workers,
    )
    print(f"loaded {len(requests)} requests from {args.input}")
    if plan is not None and plan.shard_count:
        print(
            f"plan: {plan.shard_count} shards over {plan.site_count} sites "
            f"in {len(plan.ranks)} rank groups, peak stack "
            f"{plan.peak_stack_bytes} bytes"
            + (
                f" (budget {plan.max_stack_bytes})"
                if plan.max_stack_bytes is not None
                else " (unbounded)"
            )
        )
        print(
            f"executor: {executor.name}"
            + (f" ({executor.workers} workers)" if executor.workers else "")
        )
    print()
    print(format_fleet_report(report))
    if args.out:
        save_report(args.out, report)
        print(f"wrote report to {args.out}")
    return 0


def run_fleet(args) -> int:
    """Run the ``fleet`` subcommand: refresh several sites per survey stamp."""
    from repro.environments import environment_by_name
    from repro.service.fleet import FleetCampaign, FleetConfig

    config = ExperimentConfig.full() if args.preset == "full" else ExperimentConfig.quick()
    if args.seed is not None:
        config = replace(config, seed=args.seed)
    days = list(args.days) if args.days else list(config.later_timestamps)
    config = replace(config, timestamps_days=(0.0, *sorted(set(days))))

    if len(set(args.environments)) != len(args.environments):
        print(f"duplicate environments: {', '.join(args.environments)}", file=sys.stderr)
        return 2
    overrides = {}
    if args.link_count is not None:
        overrides["link_count"] = args.link_count
    if args.locations_per_link is not None:
        overrides["locations_per_link"] = args.locations_per_link
    try:
        specs = {
            name: environment_by_name(name, **overrides) for name in args.environments
        }
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2

    fleet = FleetCampaign(
        specs=specs,
        config=FleetConfig(
            environments=tuple(specs), campaign=config.campaign_config()
        ),
    )
    print(
        f"fleet: {', '.join(fleet.sites)} "
        f"({sum(spec.total_locations for spec in specs.values())} grid locations total)"
    )
    for elapsed_days in sorted(set(days)):
        report = fleet.refresh(elapsed_days)
        print()
        print(format_fleet_report(report))
    return 0


def main(argv: Optional[Iterable[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)

    if args.command == "list":
        for name in ExperimentRunner.available():
            print(name)
        return 0

    if args.command == "fleet":
        fleet_command = getattr(args, "fleet_command", None)
        if fleet_command == "export":
            return run_fleet_export(args)
        if fleet_command == "run":
            return run_fleet_run(args)
        return run_fleet(args)

    config = ExperimentConfig.full() if args.preset == "full" else ExperimentConfig.quick()
    if args.seed is not None:
        config = replace(config, seed=args.seed)
    runner = ExperimentRunner(config)

    available = set(ExperimentRunner.available())
    unknown = [name for name in args.names if name not in available]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print("use 'list' to see the available names", file=sys.stderr)
        return 2
    if args.jobs < 1:
        print("--jobs must be at least 1", file=sys.stderr)
        return 2

    results = runner.run_many(args.names, jobs=args.jobs)
    for name in args.names:
        print(render_result(name, results[name]))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
