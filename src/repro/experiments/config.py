"""Shared configuration of the evaluation experiments.

The paper's evaluation uses three environments, six survey time stamps over
three months, and a fixed set of reference-location counts.  To keep the
benchmark suite fast enough for CI while still exercising the full pipeline,
``ExperimentConfig`` exposes a ``quick()`` preset (fewer time stamps, fewer
localization trials) and a ``full()`` preset matching the paper's protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.environments import (
    hall_environment,
    library_environment,
    office_environment,
)
from repro.environments.base import EnvironmentSpec
from repro.simulation.campaign import CampaignConfig
from repro.simulation.collector import CollectionConfig

__all__ = ["ExperimentConfig", "PAPER_LATER_TIMESTAMPS"]

PAPER_LATER_TIMESTAMPS: Tuple[float, ...] = (3.0, 5.0, 15.0, 45.0, 90.0)
"""The five post-original survey stamps of the paper (days)."""


@dataclass(frozen=True)
class ExperimentConfig:
    """Configuration shared by the per-figure experiments.

    Attributes
    ----------
    timestamps_days:
        Survey time stamps, always including day 0.
    localization_trials:
        Number of online localization trials per configuration.
    seed:
        Master random seed for the simulated substrate.
    survey_samples, reference_samples, online_samples:
        Sampling depths used by the measurement collector.
    """

    timestamps_days: Tuple[float, ...] = (0.0,) + PAPER_LATER_TIMESTAMPS
    localization_trials: int = 60
    seed: int = 7
    survey_samples: int = 20
    reference_samples: int = 5
    online_samples: int = 2

    @classmethod
    def quick(cls) -> "ExperimentConfig":
        """A fast preset for benchmarks / CI (single later stamp, few trials)."""
        return cls(
            timestamps_days=(0.0, 45.0),
            localization_trials=40,
            survey_samples=8,
        )

    @classmethod
    def full(cls) -> "ExperimentConfig":
        """The paper-faithful preset (all six stamps, more trials)."""
        return cls(
            timestamps_days=(0.0,) + PAPER_LATER_TIMESTAMPS,
            localization_trials=80,
            survey_samples=30,
        )

    @property
    def later_timestamps(self) -> Tuple[float, ...]:
        """All configured stamps except day 0."""
        return tuple(t for t in self.timestamps_days if t > 0)

    def campaign_config(self) -> CampaignConfig:
        """Build the :class:`CampaignConfig` corresponding to this preset."""
        return CampaignConfig(
            timestamps_days=self.timestamps_days,
            collection=CollectionConfig(
                survey_samples=self.survey_samples,
                reference_samples=self.reference_samples,
                online_samples=self.online_samples,
            ),
            seed=self.seed,
        )

    def environments(self) -> Dict[str, EnvironmentSpec]:
        """The paper's three environments, keyed by name."""
        return {
            "hall": hall_environment(),
            "office": office_environment(),
            "library": library_environment(),
        }
