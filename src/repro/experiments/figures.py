"""One experiment function per figure of the paper's evaluation.

Every function takes an :class:`~repro.experiments.config.ExperimentConfig`
(plus, where useful, a pre-built :class:`CampaignCache`) and returns a plain
dictionary with the measured series/rows and, where the paper states concrete
numbers, the corresponding ``paper_*`` entries for side-by-side comparison in
EXPERIMENTS.md and the benchmark output.

The functions are deliberately deterministic given the configuration seed so
that repeated benchmark runs produce identical tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.analysis import (
    als_values,
    difference_stability,
    low_rank_report,
    nlc_values,
    singular_value_profile,
)
from repro.core.self_augmented import SelfAugmentedConfig
from repro.core.updater import UpdaterConfig
from repro.experiments.config import ExperimentConfig
from repro.fingerprint.matrix import FingerprintMatrix
from repro.localization.knn import KNNLocalizer
from repro.localization.omp import OMPLocalizer
from repro.localization.rass import RASSLocalizer
from repro.service.fleet import FleetCampaign, FleetConfig
from repro.simulation.campaign import SurveyCampaign
from repro.simulation.labor import LaborCostModel
from repro.utils.cdf import empirical_cdf

__all__ = [
    "CampaignCache",
    "fig01_short_term_variation",
    "fig02_long_term_shift",
    "fig05_low_rank",
    "fig06_difference_stability",
    "fig08_nlc_cdf",
    "fig09_als_cdf",
    "fig14_reference_count_cdf",
    "fig15_reference_count_over_time",
    "fig16_constraint_ablation",
    "fig17_partial_data",
    "fig18_reconstruction_cdf",
    "fig19_environments",
    "fig20_labor_cost",
    "fig21_localization_cdf",
    "fig22_localization_environments",
    "fig23_rass_cdf",
    "fig24_rass_over_time",
    "fleet_refresh",
    "labor_cost_savings",
]


@dataclass
class CampaignCache:
    """Caches survey campaigns so several experiments can share one substrate.

    Building the ground-truth database is the expensive part of every
    experiment (a full survey per time stamp); sharing it across figures
    keeps the benchmark suite tractable.
    """

    config: ExperimentConfig
    _campaigns: Dict[str, SurveyCampaign] = field(default_factory=dict)

    def campaign(self, environment: str = "office") -> SurveyCampaign:
        """Return (building if necessary) the campaign for an environment."""
        if environment not in self._campaigns:
            specs = self.config.environments()
            if environment not in specs:
                raise ValueError(
                    f"unknown environment {environment!r}; expected one of {sorted(specs)}"
                )
            self._campaigns[environment] = SurveyCampaign(
                specs[environment], self.config.campaign_config()
            )
        return self._campaigns[environment]


def _cache(config: ExperimentConfig, cache: Optional[CampaignCache]) -> CampaignCache:
    return cache if cache is not None else CampaignCache(config)


def _fixed_test_set(campaign: SurveyCampaign, trials: int) -> np.ndarray:
    rng = np.random.default_rng(campaign.config.seed + 1)
    n = campaign.deployment.location_count
    return rng.choice(n, size=min(trials, n), replace=False)


def _localization_errors(
    campaign: SurveyCampaign,
    matrix: FingerprintMatrix,
    test_indices: np.ndarray,
    measurements: np.ndarray,
    localizer: str = "omp",
) -> np.ndarray:
    """Per-trial localization errors with pre-drawn online measurements."""
    locations = campaign.deployment.location_array()
    if localizer == "omp":
        model = OMPLocalizer(matrix, locations)
    elif localizer == "knn":
        model = KNNLocalizer(matrix, locations)
    elif localizer == "rass":
        model = RASSLocalizer().fit(matrix, locations)
    else:
        raise ValueError(f"unknown localizer {localizer!r}")
    errors = []
    for row, true_index in zip(measurements, test_indices):
        estimate = model.localize_point(row)
        truth = locations[int(true_index)]
        errors.append(float(np.linalg.norm(estimate - truth)))
    return np.asarray(errors)


# --------------------------------------------------------------------------
# Motivation figures (Section I / II)
# --------------------------------------------------------------------------

def fig01_short_term_variation(
    config: ExperimentConfig, cache: Optional[CampaignCache] = None
) -> dict:
    """Fig. 1 — RSS at a fixed location varies by several dB over 100 s."""
    campaign = _cache(config, cache).campaign("office")
    channel = campaign.deployment.channel
    location = campaign.deployment.location_point(3)
    series = channel.rss_time_series(
        link_index=0, duration_s=100.0, sample_interval_s=0.5, target_location=location
    )
    return {
        "series_dbm": series,
        "span_db": float(series.max() - series.min()),
        "paper_span_db": 5.0,
    }


def fig02_long_term_shift(
    config: ExperimentConfig, cache: Optional[CampaignCache] = None
) -> dict:
    """Fig. 2 — average RSS shifts by ~2.5 dB after 5 days, ~6 dB after 45 days."""
    campaign = _cache(config, cache).campaign("office")
    channel = campaign.deployment.channel
    location = campaign.deployment.location_point(10)
    shifts = {}
    base = np.mean(
        [channel.mean_rss_dbm(i, location, 0.0) for i in range(channel.link_count)]
    )
    for days in (5.0, 45.0):
        later = np.mean(
            [channel.mean_rss_dbm(i, location, days) for i in range(channel.link_count)]
        )
        shifts[days] = float(abs(later - base))
    return {
        "shift_5_days_db": shifts[5.0],
        "shift_45_days_db": shifts[45.0],
        "paper_shift_5_days_db": 2.5,
        "paper_shift_45_days_db": 6.0,
    }


def fig05_low_rank(
    config: ExperimentConfig, cache: Optional[CampaignCache] = None
) -> dict:
    """Fig. 5 — normalised singular values of the six fingerprint matrices."""
    campaign = _cache(config, cache).campaign("office")
    database = campaign.database
    profiles = {}
    reports = {}
    for days in database.timestamps:
        matrix = database.get(days)
        profiles[days] = singular_value_profile(matrix.values)
        reports[days] = low_rank_report(matrix.values)
    return {
        "singular_value_profiles": profiles,
        "approximately_low_rank": {
            days: report.approximately_low_rank for days, report in reports.items()
        },
        "leading_energy_fraction": {
            days: report.leading_energy_fraction for days, report in reports.items()
        },
        "paper_rank": campaign.deployment.link_count,
    }


def fig06_difference_stability(
    config: ExperimentConfig, cache: Optional[CampaignCache] = None
) -> dict:
    """Fig. 6 — RSS differences are more stable than raw RSS over 100 s."""
    campaign = _cache(config, cache).campaign("office")
    channel = campaign.deployment.channel
    deployment = campaign.deployment
    location = deployment.location_point(2)
    neighbour = deployment.location_point(3)

    duration, interval = 100.0, 0.5
    rss = channel.rss_time_series(0, duration, interval, target_location=location)
    rss_neighbour = channel.rss_time_series(0, duration, interval, target_location=neighbour)
    # Same relative position on the adjacent link (one stripe width away).
    adjacent_index = 2 + deployment.locations_per_link
    rss_adjacent = channel.rss_time_series(
        1, duration, interval, target_location=deployment.location_point(adjacent_index)
    )
    stats = difference_stability(rss, rss - rss_neighbour, rss - rss_adjacent)
    return {
        **stats,
        "paper_observation": "difference variations are much smaller than RSS variations",
        "differences_more_stable": bool(
            stats["neighbour_stability_ratio"] < 1.0
            and stats["adjacent_stability_ratio"] < 1.0
        ),
    }


def fig08_nlc_cdf(
    config: ExperimentConfig, cache: Optional[CampaignCache] = None
) -> dict:
    """Fig. 8 — CDF of the neighbouring-location continuity statistic."""
    campaign = _cache(config, cache).campaign("office")
    database = campaign.database
    fraction_below = {}
    values = {}
    for days in database.timestamps:
        nlc = nlc_values(database.get(days).largely_decrease_matrix())
        values[days] = nlc
        fraction_below[days] = float(np.mean(nlc < 0.2))
    return {
        "nlc_values": values,
        "fraction_below_0_2": fraction_below,
        "paper_fraction_below_0_2": 0.9,
    }


def fig09_als_cdf(
    config: ExperimentConfig, cache: Optional[CampaignCache] = None
) -> dict:
    """Fig. 9 — CDF of the adjacent-link similarity statistic."""
    campaign = _cache(config, cache).campaign("office")
    database = campaign.database
    fraction_below = {}
    values = {}
    for days in database.timestamps:
        als = als_values(database.get(days).largely_decrease_matrix())
        values[days] = als
        fraction_below[days] = float(np.mean(als < 0.4))
    return {
        "als_values": values,
        "fraction_below_0_4": fraction_below,
        "paper_fraction_below_0_4": 0.8,
    }


# --------------------------------------------------------------------------
# Benchmark verifications (Section VI-B)
# --------------------------------------------------------------------------

def _reference_variants(campaign: SurveyCampaign) -> Dict[str, Sequence[int]]:
    """The four reference-location sets of the Fig. 14/15 experiment."""
    updater = campaign.make_updater()
    mic_indices = list(updater.reference_indices)
    rng = np.random.default_rng(campaign.config.seed + 11)
    n = campaign.deployment.location_count
    remaining = [j for j in range(n) if j not in mic_indices]
    extra = int(rng.choice(remaining))
    random_11 = list(rng.choice(n, size=min(11, n), replace=False))
    return {
        "7 reference locations": mic_indices[:-1],
        "8 reference locations (iUpdater)": mic_indices,
        "(8 reference + 1 random) locations": mic_indices + [extra],
        "11 random locations": random_11,
    }


def _reconstruction_with_references(
    campaign: SurveyCampaign,
    reference_indices: Sequence[int],
    elapsed_days: float,
) -> FingerprintMatrix:
    updater = campaign.make_updater()
    result = campaign.run_update(
        elapsed_days, updater=updater, reference_indices=list(reference_indices)
    )
    return result.matrix


def fig14_reference_count_cdf(
    config: ExperimentConfig,
    cache: Optional[CampaignCache] = None,
    elapsed_days: float = 45.0,
) -> dict:
    """Fig. 14 — reconstruction-error CDFs for different reference sets (45 days)."""
    campaign = _cache(config, cache).campaign("office")
    ground_truth = campaign.ground_truth(elapsed_days)
    results = {}
    medians = {}
    for label, indices in _reference_variants(campaign).items():
        estimate = _reconstruction_with_references(campaign, indices, elapsed_days)
        errors = estimate.per_column_errors_db(ground_truth)
        results[label] = errors
        medians[label] = float(np.median(errors))
    return {
        "per_column_errors_db": results,
        "median_errors_db": medians,
        "paper_expectation": (
            "dropping to 7 reference locations raises the median error by ~27 %; "
            "11 random locations raise it by ~47 %; adding a 9th location changes little"
        ),
    }


def fig15_reference_count_over_time(
    config: ExperimentConfig, cache: Optional[CampaignCache] = None
) -> dict:
    """Fig. 15 — average reconstruction errors for each reference set over time."""
    campaign = _cache(config, cache).campaign("office")
    variants = _reference_variants(campaign)
    series: Dict[str, Dict[float, float]] = {label: {} for label in variants}
    for days in config.later_timestamps:
        ground_truth = campaign.ground_truth(days)
        for label, indices in variants.items():
            estimate = _reconstruction_with_references(campaign, indices, days)
            series[label][days] = estimate.reconstruction_error_db(ground_truth)
    return {"mean_errors_db": series}


def fig16_constraint_ablation(
    config: ExperimentConfig, cache: Optional[CampaignCache] = None
) -> dict:
    """Fig. 16 — RSVD vs RSVD+Constraint1 vs RSVD+Constraint1+Constraint2."""
    campaign = _cache(config, cache).campaign("office")
    variants = {
        "RSVD": UpdaterConfig(
            solver=SelfAugmentedConfig(
                use_reference_constraint=False, use_structure_constraint=False
            )
        ),
        "RSVD + Constraint 1": UpdaterConfig(
            solver=SelfAugmentedConfig(use_structure_constraint=False)
        ),
        "RSVD + Constraint 1 + Constraint 2": UpdaterConfig(),
    }
    series: Dict[str, Dict[float, float]] = {label: {} for label in variants}
    for days in config.later_timestamps:
        ground_truth = campaign.ground_truth(days)
        for label, updater_config in variants.items():
            updater = campaign.make_updater(updater_config)
            result = campaign.run_update(days, updater=updater)
            series[label][days] = result.matrix.reconstruction_error_db(ground_truth)
    return {
        "mean_errors_db": series,
        "paper_expectation": (
            "basic RSVD has the largest error; Constraint 1 reduces it sharply; "
            "Constraint 2 reduces it further"
        ),
    }


def fig17_partial_data(
    config: ExperimentConfig, cache: Optional[CampaignCache] = None
) -> dict:
    """Fig. 17 — 50 % / 80 % surveyed data + Constraint 2 vs 100 % measured."""
    campaign = _cache(config, cache).campaign("office")
    test_indices = _fixed_test_set(campaign, config.localization_trials)
    results: Dict[str, Dict[float, float]] = {
        "80% data + Constraint 2": {},
        "50% data + Constraint 2": {},
        "Measured (ground truth)": {},
    }
    rng = np.random.default_rng(config.seed + 23)
    for days in config.later_timestamps:
        ground_truth = campaign.ground_truth(days)
        measurements = campaign.online_measurements(test_indices, days)
        errors_gt = _localization_errors(
            campaign, ground_truth, test_indices, measurements
        )
        results["Measured (ground truth)"][days] = float(np.mean(errors_gt))
        for fraction, label in ((0.8, "80% data + Constraint 2"), (0.5, "50% data + Constraint 2")):
            observed, mask = campaign.collector.collect_partial_survey(
                fraction, elapsed_days=days, rng=rng
            )
            updater = campaign.make_updater()
            mic, lrr = updater.acquire_correlation()
            reference = campaign.collector.collect_reference(mic.indices, elapsed_days=days)
            result = updater.update(
                no_decrease_matrix=observed,
                no_decrease_mask=mask,
                reference_matrix=reference,
                reference_indices=mic.indices,
            )
            errors = _localization_errors(
                campaign, result.matrix, test_indices, measurements
            )
            results[label][days] = float(np.mean(errors))
    return {
        "mean_localization_errors_m": results,
        "paper_expectation": (
            "80 % measured + Constraint 2 performs on par with (or better than) the "
            "100 % measured matrix; 50 % + Constraint 2 is comparable to 100 %"
        ),
    }


# --------------------------------------------------------------------------
# Reconstruction efficiency (Section VI-C)
# --------------------------------------------------------------------------

def fig18_reconstruction_cdf(
    config: ExperimentConfig, cache: Optional[CampaignCache] = None
) -> dict:
    """Fig. 18 — reconstruction-error CDFs at the five later time stamps."""
    campaign = _cache(config, cache).campaign("office")
    per_stamp = {}
    medians = {}
    for days in config.later_timestamps:
        ground_truth = campaign.ground_truth(days)
        result = campaign.run_update(days)
        errors = result.matrix.per_column_errors_db(ground_truth)
        per_stamp[days] = errors
        medians[days] = float(np.median(errors))
    return {
        "per_column_errors_db": per_stamp,
        "median_errors_db": medians,
        "paper_median_errors_db": {3.0: 2.7, 5.0: 2.5, 15.0: 3.3, 45.0: 3.6, 90.0: 4.1},
    }


def fig19_environments(
    config: ExperimentConfig, cache: Optional[CampaignCache] = None
) -> dict:
    """Fig. 19 — average reconstruction errors in hall / office / library."""
    store = _cache(config, cache)
    series: Dict[str, Dict[float, float]] = {}
    for name in ("hall", "office", "library"):
        campaign = store.campaign(name)
        series[name] = {}
        for days in config.later_timestamps:
            ground_truth = campaign.ground_truth(days)
            result = campaign.run_update(days)
            series[name][days] = result.matrix.reconstruction_error_db(ground_truth)
    return {
        "mean_errors_db": series,
        "paper_expectation": (
            "errors are lowest in the hall (low multipath) and highest in the "
            "library (rich multipath)"
        ),
    }


def fig20_labor_cost(config: ExperimentConfig, cache: Optional[CampaignCache] = None) -> dict:
    """Fig. 20 — update time cost as the deployment area grows."""
    model = LaborCostModel()
    curves = model.cost_versus_area(
        base_edge_locations=94,
        base_reference_locations=8,
        scale_factors=list(range(1, 11)),
    )
    return {
        **curves,
        "paper_expectation": "iUpdater's cost grows far more slowly than a full re-survey",
    }


def labor_cost_savings(
    config: ExperimentConfig, cache: Optional[CampaignCache] = None
) -> dict:
    """Section VI-C text — 97.9 % / 92.1 % labor-cost savings in the office."""
    model = LaborCostModel()
    traditional_50 = model.traditional_cost(94, samples=50)
    traditional_5 = model.traditional_cost(94, samples=5)
    iupdater = model.iupdater_cost(8, samples=5)
    saving_50 = 1.0 - iupdater.seconds / traditional_50.seconds
    saving_5 = 1.0 - iupdater.seconds / traditional_5.seconds
    return {
        "iupdater_seconds": iupdater.seconds,
        "traditional_50_samples_minutes": traditional_50.minutes,
        "traditional_5_samples_minutes": traditional_5.minutes,
        "saving_vs_50_samples": float(saving_50),
        "saving_vs_5_samples": float(saving_5),
        "paper_iupdater_seconds": 55.0,
        "paper_traditional_minutes": 46.9,
        "paper_saving_vs_50_samples": 0.979,
        "paper_saving_vs_5_samples": 0.921,
    }


def fleet_refresh(
    config: ExperimentConfig, cache: Optional[CampaignCache] = None
) -> dict:
    """Fleet service — refresh all three environments per stamp in one stacked solve."""
    fleet = FleetCampaign(
        specs=config.environments(),
        config=FleetConfig(campaign=config.campaign_config()),
    )
    refreshes = fleet.refresh_all()
    updated: Dict[str, Dict[float, float]] = {site: {} for site in fleet.sites}
    stale: Dict[str, Dict[float, float]] = {site: {} for site in fleet.sites}
    sweeps: Dict[str, float] = {}
    for days, report in refreshes.items():
        for site, error in report.errors_db.items():
            updated[site][days] = error
        for site, error in report.stale_errors_db.items():
            stale[site][days] = error
        sweeps[f"day_{days:g}"] = float(report.stacked_sweeps)
    return {
        "sites": len(fleet.sites),
        "updated_error_db": updated,
        "stale_error_db": stale,
        "stacked_sweeps": sweeps,
    }


# --------------------------------------------------------------------------
# Localization performance (Section VI-D)
# --------------------------------------------------------------------------

def fig21_localization_cdf(
    config: ExperimentConfig,
    cache: Optional[CampaignCache] = None,
    elapsed_days: float = 45.0,
) -> dict:
    """Fig. 21 — localization-error CDFs (ground truth / iUpdater / stale DB)."""
    campaign = _cache(config, cache).campaign("office")
    ground_truth = campaign.ground_truth(elapsed_days)
    stale = campaign.database.original
    reconstructed = campaign.run_update(elapsed_days).matrix
    test_indices = _fixed_test_set(campaign, config.localization_trials)
    measurements = campaign.online_measurements(test_indices, elapsed_days)
    errors = {
        "Groundtruth": _localization_errors(campaign, ground_truth, test_indices, measurements),
        "iUpdater": _localization_errors(campaign, reconstructed, test_indices, measurements),
        "OMP w/o rec.": _localization_errors(campaign, stale, test_indices, measurements),
    }
    medians = {label: float(np.median(values)) for label, values in errors.items()}
    improvement = (
        (np.mean(errors["OMP w/o rec."]) - np.mean(errors["iUpdater"]))
        / np.mean(errors["OMP w/o rec."])
    )
    return {
        "errors_m": errors,
        "median_errors_m": medians,
        "improvement_over_stale": float(improvement),
        "paper_median_errors_m": {"Groundtruth": 0.78, "iUpdater": 1.1},
        "paper_improvement_over_stale": 0.54,
    }


def fig22_localization_environments(
    config: ExperimentConfig, cache: Optional[CampaignCache] = None
) -> dict:
    """Fig. 22 — average localization errors in the three environments over time."""
    store = _cache(config, cache)
    series: Dict[str, Dict[str, Dict[float, float]]] = {}
    improvements: Dict[str, float] = {}
    for name in ("hall", "office", "library"):
        campaign = store.campaign(name)
        test_indices = _fixed_test_set(campaign, config.localization_trials)
        series[name] = {"Groundtruth": {}, "iUpdater": {}, "OMP w/o rec.": {}}
        stale_means, updated_means = [], []
        for days in config.later_timestamps:
            ground_truth = campaign.ground_truth(days)
            reconstructed = campaign.run_update(days).matrix
            stale = campaign.database.original
            measurements = campaign.online_measurements(test_indices, days)
            for label, matrix in (
                ("Groundtruth", ground_truth),
                ("iUpdater", reconstructed),
                ("OMP w/o rec.", stale),
            ):
                errors = _localization_errors(campaign, matrix, test_indices, measurements)
                series[name][label][days] = float(np.mean(errors))
            stale_means.append(series[name]["OMP w/o rec."][days])
            updated_means.append(series[name]["iUpdater"][days])
        improvements[name] = float(
            (np.mean(stale_means) - np.mean(updated_means)) / np.mean(stale_means)
        )
    return {
        "mean_errors_m": series,
        "improvement_over_stale": improvements,
        "paper_improvements": {"hall": 0.667, "office": 0.574, "library": 0.551},
    }


def fig23_rass_cdf(
    config: ExperimentConfig,
    cache: Optional[CampaignCache] = None,
    elapsed_days: float = 45.0,
) -> dict:
    """Fig. 23 — comparison with RASS (w/ and w/o reconstruction) at 45 days."""
    campaign = _cache(config, cache).campaign("office")
    reconstructed = campaign.run_update(elapsed_days).matrix
    stale = campaign.database.original
    test_indices = _fixed_test_set(campaign, config.localization_trials)
    measurements = campaign.online_measurements(test_indices, elapsed_days)
    errors = {
        "iUpdater": _localization_errors(
            campaign, reconstructed, test_indices, measurements, localizer="omp"
        ),
        "RASS w/ rec.": _localization_errors(
            campaign, reconstructed, test_indices, measurements, localizer="rass"
        ),
        "RASS w/o rec.": _localization_errors(
            campaign, stale, test_indices, measurements, localizer="rass"
        ),
    }
    medians = {label: float(np.median(values)) for label, values in errors.items()}
    return {
        "errors_m": errors,
        "median_errors_m": medians,
        "paper_median_errors_m": {
            "iUpdater": 1.1,
            "RASS w/ rec.": 1.6,
            "RASS w/o rec.": 3.3,
        },
    }


def fig24_rass_over_time(
    config: ExperimentConfig, cache: Optional[CampaignCache] = None
) -> dict:
    """Fig. 24 — average errors of iUpdater vs RASS at the five time stamps."""
    campaign = _cache(config, cache).campaign("office")
    test_indices = _fixed_test_set(campaign, config.localization_trials)
    series: Dict[str, Dict[float, float]] = {
        "iUpdater": {},
        "RASS w/ rec.": {},
        "RASS w/o rec.": {},
    }
    stale = campaign.database.original
    for days in config.later_timestamps:
        reconstructed = campaign.run_update(days).matrix
        measurements = campaign.online_measurements(test_indices, days)
        series["iUpdater"][days] = float(
            np.mean(
                _localization_errors(
                    campaign, reconstructed, test_indices, measurements, localizer="omp"
                )
            )
        )
        series["RASS w/ rec."][days] = float(
            np.mean(
                _localization_errors(
                    campaign, reconstructed, test_indices, measurements, localizer="rass"
                )
            )
        )
        series["RASS w/o rec."][days] = float(
            np.mean(
                _localization_errors(
                    campaign, stale, test_indices, measurements, localizer="rass"
                )
            )
        )
    return {
        "mean_errors_m": series,
        "paper_expectation": "iUpdater achieves the lowest error at every time stamp",
    }
