"""Plain-text reporting helpers for the experiment harness.

The benchmark suite prints the same rows/series the paper reports so the
reproduction can be compared side by side with the published figures.  These
formatters keep that output consistent across benchmarks, examples and
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

import numpy as np

__all__ = [
    "format_series_table",
    "format_key_values",
    "format_cdf_summary",
    "format_fleet_report",
]


def format_key_values(title: str, values: Mapping[str, float], unit: str = "") -> str:
    """Format a flat mapping of labelled scalar results."""
    lines = [title]
    width = max((len(str(k)) for k in values), default=0)
    for key, value in values.items():
        if isinstance(value, float):
            rendered = f"{value:.3f}"
        else:
            rendered = str(value)
        suffix = f" {unit}" if unit else ""
        lines.append(f"  {str(key):<{width}} : {rendered}{suffix}")
    return "\n".join(lines)


def format_series_table(
    title: str,
    series: Mapping[str, Mapping[float, float]],
    unit: str = "",
    column_label: str = "days",
) -> str:
    """Format a {row-label: {x: value}} mapping as an aligned text table."""
    columns: list = sorted({x for row in series.values() for x in row})
    header = f"{'':<36}" + "".join(f"{column_label} {c:>6g}  " for c in columns)
    lines = [title, header]
    for label, row in series.items():
        cells = []
        for c in columns:
            value = row.get(c)
            cells.append(f"{value:>12.3f}" if value is not None else f"{'-':>12}")
        lines.append(f"{label:<36}" + "".join(cells) + (f"  [{unit}]" if unit else ""))
    return "\n".join(lines)


def format_fleet_report(report) -> str:
    """Render a :class:`~repro.service.types.FleetReport` as a text table.

    One row per site (shape, sweeps, convergence, reconstruction error vs
    the stale baseline) followed by the aggregate summary the fleet CLI
    prints per refresh.
    """
    lines = [f"fleet refresh @ {report.elapsed_days:g} days"]
    header = (
        f"  {'site':<12}{'links':>6}{'grids':>7}{'sweeps':>8}{'conv':>6}"
        f"{'error_db':>10}{'stale_db':>10}"
    )
    lines.append(header)
    for site_report in report.reports:
        matrix = site_report.matrix
        error = report.errors_db.get(site_report.site)
        stale = report.stale_errors_db.get(site_report.site)
        lines.append(
            f"  {site_report.site:<12}"
            f"{matrix.link_count:>6}"
            f"{matrix.location_count:>7}"
            f"{site_report.sweeps:>8}"
            f"{'yes' if site_report.converged else 'no':>6}"
            + (f"{error:>10.3f}" if error is not None else f"{'-':>10}")
            + (f"{stale:>10.3f}" if stale is not None else f"{'-':>10}")
        )
    lines.append(format_key_values("aggregate", report.aggregate()))
    return "\n".join(lines)


def format_cdf_summary(title: str, samples: Mapping[str, Sequence[float]]) -> str:
    """Format median / 80th / 90th percentiles of labelled sample sets."""
    lines = [title, f"{'':<36}{'median':>10}{'p80':>10}{'p90':>10}"]
    for label, values in samples.items():
        array = np.asarray(list(values), dtype=float)
        lines.append(
            f"{label:<36}"
            f"{np.percentile(array, 50):>10.3f}"
            f"{np.percentile(array, 80):>10.3f}"
            f"{np.percentile(array, 90):>10.3f}"
        )
    return "\n".join(lines)
