"""Plain-text reporting helpers for the experiment harness.

The benchmark suite prints the same rows/series the paper reports so the
reproduction can be compared side by side with the published figures.  These
formatters keep that output consistent across benchmarks, examples and
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

import numpy as np

__all__ = ["format_series_table", "format_key_values", "format_cdf_summary"]


def format_key_values(title: str, values: Mapping[str, float], unit: str = "") -> str:
    """Format a flat mapping of labelled scalar results."""
    lines = [title]
    width = max((len(str(k)) for k in values), default=0)
    for key, value in values.items():
        if isinstance(value, float):
            rendered = f"{value:.3f}"
        else:
            rendered = str(value)
        suffix = f" {unit}" if unit else ""
        lines.append(f"  {str(key):<{width}} : {rendered}{suffix}")
    return "\n".join(lines)


def format_series_table(
    title: str,
    series: Mapping[str, Mapping[float, float]],
    unit: str = "",
    column_label: str = "days",
) -> str:
    """Format a {row-label: {x: value}} mapping as an aligned text table."""
    columns: list = sorted({x for row in series.values() for x in row})
    header = f"{'':<36}" + "".join(f"{column_label} {c:>6g}  " for c in columns)
    lines = [title, header]
    for label, row in series.items():
        cells = []
        for c in columns:
            value = row.get(c)
            cells.append(f"{value:>12.3f}" if value is not None else f"{'-':>12}")
        lines.append(f"{label:<36}" + "".join(cells) + (f"  [{unit}]" if unit else ""))
    return "\n".join(lines)


def format_cdf_summary(title: str, samples: Mapping[str, Sequence[float]]) -> str:
    """Format median / 80th / 90th percentiles of labelled sample sets."""
    lines = [title, f"{'':<36}{'median':>10}{'p80':>10}{'p90':>10}"]
    for label, values in samples.items():
        array = np.asarray(list(values), dtype=float)
        lines.append(
            f"{label:<36}"
            f"{np.percentile(array, 50):>10.3f}"
            f"{np.percentile(array, 80):>10.3f}"
            f"{np.percentile(array, 90):>10.3f}"
        )
    return "\n".join(lines)
