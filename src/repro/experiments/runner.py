"""Experiment runner: execute any subset of the per-figure experiments.

``ExperimentRunner`` wires the experiment functions of
:mod:`repro.experiments.figures` to a shared :class:`CampaignCache` so the
expensive ground-truth surveys are built once and reused by every figure.
The runner is what the benchmark harness, the examples and
``docs/EXPERIMENTS.md`` (the registry reference) all drive.

Independent experiments can fan out across processes:
``run_many(names, jobs=N)`` hands each experiment to a
``ProcessPoolExecutor`` worker that builds its own :class:`CampaignCache`
from the same configuration, and merges the results back deterministically
in input order.  Each worker's experiment therefore runs *as if alone* —
reproducible and independent of which other experiments ran first.  A
sequential shared-cache session is subtly different: the simulated
channel's noise generator is stateful, so an experiment's measurements
there can depend on how many draws earlier experiments consumed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Optional

from repro.experiments import figures
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import CampaignCache

__all__ = ["ExperimentRunner", "EXPERIMENTS"]


def _run_experiment_in_worker(config: ExperimentConfig, name: str) -> dict:
    """Top-level (picklable) worker: fresh runner + cache per process."""
    return ExperimentRunner(config).run(name)

EXPERIMENTS: Dict[str, Callable] = {
    "fig01_short_term_variation": figures.fig01_short_term_variation,
    "fig02_long_term_shift": figures.fig02_long_term_shift,
    "fig05_low_rank": figures.fig05_low_rank,
    "fig06_difference_stability": figures.fig06_difference_stability,
    "fig08_nlc_cdf": figures.fig08_nlc_cdf,
    "fig09_als_cdf": figures.fig09_als_cdf,
    "fig14_reference_count_cdf": figures.fig14_reference_count_cdf,
    "fig15_reference_count_over_time": figures.fig15_reference_count_over_time,
    "fig16_constraint_ablation": figures.fig16_constraint_ablation,
    "fig17_partial_data": figures.fig17_partial_data,
    "fig18_reconstruction_cdf": figures.fig18_reconstruction_cdf,
    "fig19_environments": figures.fig19_environments,
    "fig20_labor_cost": figures.fig20_labor_cost,
    "fig21_localization_cdf": figures.fig21_localization_cdf,
    "fig22_localization_environments": figures.fig22_localization_environments,
    "fig23_rass_cdf": figures.fig23_rass_cdf,
    "fig24_rass_over_time": figures.fig24_rass_over_time,
    "fleet_refresh": figures.fleet_refresh,
    "labor_cost_savings": figures.labor_cost_savings,
}
"""Registry mapping experiment names to their implementation functions."""


@dataclass
class ExperimentRunner:
    """Runs registered experiments against a shared campaign cache."""

    config: ExperimentConfig = field(default_factory=ExperimentConfig.quick)
    cache: Optional[CampaignCache] = None

    def __post_init__(self) -> None:
        if self.cache is None:
            self.cache = CampaignCache(self.config)

    @staticmethod
    def available() -> list:
        """Names of all registered experiments."""
        return sorted(EXPERIMENTS)

    def run(self, name: str, **kwargs) -> dict:
        """Run a single experiment by name and return its result dictionary."""
        if name not in EXPERIMENTS:
            raise KeyError(
                f"unknown experiment {name!r}; available: {', '.join(self.available())}"
            )
        return EXPERIMENTS[name](self.config, self.cache, **kwargs)

    def run_many(
        self, names: Optional[Iterable[str]] = None, jobs: int = 1
    ) -> Dict[str, dict]:
        """Run several experiments (all registered ones by default).

        Parameters
        ----------
        names:
            Experiment names; defaults to every registered experiment.
        jobs:
            With ``jobs > 1``, independent experiments run in a
            ``ProcessPoolExecutor``; each worker builds its own
            :class:`CampaignCache` from this runner's configuration and the
            merged results are returned in input-name order.  Every
            experiment then runs as if alone; experiments whose
            measurements draw from the shared substrate's stateful noise
            generator can differ from a sequential shared-cache run, where
            earlier experiments advance that generator (see the module
            docstring).
        """
        names = list(names) if names is not None else self.available()
        if jobs < 1:
            raise ValueError(f"jobs must be at least 1, got {jobs}")
        unknown = [name for name in names if name not in EXPERIMENTS]
        if unknown:
            raise KeyError(
                f"unknown experiments {unknown}; available: {', '.join(self.available())}"
            )
        if jobs == 1 or len(names) <= 1:
            return {name: self.run(name) for name in names}

        from concurrent.futures import ProcessPoolExecutor

        distinct = list(dict.fromkeys(names))
        with ProcessPoolExecutor(max_workers=min(jobs, len(distinct))) as pool:
            futures = {
                name: pool.submit(_run_experiment_in_worker, self.config, name)
                for name in distinct
            }
            resolved = {name: future.result() for name, future in futures.items()}
        return {name: resolved[name] for name in names}
