"""Experiment runner: execute any subset of the per-figure experiments.

``ExperimentRunner`` wires the experiment functions of
:mod:`repro.experiments.figures` to a shared :class:`CampaignCache` so the
expensive ground-truth surveys are built once and reused by every figure.
The runner is what the benchmark harness, the examples and EXPERIMENTS.md all
drive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Optional

from repro.experiments import figures
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import CampaignCache

__all__ = ["ExperimentRunner", "EXPERIMENTS"]

EXPERIMENTS: Dict[str, Callable] = {
    "fig01_short_term_variation": figures.fig01_short_term_variation,
    "fig02_long_term_shift": figures.fig02_long_term_shift,
    "fig05_low_rank": figures.fig05_low_rank,
    "fig06_difference_stability": figures.fig06_difference_stability,
    "fig08_nlc_cdf": figures.fig08_nlc_cdf,
    "fig09_als_cdf": figures.fig09_als_cdf,
    "fig14_reference_count_cdf": figures.fig14_reference_count_cdf,
    "fig15_reference_count_over_time": figures.fig15_reference_count_over_time,
    "fig16_constraint_ablation": figures.fig16_constraint_ablation,
    "fig17_partial_data": figures.fig17_partial_data,
    "fig18_reconstruction_cdf": figures.fig18_reconstruction_cdf,
    "fig19_environments": figures.fig19_environments,
    "fig20_labor_cost": figures.fig20_labor_cost,
    "fig21_localization_cdf": figures.fig21_localization_cdf,
    "fig22_localization_environments": figures.fig22_localization_environments,
    "fig23_rass_cdf": figures.fig23_rass_cdf,
    "fig24_rass_over_time": figures.fig24_rass_over_time,
    "fleet_refresh": figures.fleet_refresh,
    "labor_cost_savings": figures.labor_cost_savings,
}
"""Registry mapping experiment names to their implementation functions."""


@dataclass
class ExperimentRunner:
    """Runs registered experiments against a shared campaign cache."""

    config: ExperimentConfig = field(default_factory=ExperimentConfig.quick)
    cache: Optional[CampaignCache] = None

    def __post_init__(self) -> None:
        if self.cache is None:
            self.cache = CampaignCache(self.config)

    @staticmethod
    def available() -> list:
        """Names of all registered experiments."""
        return sorted(EXPERIMENTS)

    def run(self, name: str, **kwargs) -> dict:
        """Run a single experiment by name and return its result dictionary."""
        if name not in EXPERIMENTS:
            raise KeyError(
                f"unknown experiment {name!r}; available: {', '.join(self.available())}"
            )
        return EXPERIMENTS[name](self.config, self.cache, **kwargs)

    def run_many(self, names: Optional[Iterable[str]] = None) -> Dict[str, dict]:
        """Run several experiments (all registered ones by default)."""
        names = list(names) if names is not None else self.available()
        return {name: self.run(name) for name in names}
