"""Fingerprint matrix machinery: matrices, masks and the time-stamped database."""

from repro.fingerprint.database import FingerprintDatabase, TimestampedFingerprint
from repro.fingerprint.masks import DecreaseClassification, classify_elements
from repro.fingerprint.matrix import FingerprintMatrix

__all__ = [
    "FingerprintMatrix",
    "FingerprintDatabase",
    "TimestampedFingerprint",
    "DecreaseClassification",
    "classify_elements",
]
