"""Time-stamped fingerprint database.

The paper builds six ground-truth fingerprint matrices over three months
(0, 3, 5, 15, 45 and 90 days).  ``FingerprintDatabase`` stores those
snapshots, tracks which one is "current" (i.e. the latest matrix the operator
has actually updated), and provides the original-time matrix from which the
MIC vectors and the inherent correlation matrix are derived.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.fingerprint.matrix import FingerprintMatrix

__all__ = ["TimestampedFingerprint", "FingerprintDatabase", "PAPER_TIMESTAMPS_DAYS"]

PAPER_TIMESTAMPS_DAYS: Tuple[float, ...] = (0.0, 3.0, 5.0, 15.0, 45.0, 90.0)
"""The six survey time stamps used in the paper's evaluation (days)."""


@dataclass(frozen=True)
class TimestampedFingerprint:
    """A fingerprint matrix snapshot taken at a given elapsed time."""

    elapsed_days: float
    matrix: FingerprintMatrix

    def __post_init__(self) -> None:
        if self.elapsed_days < 0:
            raise ValueError("elapsed_days must be non-negative")


class FingerprintDatabase:
    """An ordered collection of fingerprint snapshots.

    The database always contains at least the original-time snapshot
    (``elapsed_days == 0``); later snapshots may be ground-truth surveys (for
    evaluation) or reconstructed matrices produced by iUpdater.
    """

    def __init__(self, original: FingerprintMatrix) -> None:
        self._snapshots: Dict[float, TimestampedFingerprint] = {}
        self._latest_updated_days: float = 0.0
        self.add_snapshot(0.0, original)

    # ------------------------------------------------------------- inspection
    @property
    def timestamps(self) -> List[float]:
        """Sorted list of elapsed-day time stamps currently stored."""
        return sorted(self._snapshots)

    @property
    def original(self) -> FingerprintMatrix:
        """The matrix surveyed at the original time (day 0)."""
        return self._snapshots[0.0].matrix

    @property
    def latest_updated_days(self) -> float:
        """Time stamp of the most recently updated (current) matrix."""
        return self._latest_updated_days

    @property
    def current(self) -> FingerprintMatrix:
        """The most recently updated matrix (used to derive MIC vectors)."""
        return self._snapshots[self._latest_updated_days].matrix

    def __len__(self) -> int:
        return len(self._snapshots)

    def __iter__(self) -> Iterator[TimestampedFingerprint]:
        for days in self.timestamps:
            yield self._snapshots[days]

    def __contains__(self, elapsed_days: float) -> bool:
        return float(elapsed_days) in self._snapshots

    def get(self, elapsed_days: float) -> FingerprintMatrix:
        """Return the snapshot at ``elapsed_days`` (exact match required)."""
        key = float(elapsed_days)
        if key not in self._snapshots:
            raise KeyError(
                f"no snapshot at {elapsed_days} days; available: {self.timestamps}"
            )
        return self._snapshots[key].matrix

    # -------------------------------------------------------------- mutation
    def add_snapshot(
        self,
        elapsed_days: float,
        matrix: FingerprintMatrix,
        mark_as_current: bool = True,
    ) -> None:
        """Store a snapshot; optionally mark it as the current matrix."""
        key = float(elapsed_days)
        if key < 0:
            raise ValueError("elapsed_days must be non-negative")
        if self._snapshots:
            reference = next(iter(self._snapshots.values())).matrix
            if matrix.shape != reference.shape:
                raise ValueError(
                    f"snapshot shape {matrix.shape} does not match database "
                    f"shape {reference.shape}"
                )
        self._snapshots[key] = TimestampedFingerprint(elapsed_days=key, matrix=matrix)
        if mark_as_current and key >= self._latest_updated_days:
            self._latest_updated_days = key

    def drop_snapshot(self, elapsed_days: float) -> None:
        """Remove a snapshot (the day-0 original cannot be removed)."""
        key = float(elapsed_days)
        if key == 0.0:
            raise ValueError("the original (day 0) snapshot cannot be removed")
        if key not in self._snapshots:
            raise KeyError(f"no snapshot at {elapsed_days} days")
        del self._snapshots[key]
        if self._latest_updated_days == key:
            self._latest_updated_days = max(self._snapshots)

    # ---------------------------------------------------------------- queries
    def staleness_days(self, now_days: float) -> float:
        """How old the current matrix is relative to ``now_days``."""
        if now_days < self._latest_updated_days:
            raise ValueError("now_days precedes the latest update")
        return now_days - self._latest_updated_days

    def drift_between(self, first_days: float, second_days: float) -> float:
        """Mean absolute RSS change between two stored snapshots (dB)."""
        first = self.get(first_days)
        second = self.get(second_days)
        return float(np.mean(np.abs(first.values - second.values)))
