"""Classification of fingerprint-matrix elements.

Every element ``x_ij`` of the fingerprint matrix falls into one of three
categories depending on where location ``j`` sits relative to link ``i``
(Fig. 4 of the paper):

* ``LARGE`` — the target blocks the direct path of link ``i`` (location ``j``
  lies on link ``i``'s stripe).  These elements form the largely-decrease
  matrix ``X_D``.
* ``SMALL`` — the target is inside the first Fresnel zone of link ``i`` but
  not blocking it (typically the stripes of the adjacent links).
* ``NONE``  — the target is outside the Fresnel zone; the RSS is essentially
  the target-free baseline, so it can be measured with nobody present.  These
  form the no-decrease matrix ``X_B`` and its index matrix ``B``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

import numpy as np

from repro.environments.base import Deployment
from repro.rf.target import ObstructionState

__all__ = ["ElementCategory", "DecreaseClassification", "classify_elements"]


class ElementCategory(int, Enum):
    """Category of a fingerprint-matrix element."""

    NONE = 0
    SMALL = 1
    LARGE = 2


@dataclass(frozen=True)
class DecreaseClassification:
    """Per-element categories plus the derived masks.

    Attributes
    ----------
    categories:
        ``(M, N)`` integer matrix of :class:`ElementCategory` values.
    """

    categories: np.ndarray

    @property
    def shape(self) -> tuple[int, int]:
        """Shape of the underlying fingerprint matrix."""
        return self.categories.shape

    @property
    def no_decrease_mask(self) -> np.ndarray:
        """The index matrix ``B``: 1 where the element has no RSS decrease."""
        return (self.categories == ElementCategory.NONE.value).astype(float)

    @property
    def large_decrease_mask(self) -> np.ndarray:
        """1 where the target blocks the direct path of the link."""
        return (self.categories == ElementCategory.LARGE.value).astype(float)

    @property
    def small_decrease_mask(self) -> np.ndarray:
        """1 where the target is inside the FFZ without blocking."""
        return (self.categories == ElementCategory.SMALL.value).astype(float)

    @property
    def labor_mask(self) -> np.ndarray:
        """1 where a measurement requires a person (large or small decrease)."""
        return 1.0 - self.no_decrease_mask

    def fraction_no_decrease(self) -> float:
        """Fraction of elements measurable without a person present."""
        return float(self.no_decrease_mask.mean())


def classify_elements(
    deployment: Deployment, use_geometry: bool = True
) -> DecreaseClassification:
    """Classify every (link, location) pair of a deployment.

    Parameters
    ----------
    deployment:
        The deployment whose fingerprint matrix is being described.
    use_geometry:
        When True (default) the classification queries the target-obstruction
        model's Fresnel-zone geometry.  When False, a purely structural
        classification is used instead: a location's own stripe is LARGE, the
        stripes of the immediately adjacent links are SMALL, everything else
        is NONE.  The structural mode matches the idealised matrix sketch of
        Fig. 4 and is useful for unit tests.
    """
    m = deployment.link_count
    n = deployment.location_count
    categories = np.zeros((m, n), dtype=int)

    if use_geometry:
        channel = deployment.channel
        for j in range(n):
            location = deployment.location_point(j)
            for i in range(m):
                state = channel.obstruction_state(i, location)
                if state is ObstructionState.BLOCKING:
                    categories[i, j] = ElementCategory.LARGE.value
                elif state is ObstructionState.FRESNEL:
                    categories[i, j] = ElementCategory.SMALL.value
                else:
                    categories[i, j] = ElementCategory.NONE.value
    else:
        for j in range(n):
            own_link = deployment.link_of_location(j)
            for i in range(m):
                if i == own_link:
                    categories[i, j] = ElementCategory.LARGE.value
                elif abs(i - own_link) == 1:
                    categories[i, j] = ElementCategory.SMALL.value
                else:
                    categories[i, j] = ElementCategory.NONE.value

    # The target always blocks the link whose stripe it stands on, regardless
    # of what the geometric model says (numerical edge cases at stripe ends).
    for j in range(n):
        categories[deployment.link_of_location(j), j] = ElementCategory.LARGE.value

    return DecreaseClassification(categories=categories)
