"""The fingerprint matrix abstraction.

``FingerprintMatrix`` wraps the raw ``M x N`` RSS matrix together with the
stripe structure (``N / M`` locations per link) and exposes the derived
quantities the paper manipulates:

* the **largely-decrease matrix** ``X_D`` of shape ``M x (N/M)`` — the RSS
  readings where the target blocks a link's direct path (Definition 2);
* the **no-decrease matrix** ``X_B = B ∘ X`` and its index matrix ``B``;
* column extraction for reference locations and MIC sub-matrices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.utils.validation import check_2d, check_indices

__all__ = ["FingerprintMatrix"]


@dataclass
class FingerprintMatrix:
    """An ``M x N`` fingerprint matrix with per-link stripe structure.

    Attributes
    ----------
    values:
        The RSS readings in dBm, shape ``(M, N)``.
    locations_per_link:
        Stripe width ``N / M``.  Column ``j`` belongs to link
        ``j // locations_per_link`` and offset ``j % locations_per_link``
        within that link's stripe.
    no_decrease_mask:
        Optional index matrix ``B`` (1 where the element has no RSS decrease
        and can be measured without a person).  When omitted, the structural
        default is used: stripes of links at distance >= 2 from the column's
        own link are considered no-decrease.
    """

    values: np.ndarray
    locations_per_link: int
    no_decrease_mask: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.values = check_2d(self.values, "values")
        m, n = self.values.shape
        if self.locations_per_link <= 0:
            raise ValueError("locations_per_link must be positive")
        if n != m * self.locations_per_link:
            raise ValueError(
                f"matrix with {m} links and stripe width {self.locations_per_link} "
                f"must have {m * self.locations_per_link} columns, got {n}"
            )
        if self.no_decrease_mask is None:
            self.no_decrease_mask = self._structural_no_decrease_mask()
        else:
            self.no_decrease_mask = check_2d(self.no_decrease_mask, "no_decrease_mask")
            if self.no_decrease_mask.shape != self.values.shape:
                raise ValueError("no_decrease_mask shape must match values shape")
            if not np.all(np.isin(self.no_decrease_mask, (0.0, 1.0))):
                raise ValueError("no_decrease_mask must be a 0/1 matrix")

    # ------------------------------------------------------------------ shape
    @property
    def link_count(self) -> int:
        """Number of links ``M`` (rows)."""
        return self.values.shape[0]

    @property
    def location_count(self) -> int:
        """Number of grid locations ``N`` (columns)."""
        return self.values.shape[1]

    @property
    def shape(self) -> tuple[int, int]:
        """Shape ``(M, N)`` of the matrix."""
        return self.values.shape

    def copy(self) -> "FingerprintMatrix":
        """Deep copy of the fingerprint matrix."""
        return FingerprintMatrix(
            values=self.values.copy(),
            locations_per_link=self.locations_per_link,
            no_decrease_mask=None
            if self.no_decrease_mask is None
            else self.no_decrease_mask.copy(),
        )

    # ------------------------------------------------------------ stripe math
    def link_of_column(self, column: int) -> int:
        """Link index whose stripe contains ``column``."""
        if not 0 <= column < self.location_count:
            raise ValueError(f"column must lie in [0, {self.location_count - 1}]")
        return column // self.locations_per_link

    def stripe_offset(self, column: int) -> int:
        """Offset of ``column`` within its link stripe (``u`` in the paper)."""
        if not 0 <= column < self.location_count:
            raise ValueError(f"column must lie in [0, {self.location_count - 1}]")
        return column % self.locations_per_link

    def stripe_columns(self, link_index: int) -> range:
        """Columns forming the stripe of ``link_index``."""
        if not 0 <= link_index < self.link_count:
            raise ValueError(f"link_index must lie in [0, {self.link_count - 1}]")
        width = self.locations_per_link
        return range(link_index * width, (link_index + 1) * width)

    def _structural_no_decrease_mask(self) -> np.ndarray:
        """Default ``B``: links two or more stripes away see no decrease."""
        m, n = self.values.shape
        mask = np.zeros((m, n), dtype=float)
        for j in range(n):
            own = self.link_of_column(j)
            for i in range(m):
                if abs(i - own) >= 2:
                    mask[i, j] = 1.0
        return mask

    # -------------------------------------------------------- derived matrices
    def largely_decrease_matrix(self) -> np.ndarray:
        """The ``M x (N/M)`` largely-decrease matrix ``X_D`` (Definition 2).

        ``X_D[i, u] = X[i, (i * N/M) + u]`` — the RSS of link ``i`` when the
        target stands at the ``u``-th grid on link ``i``'s own stripe.
        """
        width = self.locations_per_link
        xd = np.zeros((self.link_count, width), dtype=float)
        for i in range(self.link_count):
            xd[i, :] = self.values[i, i * width : (i + 1) * width]
        return xd

    def set_largely_decrease_matrix(self, xd: np.ndarray) -> None:
        """Write an ``M x (N/M)`` matrix back into the diagonal stripes."""
        xd = check_2d(xd, "xd")
        width = self.locations_per_link
        if xd.shape != (self.link_count, width):
            raise ValueError(
                f"xd must have shape {(self.link_count, width)}, got {xd.shape}"
            )
        for i in range(self.link_count):
            self.values[i, i * width : (i + 1) * width] = xd[i, :]

    def no_decrease_matrix(self) -> np.ndarray:
        """``X_B = B ∘ X`` — the observable entries with nobody present."""
        return self.values * self.no_decrease_mask

    def index_matrix(self) -> np.ndarray:
        """The 0/1 index matrix ``B``."""
        assert self.no_decrease_mask is not None
        return self.no_decrease_mask.copy()

    def columns(self, indices: Sequence[int]) -> np.ndarray:
        """Extract a set of columns (e.g. the reference matrix ``X_R``)."""
        idx = check_indices(indices, self.location_count, "column indices")
        return self.values[:, idx].copy()

    def column(self, index: int) -> np.ndarray:
        """A single column (the fingerprint of one location)."""
        if not 0 <= index < self.location_count:
            raise ValueError(f"index must lie in [0, {self.location_count - 1}]")
        return self.values[:, index].copy()

    # ---------------------------------------------------------------- metrics
    def reconstruction_error_db(self, other: "FingerprintMatrix | np.ndarray") -> float:
        """Mean absolute per-element error against another matrix, in dB.

        This is the reconstruction-performance metric of Section VI-A ("the
        difference between reconstructed matrix and ground truth matrix").
        """
        other_values = other.values if isinstance(other, FingerprintMatrix) else other
        other_values = np.asarray(other_values, dtype=float)
        if other_values.shape != self.values.shape:
            raise ValueError("matrices must share the same shape")
        return float(np.mean(np.abs(self.values - other_values)))

    def per_column_errors_db(self, other: "FingerprintMatrix | np.ndarray") -> np.ndarray:
        """Mean absolute error per column (used for error CDFs)."""
        other_values = other.values if isinstance(other, FingerprintMatrix) else other
        other_values = np.asarray(other_values, dtype=float)
        if other_values.shape != self.values.shape:
            raise ValueError("matrices must share the same shape")
        return np.mean(np.abs(self.values - other_values), axis=0)

    def singular_values(self) -> np.ndarray:
        """Singular values of the matrix (used by the low-rank diagnostics)."""
        return np.linalg.svd(self.values, compute_uv=False)
