"""Serialized wire formats for the fleet update service.

``repro.io`` is how update requests and fleet reports leave (and re-enter)
a process: a versioned NPZ+JSON payload that preserves matrices bit-exactly
along with masks, dtypes, seeds, pipeline configs and the executed shard
plan.  See :mod:`repro.io.wire` for the layout and guarantees.
"""

from repro.io.wire import (
    REPORT_FORMAT,
    REQUESTS_FORMAT,
    WIRE_VERSION,
    load_report,
    load_requests,
    payload_info,
    save_report,
    save_requests,
)

__all__ = [
    "WIRE_VERSION",
    "REQUESTS_FORMAT",
    "REPORT_FORMAT",
    "save_requests",
    "load_requests",
    "save_report",
    "load_report",
    "payload_info",
]
