"""Serialized wire formats for the fleet update service and the query engine.

``repro.io`` is how update requests, fleet reports, query workloads and
answers leave (and re-enter) a process: versioned NPZ+JSON payloads that
preserve matrices bit-exactly along with masks, dtypes, seeds, pipeline
configs and the executed shard plan.  The same layout works in memory
(``requests_to_bytes`` / ``requests_from_bytes``) — that is how the
distributed executor scatters shards to worker processes.  The read-path
payloads (:mod:`repro.io.query`) carry batched localization queries and the
engine's answers behind ``query export`` / ``query run``.  The always-on
daemon's job queue persists through :mod:`repro.io.jobs`: validated
:class:`~repro.io.jobs.JobRecord` entries in an atomically-rewritten JSON
journal, next to the jobs' NPZ payloads.  See :mod:`repro.io.wire` for the
layout and guarantees, and ``docs/WIRE_FORMAT.md`` for the on-disk spec.
"""

from repro.io.delta import (
    DELTA_FORMAT,
    DELTA_VERSION,
    FleetDelta,
    apply_delta,
    load_delta,
    report_fingerprint,
    save_delta,
)
from repro.io.jobs import (
    JOB_STATES,
    JOURNAL_FORMAT,
    JOURNAL_VERSION,
    JobRecord,
    job_from_json,
    job_to_json,
    load_journal,
    save_journal,
)
from repro.io.query import (
    ANSWERS_FORMAT,
    QUERIES_FORMAT,
    load_answers,
    load_queries,
    save_answers,
    save_queries,
)
from repro.io.wire import (
    REPORT_FORMAT,
    REQUESTS_FORMAT,
    SHARD_RESULT_FORMAT,
    SHARD_TASK_FORMAT,
    WIRE_VERSION,
    ShardTask,
    WirePayloadError,
    load_report,
    load_requests,
    payload_info,
    requests_from_bytes,
    requests_to_bytes,
    save_report,
    save_requests,
    shard_fingerprint,
    shard_result_from_bytes,
    shard_result_to_bytes,
    shard_task_from_bytes,
    shard_task_to_bytes,
)

__all__ = [
    "WIRE_VERSION",
    "REQUESTS_FORMAT",
    "REPORT_FORMAT",
    "SHARD_TASK_FORMAT",
    "SHARD_RESULT_FORMAT",
    "WirePayloadError",
    "ShardTask",
    "shard_fingerprint",
    "shard_task_to_bytes",
    "shard_task_from_bytes",
    "shard_result_to_bytes",
    "shard_result_from_bytes",
    "QUERIES_FORMAT",
    "ANSWERS_FORMAT",
    "DELTA_FORMAT",
    "DELTA_VERSION",
    "FleetDelta",
    "report_fingerprint",
    "save_delta",
    "load_delta",
    "apply_delta",
    "save_requests",
    "load_requests",
    "requests_to_bytes",
    "requests_from_bytes",
    "save_report",
    "load_report",
    "save_queries",
    "load_queries",
    "save_answers",
    "load_answers",
    "payload_info",
    "JOURNAL_FORMAT",
    "JOURNAL_VERSION",
    "JOB_STATES",
    "JobRecord",
    "job_to_json",
    "job_from_json",
    "save_journal",
    "load_journal",
]
