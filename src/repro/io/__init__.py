"""Serialized wire formats for the fleet update service.

``repro.io`` is how update requests and fleet reports leave (and re-enter)
a process: a versioned NPZ+JSON payload that preserves matrices bit-exactly
along with masks, dtypes, seeds, pipeline configs and the executed shard
plan.  The same layout works in memory (``requests_to_bytes`` /
``requests_from_bytes``) — that is how the distributed executor scatters
shards to worker processes.  See :mod:`repro.io.wire` for the layout and
guarantees, and ``docs/WIRE_FORMAT.md`` for the on-disk spec.
"""

from repro.io.wire import (
    REPORT_FORMAT,
    REQUESTS_FORMAT,
    WIRE_VERSION,
    load_report,
    load_requests,
    payload_info,
    requests_from_bytes,
    requests_to_bytes,
    save_report,
    save_requests,
)

__all__ = [
    "WIRE_VERSION",
    "REQUESTS_FORMAT",
    "REPORT_FORMAT",
    "save_requests",
    "load_requests",
    "requests_to_bytes",
    "requests_from_bytes",
    "save_report",
    "load_report",
    "payload_info",
]
