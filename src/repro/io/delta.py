"""Delta wire format: ship only what changed between two fleet reports.

A steady-state daemon publishes a fresh :class:`~repro.service.types.FleetReport`
every refresh, but consecutive generations of a warm-started fleet are
mostly identical — unchanged sites converge with zero sweeps and reproduce
the previous factors bit for bit.  A ``repro-fleet-delta`` payload encodes a
*target* report against a *base* report the receiver already holds:

* **same** sites ship nothing — the receiver reuses its base report entry.
* **patch** sites ship only the rows of each per-site array that actually
  differ (plus the refreshed scalar metadata).
* **full** sites — new sites, or sites whose geometry changed — ship every
  array, exactly like the full report format.

The payload carries a SHA-256 fingerprint of the base report; applying a
delta to any other report fails loudly instead of silently reconstructing a
franken-fleet.  ``apply_delta(base, load_delta(path))`` is pinned
bit-identical to loading a full report payload of the target
(``tests/io/test_delta.py``).

Layout follows the :mod:`repro.io.wire` conventions: one compressed NPZ, a
versioned JSON ``manifest`` entry, ``siteNNNN__<name>`` arrays (full sites)
and ``siteNNNN__<name>__rows`` / ``__data`` array pairs (patched sites),
``allow_pickle=False`` throughout.  Per-site metadata and arrays are encoded
with the exact same :func:`repro.io.wire.encode_site_report` /
:func:`repro.io.wire.decode_site_report` helpers the full format uses, so
the two formats cannot drift apart field by field.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.service.shard import ShardPlan
from repro.service.types import FleetReport, UpdateReport
from repro.io.wire import (
    _get_array,
    _read_payload,
    _site_key,
    _write_payload,
    decode_site_report,
    encode_site_report,
)

__all__ = [
    "DELTA_FORMAT",
    "DELTA_VERSION",
    "FleetDelta",
    "report_fingerprint",
    "save_delta",
    "load_delta",
    "apply_delta",
]

DELTA_FORMAT = "repro-fleet-delta"
"""Format tag of a delta payload."""

DELTA_VERSION = 1
"""Delta layout version; bumped on layout changes."""

_SITE_MODES = ("same", "patch", "full")


def report_fingerprint(report: FleetReport) -> str:
    """SHA-256 fingerprint of a report's per-site content.

    Covers every site's identifier and every per-site array (name, dtype,
    shape, raw bytes) in a canonical order, so two reports fingerprint
    equal exactly when their per-site payloads are bit-identical.  Fleet
    aggregates (errors, plan, executor) stay out: they never feed the
    per-site reconstruction a delta patches.
    """
    digest = hashlib.sha256()
    for site_report in report.reports:
        _, arrays = encode_site_report(site_report)
        digest.update(site_report.site.encode("utf-8"))
        for name in sorted(arrays):
            array = np.ascontiguousarray(arrays[name])
            digest.update(name.encode("utf-8"))
            digest.update(str(array.dtype).encode("utf-8"))
            digest.update(repr(array.shape).encode("utf-8"))
            digest.update(array.tobytes())
    return digest.hexdigest()


@dataclass(frozen=True)
class FleetDelta:
    """A loaded, validated delta payload awaiting :func:`apply_delta`.

    Attributes
    ----------
    manifest:
        The decoded JSON header: base fingerprint, per-site modes and
        metadata entries, fleet-level aggregates of the target report.
    arrays:
        The shipped arrays (full-site arrays and patch row/data pairs),
        keyed exactly as stored in the payload.
    """

    manifest: dict
    arrays: Dict[str, np.ndarray]

    @property
    def base_fingerprint(self) -> str:
        """Fingerprint of the base report this delta was computed against."""
        return str(self.manifest["base_fingerprint"])

    @property
    def sites(self) -> Tuple[str, ...]:
        """Target site identifiers in report order."""
        return tuple(str(e["site"]) for e in self.manifest["sites"])

    @property
    def modes(self) -> Dict[str, str]:
        """Per-site transfer mode: ``same``, ``patch`` or ``full``."""
        return {str(e["site"]): str(e["mode"]) for e in self.manifest["sites"]}


def _diff_array(
    key: str,
    name: str,
    base: np.ndarray,
    target: np.ndarray,
    arrays: Dict[str, np.ndarray],
) -> dict:
    """Encode one array's change; returns its per-array manifest record."""
    if (
        base.shape != target.shape
        or base.dtype != target.dtype
        or target.ndim != 2
    ):
        arrays[f"{key}__{name}"] = target
        return {"mode": "full"}
    if np.array_equal(base, target):
        return {"mode": "same"}
    changed = np.flatnonzero(np.any(base != target, axis=1))
    # Row-level patching only pays while the changed rows are the minority;
    # past that the indices are overhead on top of the full data.
    if changed.size >= target.shape[0]:
        arrays[f"{key}__{name}"] = target
        return {"mode": "full"}
    arrays[f"{key}__{name}__rows"] = changed.astype(np.int64)
    arrays[f"{key}__{name}__data"] = np.ascontiguousarray(target[changed])
    return {"mode": "patch", "rows": int(changed.size)}


def save_delta(path, base: FleetReport, target: FleetReport) -> None:
    """Serialize ``target`` as a delta against ``base``.

    Sites present in both reports with bit-identical per-site content ship
    nothing; drifted sites ship row-level patches; new or reshaped sites
    ship in full.  Sites present only in ``base`` are dropped by the delta
    (the target report is authoritative about fleet membership).
    """
    base_entries = {}
    for site_report in base.reports:
        entry, arrays = encode_site_report(site_report)
        base_entries[site_report.site] = (entry, arrays)

    arrays: Dict[str, np.ndarray] = {}
    site_entries: List[dict] = []
    for index, site_report in enumerate(target.reports):
        key = _site_key(index)
        entry, target_arrays = encode_site_report(site_report)
        previous = base_entries.get(site_report.site)
        if previous is None:
            entry["mode"] = "full"
            for name, array in target_arrays.items():
                arrays[f"{key}__{name}"] = array
        else:
            base_entry, base_arrays = previous
            diffs: Dict[str, dict] = {}
            for name, array in target_arrays.items():
                if name in base_arrays:
                    diffs[name] = _diff_array(
                        key, name, base_arrays[name], array, arrays
                    )
                else:
                    arrays[f"{key}__{name}"] = array
                    diffs[name] = {"mode": "full"}
            unchanged = (
                entry == base_entry
                and set(target_arrays) == set(base_arrays)
                and all(d["mode"] == "same" for d in diffs.values())
            )
            if unchanged:
                entry["mode"] = "same"
            else:
                entry["mode"] = "patch"
                entry["array_diffs"] = diffs
        site_entries.append(entry)

    manifest = {
        "format": DELTA_FORMAT,
        "version": DELTA_VERSION,
        "wire_version": 1,
        "count": len(site_entries),
        "base_fingerprint": report_fingerprint(base),
        "base_count": len(base.reports),
        "elapsed_days": float(target.elapsed_days),
        "stacked_sweeps": int(target.stacked_sweeps),
        "errors_db": {k: float(v) for k, v in target.errors_db.items()},
        "stale_errors_db": {
            k: float(v) for k, v in target.stale_errors_db.items()
        },
        "plan": None if target.plan is None else target.plan.to_json(),
        "executor": None if target.executor is None else str(target.executor),
        "workers": int(target.workers),
        "sweeps_saved": {k: int(v) for k, v in target.sweeps_saved.items()},
        "sites": site_entries,
    }
    _write_payload(path, manifest, arrays)


def load_delta(path) -> FleetDelta:
    """Load and validate a delta payload (format tag, version, site modes).

    Raises ``ValueError`` for wrong formats, unknown versions, or manifests
    whose site entries are malformed; array completeness against the base is
    checked at :func:`apply_delta` time, when the base is in hand.
    """
    manifest, payload = _read_delta_payload(path)
    sites = manifest.get("sites")
    if not isinstance(sites, list) or manifest.get("count") != len(sites):
        raise ValueError(
            f"corrupt manifest in {path!r}: site list/count mismatch"
        )
    if not isinstance(manifest.get("base_fingerprint"), str):
        raise ValueError(f"corrupt manifest in {path!r}: no base fingerprint")
    for index, entry in enumerate(sites):
        if not isinstance(entry, dict) or "site" not in entry:
            raise ValueError(
                f"corrupt site entry {index} in {path!r}: not a site record"
            )
        if entry.get("mode") not in _SITE_MODES:
            raise ValueError(
                f"corrupt site entry {index} in {path!r}: unknown mode "
                f"{entry.get('mode')!r}"
            )
    arrays = {name: payload[name] for name in payload.files if name != "manifest"}
    return FleetDelta(manifest=manifest, arrays=arrays)


def _read_delta_payload(path):
    """Format/version gate mirroring :func:`repro.io.wire._read_payload`."""
    try:
        return _read_payload(path, DELTA_FORMAT)
    except ValueError as exc:
        # _read_payload validates against WIRE_VERSION; re-map the message
        # to the delta's own version lineage.
        if "wire version" in str(exc):
            raise ValueError(
                f"{path!r} is not a readable {DELTA_FORMAT} v{DELTA_VERSION} "
                f"payload: {exc}"
            ) from exc
        raise


def apply_delta(base: FleetReport, delta: FleetDelta) -> FleetReport:
    """Reconstruct the target report from ``base`` + ``delta``.

    Verifies the delta's base fingerprint against ``base`` first — applying
    a delta to a report other than the one it was computed against raises a
    ``ValueError`` naming both fingerprints.  The reconstruction is
    bit-identical to the full target payload.
    """
    actual = report_fingerprint(base)
    expected = delta.base_fingerprint
    if actual != expected:
        raise ValueError(
            "delta does not apply to this base report: base fingerprint is "
            f"{actual[:16]}…, delta was computed against {expected[:16]}…"
        )
    base_reports = {r.site: r for r in base.reports}
    base_arrays = {
        site: encode_site_report(report)[1]
        for site, report in base_reports.items()
    }
    manifest = delta.manifest

    reports: List[UpdateReport] = []
    for index, entry in enumerate(manifest["sites"]):
        key = _site_key(index)
        site = str(entry["site"])
        mode = entry["mode"]
        try:
            if mode == "same":
                reports.append(base_reports[site])
                continue
            if mode == "full":
                reports.append(
                    decode_site_report(
                        entry,
                        lambda name: _get_array(
                            delta.arrays, f"{key}__{name}", "<delta>"
                        ),
                    )
                )
                continue
            site_base = base_arrays[site]
            diffs = entry.get("array_diffs") or {}

            def patched(name):
                diff = diffs.get(name) or {"mode": "same"}
                if diff["mode"] == "full":
                    return _get_array(delta.arrays, f"{key}__{name}", "<delta>")
                array = site_base[name]
                if diff["mode"] == "same":
                    return array
                rows = _get_array(
                    delta.arrays, f"{key}__{name}__rows", "<delta>"
                )
                data = _get_array(
                    delta.arrays, f"{key}__{name}__data", "<delta>"
                )
                result = array.copy()
                result[rows] = data
                return result

            reports.append(decode_site_report(entry, patched))
        except (KeyError, IndexError, TypeError, ValueError) as exc:
            raise ValueError(
                f"cannot apply delta for site {index} ({site!r}): {exc}"
            ) from exc

    plan_data = manifest.get("plan")
    executor = manifest.get("executor")
    return FleetReport(
        elapsed_days=float(manifest["elapsed_days"]),
        reports=tuple(reports),
        errors_db={str(k): float(v) for k, v in manifest["errors_db"].items()},
        stale_errors_db={
            str(k): float(v)
            for k, v in manifest["stale_errors_db"].items()
        },
        stacked_sweeps=int(manifest["stacked_sweeps"]),
        plan=None if plan_data is None else ShardPlan.from_json(plan_data),
        executor=None if executor is None else str(executor),
        workers=int(manifest.get("workers") or 0),
        sweeps_saved={
            str(k): int(v)
            for k, v in (manifest.get("sweeps_saved") or {}).items()
        },
    )
