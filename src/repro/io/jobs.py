"""Job-record wire helpers for the always-on fleet daemon.

The :mod:`repro.daemon` coordinator keeps its work durable: every job it
accepts (a fleet refresh, a report publish) is recorded as a
:class:`JobRecord` in a JSON **journal** on disk, next to the job's NPZ
wire payload.  This module is the wire layer of that queue — the record
dataclass, its validated JSON encoding, and atomic journal save/load — so
that a coordinator killed mid-queue can be restarted over the same spool
directory and resume exactly where it stopped.

Guarantees mirror :mod:`repro.io.wire`:

* **Round-trip exactness** — every field of a record survives
  ``job_to_json`` → ``job_from_json`` unchanged; float timestamps ride
  JSON via ``repr`` round-tripping.
* **Validation on load** — the journal header is checked for format tag
  and version, each record re-enters through the validating
  :class:`JobRecord` constructor, and duplicate job ids are rejected, so
  a truncated or hand-edited journal fails with a clear ``ValueError``
  instead of corrupting the queue.
* **Atomic persistence** — :func:`save_journal` writes a sibling
  temporary file and ``os.replace``\\ s it over the journal, so a crash
  mid-write leaves the previous journal intact (the crash-recovery
  invariant the daemon's restart path leans on).
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, fields, replace
from pathlib import Path
from typing import List, Optional, Sequence

__all__ = [
    "JOURNAL_FORMAT",
    "JOURNAL_VERSION",
    "JOB_STATES",
    "JOB_QUEUED",
    "JOB_RUNNING",
    "JOB_DONE",
    "JOB_FAILED",
    "JOB_CANCELLED",
    "JobRecord",
    "job_to_json",
    "job_from_json",
    "save_journal",
    "load_journal",
]

JOURNAL_FORMAT = "repro-daemon-journal"
"""Format tag of a daemon job journal."""

JOURNAL_VERSION = 1
"""Journal schema version; bumped on layout changes."""

JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"
JOB_CANCELLED = "cancelled"

JOB_STATES = (JOB_QUEUED, JOB_RUNNING, JOB_DONE, JOB_FAILED, JOB_CANCELLED)
"""Every legal job state.  ``queued`` and ``running`` are the *pending*
states a restarted coordinator resumes; the other three are terminal."""


@dataclass
class JobRecord:
    """One durable unit of daemon work.

    Attributes
    ----------
    id:
        Stable identifier, unique within a journal.
    kind:
        What the job does — ``"refresh_fleet"`` (run a request payload
        through the update service) or ``"serve_publish"`` (publish a
        report payload into the serving engine).  The journal itself is
        kind-agnostic; the coordinator maps kinds to runners.
    priority:
        Higher runs first; ties break FIFO on ``sequence``.
    state:
        One of :data:`JOB_STATES`.
    sequence:
        Monotonic submission counter — the FIFO-within-priority key.
    attempts, max_attempts:
        Executions started so far, and the bound after which a failing
        job goes terminally ``failed`` instead of re-queueing.
    backoff_seconds:
        Base of the exponential retry delay: attempt ``k`` re-queues with
        ``not_before = now + backoff_seconds * 2**(k-1)``.
    not_before:
        Earliest wall-clock time (``time.time()`` epoch seconds) the job
        may next be claimed; 0 means immediately.
    payload:
        The job's input wire payload: a path relative to the spool
        directory (uploaded payloads) or an absolute path (referenced
        payloads).
    result:
        Spool-relative path of the result payload once ``done``.
    error:
        Message of the most recent failure (kept across retries until a
        later attempt succeeds).
    label:
        Free-form caller annotation, also used as the published
        generation label.
    max_stack_bytes:
        Per-job shard budget: ``None`` uses the service default, 0
        disables sharding, positive values bound each shard's stack.
    workers:
        Per-job worker budget on the coordinator's shared process pool;
        0 solves serially in the job's scheduler thread.
    generation:
        Ordinal of the serving-engine generation this job published,
        once it has.
    submitted_at, started_at, finished_at:
        Epoch-second timestamps of the job's lifecycle.
    """

    id: str
    kind: str
    priority: int = 0
    state: str = JOB_QUEUED
    sequence: int = 0
    attempts: int = 0
    max_attempts: int = 3
    backoff_seconds: float = 0.5
    not_before: float = 0.0
    payload: str = ""
    result: Optional[str] = None
    error: Optional[str] = None
    label: str = ""
    max_stack_bytes: Optional[int] = None
    workers: int = 0
    generation: Optional[int] = None
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.id:
            raise ValueError("job id must be a non-empty identifier")
        if not self.kind:
            raise ValueError(f"job {self.id!r} has an empty kind")
        if self.state not in JOB_STATES:
            raise ValueError(
                f"job {self.id!r} has unknown state {self.state!r}; "
                f"expected one of {JOB_STATES}"
            )
        if self.max_attempts < 1:
            raise ValueError(
                f"job {self.id!r}: max_attempts must be at least 1, "
                f"got {self.max_attempts}"
            )
        if self.attempts < 0:
            raise ValueError(f"job {self.id!r}: attempts must be non-negative")
        if self.backoff_seconds < 0:
            raise ValueError(
                f"job {self.id!r}: backoff_seconds must be non-negative"
            )
        if self.workers < 0:
            raise ValueError(f"job {self.id!r}: workers must be non-negative")
        if self.max_stack_bytes is not None and self.max_stack_bytes < 0:
            raise ValueError(
                f"job {self.id!r}: max_stack_bytes must be non-negative or None"
            )

    @property
    def is_pending(self) -> bool:
        """Queued or running — the states a restart resumes."""
        return self.state in (JOB_QUEUED, JOB_RUNNING)

    @property
    def is_terminal(self) -> bool:
        """Done, failed or cancelled — nothing left to execute."""
        return not self.is_pending


def job_to_json(job: JobRecord) -> dict:
    """Plain-JSON representation of one record (field for field)."""
    return {f.name: getattr(job, f.name) for f in fields(job)}


def job_from_json(data: dict) -> JobRecord:
    """Rebuild a validated record; raises ``ValueError`` on corrupt input."""
    if not isinstance(data, dict):
        raise ValueError(
            f"corrupt job record: expected a JSON object, got {type(data).__name__}"
        )
    known = {f.name for f in fields(JobRecord)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ValueError(f"corrupt job record: unknown fields {unknown}")
    try:
        return JobRecord(**data)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"corrupt job record: {exc}") from exc


def save_journal(path, jobs: Sequence[JobRecord]) -> None:
    """Atomically persist the queue's records (in sequence order).

    The journal is written to a temporary sibling and ``os.replace``\\ d
    into place, so readers never observe a half-written file and a crash
    mid-save keeps the previous journal.
    """
    path = Path(path)
    payload = {
        "format": JOURNAL_FORMAT,
        "version": JOURNAL_VERSION,
        "jobs": [job_to_json(job) for job in sorted(jobs, key=lambda j: j.sequence)],
    }
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, indent=1)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def load_journal(path) -> List[JobRecord]:
    """Load and validate a journal; raises ``ValueError`` when corrupt."""
    path = Path(path)
    try:
        raw = path.read_text()
    except OSError as exc:
        raise ValueError(f"cannot read job journal {str(path)!r}: {exc}") from exc
    try:
        data = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ValueError(f"corrupt job journal {str(path)!r}: {exc}") from exc
    if not isinstance(data, dict):
        raise ValueError(
            f"corrupt job journal {str(path)!r}: expected a JSON object"
        )
    if data.get("format") != JOURNAL_FORMAT:
        raise ValueError(
            f"{str(path)!r} holds format {data.get('format')!r}, "
            f"expected {JOURNAL_FORMAT!r}"
        )
    if data.get("version") != JOURNAL_VERSION:
        raise ValueError(
            f"{str(path)!r} is journal version {data.get('version')!r}; "
            f"this build reads version {JOURNAL_VERSION}"
        )
    entries = data.get("jobs")
    if not isinstance(entries, list):
        raise ValueError(f"corrupt job journal {str(path)!r}: no job list")
    jobs = [job_from_json(entry) for entry in entries]
    seen = set()
    for job in jobs:
        if job.id in seen:
            raise ValueError(
                f"corrupt job journal {str(path)!r}: duplicate job id {job.id!r}"
            )
        seen.add(job.id)
    return jobs


# Re-exported convenience: a fresh copy of a record (queues hand copies
# out so callers cannot mutate journaled state behind the queue's back).
def copy_record(job: JobRecord) -> JobRecord:
    """An independent copy of ``job`` (records are mutable dataclasses)."""
    return replace(job)
