"""Wire payloads for query workloads and their answers.

Extends the NPZ+JSON layout of :mod:`repro.io.wire` to the read path: a
**queries payload** carries batches of online RSS measurements (plus
optional ground truth and per-site location tables) and an **answers
payload** carries the engine's responses (grid indices, coordinates and the
serving bookkeeping).  ``query export`` writes query payloads, ``query run``
consumes them against a report payload and writes answers, and any external
producer emitting the same layout can drive the serving engine directly.

The same guarantees as the fleet payloads apply: bit-exact array
round-trips, manifest validation on load, ``allow_pickle=False``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.io.wire import (
    WIRE_VERSION,
    _get_array,
    _read_payload,
    _write_payload,
)
from repro.query.types import QueryAnswer, QueryBatch

__all__ = [
    "QUERIES_FORMAT",
    "ANSWERS_FORMAT",
    "save_queries",
    "load_queries",
    "save_answers",
    "load_answers",
]

QUERIES_FORMAT = "repro-query-batch"
"""Format tag of a query-workload payload."""

ANSWERS_FORMAT = "repro-query-answers"
"""Format tag of an answers payload."""


def _batch_key(index: int) -> str:
    return f"batch{index:04d}"


# -------------------------------------------------------------------- queries
def save_queries(path, batches: Sequence[QueryBatch]) -> None:
    """Serialize a query workload (one batch per site visit) to one NPZ.

    Measurements, ground-truth indices and location tables ride NPZ
    bit-exactly; the manifest records per-batch metadata so a corrupt or
    truncated payload fails validation on load.
    """
    batches = list(batches)
    if not batches:
        raise ValueError("cannot serialize an empty query workload")
    arrays: Dict[str, np.ndarray] = {}
    entries: List[dict] = []
    for index, batch in enumerate(batches):
        if not isinstance(batch, QueryBatch):
            raise TypeError("batches must be QueryBatch instances")
        key = _batch_key(index)
        arrays[f"{key}__measurements"] = batch.measurements
        entry = {
            "site": batch.site,
            "count": int(batch.count),
            "has_truth": batch.true_indices is not None,
            "has_locations": batch.locations is not None,
        }
        if batch.true_indices is not None:
            arrays[f"{key}__true_indices"] = batch.true_indices.astype(np.int64)
        if batch.locations is not None:
            arrays[f"{key}__locations"] = batch.locations
        entries.append(entry)
    manifest = {
        "format": QUERIES_FORMAT,
        "version": WIRE_VERSION,
        "count": len(batches),
        "batches": entries,
    }
    _write_payload(path, manifest, arrays)


def load_queries(path) -> List[QueryBatch]:
    """Load a queries payload back into validated :class:`QueryBatch` objects."""
    manifest, payload = _read_payload(path, QUERIES_FORMAT)
    entries = manifest.get("batches")
    if not isinstance(entries, list) or manifest.get("count") != len(entries):
        raise ValueError(f"corrupt manifest in {path!r}: batch list/count mismatch")
    batches: List[QueryBatch] = []
    for index, entry in enumerate(entries):
        key = _batch_key(index)
        try:
            batch = QueryBatch(
                site=str(entry["site"]),
                measurements=_get_array(payload, f"{key}__measurements", path),
                true_indices=_get_array(payload, f"{key}__true_indices", path)
                if entry.get("has_truth")
                else None,
                locations=_get_array(payload, f"{key}__locations", path)
                if entry.get("has_locations")
                else None,
            )
            if batch.count != int(entry["count"]):
                raise ValueError(
                    f"batch carries {batch.count} queries, manifest records "
                    f"{entry['count']}"
                )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(
                f"corrupt query batch {index} in {path!r}: {exc}"
            ) from exc
        batches.append(batch)
    return batches


# -------------------------------------------------------------------- answers
def save_answers(path, answers: Sequence[QueryAnswer]) -> None:
    """Serialize the engine's answers (one per query batch) to one NPZ."""
    answers = list(answers)
    if not answers:
        raise ValueError("cannot serialize an empty answer set")
    arrays: Dict[str, np.ndarray] = {}
    entries: List[dict] = []
    for index, answer in enumerate(answers):
        if not isinstance(answer, QueryAnswer):
            raise TypeError("answers must be QueryAnswer instances")
        key = _batch_key(index)
        arrays[f"{key}__indices"] = np.asarray(answer.indices, dtype=np.int64)
        entry = {
            "site": answer.site,
            "matcher": answer.matcher,
            "backend": answer.backend,
            "generation": int(answer.generation),
            "count": int(answer.count),
            "cache_hits": int(answer.cache_hits),
            "has_points": answer.points is not None,
        }
        if answer.points is not None:
            arrays[f"{key}__points"] = answer.points
        entries.append(entry)
    manifest = {
        "format": ANSWERS_FORMAT,
        "version": WIRE_VERSION,
        "count": len(answers),
        "answers": entries,
    }
    _write_payload(path, manifest, arrays)


def load_answers(path) -> List[QueryAnswer]:
    """Load an answers payload back into :class:`QueryAnswer` objects."""
    manifest, payload = _read_payload(path, ANSWERS_FORMAT)
    entries = manifest.get("answers")
    if not isinstance(entries, list) or manifest.get("count") != len(entries):
        raise ValueError(f"corrupt manifest in {path!r}: answer list/count mismatch")
    answers: List[QueryAnswer] = []
    for index, entry in enumerate(entries):
        key = _batch_key(index)
        try:
            indices = np.asarray(
                _get_array(payload, f"{key}__indices", path), dtype=int
            )
            points: Optional[np.ndarray] = None
            if entry.get("has_points"):
                points = np.asarray(
                    _get_array(payload, f"{key}__points", path), dtype=float
                )
                if points.shape != (indices.size, 2):
                    raise ValueError(
                        f"points shape {points.shape} does not match "
                        f"{indices.size} indices"
                    )
            if indices.size != int(entry["count"]):
                raise ValueError(
                    f"answer carries {indices.size} indices, manifest records "
                    f"{entry['count']}"
                )
            answers.append(
                QueryAnswer(
                    site=str(entry["site"]),
                    matcher=str(entry["matcher"]),
                    backend=str(entry["backend"]),
                    generation=int(entry["generation"]),
                    indices=indices,
                    points=points,
                    cache_hits=int(entry.get("cache_hits") or 0),
                )
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(
                f"corrupt answer {index} in {path!r}: {exc}"
            ) from exc
    return answers
