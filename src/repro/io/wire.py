"""NPZ+JSON wire format for fleet requests and reports.

The fleet service's in-memory request/response model
(:class:`~repro.service.types.UpdateRequest` /
:class:`~repro.service.types.FleetReport`) becomes portable here: a payload
is a single compressed NPZ whose ``manifest`` entry holds a versioned JSON
header (format tag, per-site metadata, configs, seeds, shard plan) and whose
remaining entries hold the float64 matrices bit-exactly.  ``fleet export``
writes request payloads, ``fleet run --in/--out`` consumes and produces
them, and any external producer that emits the same layout can feed the
service without touching the simulator.

Guarantees:

* **Round-trip exactness** — arrays ride NPZ untouched (dtype, shape,
  values); scalar floats ride JSON via ``repr`` round-tripping; configs are
  encoded field by field and rebuilt through their validating constructors.
* **Validation on load** — the manifest is checked for format tag, version
  and per-site completeness; matrices re-enter through
  :mod:`repro.utils.validation` (finite, 2-D, shape-consistent) inside the
  ``UpdateRequest`` / ``FingerprintMatrix`` constructors, so corrupt or
  truncated payloads fail with a clear ``ValueError`` instead of exploding
  mid-solve.
* **No pickling** — payloads load with ``allow_pickle=False``; everything is
  plain arrays plus JSON.
"""

from __future__ import annotations

import hashlib
import io
import json
import zipfile
import zlib
from dataclasses import dataclass, fields
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.lrr import LRRConfig, LRRResult
from repro.core.mic import MICResult
from repro.core.self_augmented import SelfAugmentedConfig, SelfAugmentedResult
from repro.core.updater import UpdaterConfig, UpdateResult
from repro.fingerprint.matrix import FingerprintMatrix
from repro.service.shard import ShardPlan
from repro.service.types import (
    FleetReport,
    UpdateReport,
    UpdateRequest,
    WarmFactors,
)

__all__ = [
    "WIRE_VERSION",
    "REQUESTS_FORMAT",
    "REPORT_FORMAT",
    "SHARD_TASK_FORMAT",
    "SHARD_RESULT_FORMAT",
    "WirePayloadError",
    "ShardTask",
    "save_requests",
    "load_requests",
    "requests_to_bytes",
    "requests_from_bytes",
    "save_report",
    "load_report",
    "payload_info",
    "shard_fingerprint",
    "shard_task_to_bytes",
    "shard_task_from_bytes",
    "shard_result_to_bytes",
    "shard_result_from_bytes",
]

WIRE_VERSION = 1
"""Version stamped into every payload header; bumped on layout changes."""

REQUESTS_FORMAT = "repro-fleet-requests"
"""Format tag of a request payload."""

REPORT_FORMAT = "repro-fleet-report"
"""Format tag of a report payload."""

SHARD_TASK_FORMAT = "repro-shard-task"
"""Format tag of a remote shard-task payload (scatter direction)."""

SHARD_RESULT_FORMAT = "repro-shard-result"
"""Format tag of a remote shard-result payload (gather direction)."""


class WirePayloadError(ValueError):
    """A wire payload failed validation (corrupt, truncated, wrong format).

    Subclasses ``ValueError`` so every existing ``except ValueError`` path
    keeps working; the distinct type exists so transport code (the remote
    executor's retry loop, the worker server's 400 path) can tell "this
    payload is bad" apart from any other ``ValueError`` — and so the wire
    fuzz suite can assert corruption *always* surfaces as this one typed
    error instead of a silent wrong result or a stray exception.
    """


# --------------------------------------------------------------------- common
def _site_key(index: int) -> str:
    return f"site{index:04d}"


def _dataclass_scalars(obj) -> dict:
    """Field → value mapping of a flat, JSON-scalar dataclass config."""
    return {f.name: getattr(obj, f.name) for f in fields(obj)}


def _encode_config(config: UpdaterConfig) -> dict:
    return {
        "reference_count": config.reference_count,
        "mic_strategy": config.mic_strategy,
        "include_reference_in_mask": config.include_reference_in_mask,
        "solver_backend": config.solver_backend,
        "lrr": _dataclass_scalars(config.lrr),
        "solver": _dataclass_scalars(config.solver),
    }


def _decode_config(data: dict) -> UpdaterConfig:
    try:
        return UpdaterConfig(
            reference_count=data["reference_count"],
            mic_strategy=data["mic_strategy"],
            include_reference_in_mask=data["include_reference_in_mask"],
            solver_backend=data["solver_backend"],
            lrr=LRRConfig(**data["lrr"]),
            solver=SelfAugmentedConfig(**data["solver"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"corrupt updater config in payload: {exc}") from exc


def _encode_seed(rng, site: str):
    """Only reproducible seeds may travel: ``None`` or integers."""
    if rng is None:
        return None
    if isinstance(rng, (int, np.integer)):
        return int(rng)
    raise ValueError(
        f"site {site!r} carries a live random generator; wire payloads need a "
        "reproducible integer seed (or None)"
    )


def _write_payload(path, manifest: dict, arrays: Dict[str, np.ndarray]) -> None:
    np.savez_compressed(
        path, manifest=np.asarray(json.dumps(manifest)), **arrays
    )


def _read_manifest(path) -> Tuple[dict, "np.lib.npyio.NpzFile"]:
    """Open any wire payload and decode its manifest (no format check)."""
    try:
        payload = np.load(path, allow_pickle=False)
    except (OSError, ValueError, EOFError, zipfile.BadZipFile) as exc:
        raise WirePayloadError(
            f"cannot read wire payload {path!r}: {exc}"
        ) from exc
    if "manifest" not in payload:
        raise WirePayloadError(
            f"{path!r} is not a fleet wire payload (no manifest entry)"
        )
    try:
        manifest = json.loads(str(payload["manifest"][()]))
    except (json.JSONDecodeError, TypeError) as exc:
        raise WirePayloadError(f"corrupt manifest in {path!r}: {exc}") from exc
    if not isinstance(manifest, dict):
        raise WirePayloadError(
            f"corrupt manifest in {path!r}: expected a JSON object"
        )
    return manifest, payload


def _read_payload(path, expected_format: str) -> Tuple[dict, "np.lib.npyio.NpzFile"]:
    manifest, payload = _read_manifest(path)
    got_format = manifest.get("format")
    if got_format != expected_format:
        raise WirePayloadError(
            f"{path!r} holds format {got_format!r}, expected {expected_format!r}"
        )
    version = manifest.get("version")
    if version != WIRE_VERSION:
        raise WirePayloadError(
            f"{path!r} is wire version {version!r}; this build reads version "
            f"{WIRE_VERSION}"
        )
    return manifest, payload


def _get_array(payload, key: str, path) -> np.ndarray:
    try:
        return payload[key]
    except KeyError:
        raise WirePayloadError(
            f"payload {path!r} is missing array {key!r}"
        ) from None


def payload_info(path) -> dict:
    """Header metadata of any wire payload: format, version, count, stamp."""
    manifest, _ = _read_manifest(path)
    return {
        "format": manifest.get("format"),
        "version": manifest.get("version"),
        "count": manifest.get("count"),
        "elapsed_days": manifest.get("elapsed_days"),
    }


# ------------------------------------------------------------------- requests
def save_requests(
    path,
    requests: Sequence[UpdateRequest],
    elapsed_days: Optional[float] = None,
) -> None:
    """Serialize a fleet of update requests to one NPZ payload.

    Parameters
    ----------
    path:
        Destination file (conventionally ``*.npz``).
    requests:
        The fleet, one request per site.  Requests must carry reproducible
        integer seeds (or ``None``); live generators are rejected.
    elapsed_days:
        Optional refresh stamp recorded in the header, so ``fleet run`` can
        label the resulting report.
    """
    requests = list(requests)
    if not requests:
        raise ValueError("cannot serialize an empty fleet")
    arrays: Dict[str, np.ndarray] = {}
    site_entries: List[dict] = []
    for index, request in enumerate(requests):
        key = _site_key(index)
        arrays[f"{key}__baseline_values"] = request.baseline.values
        arrays[f"{key}__baseline_mask"] = request.baseline.index_matrix()
        arrays[f"{key}__no_decrease_matrix"] = request.no_decrease_matrix
        arrays[f"{key}__no_decrease_mask"] = request.no_decrease_mask
        arrays[f"{key}__reference_matrix"] = request.reference_matrix
        entry = {
            "site": request.site,
            "locations_per_link": int(request.baseline.locations_per_link),
            "rng": _encode_seed(request.rng, request.site),
            "config": _encode_config(request.config),
            "reference_indices": None
            if request.reference_indices is None
            else [int(i) for i in request.reference_indices],
            "dtypes": {
                "baseline_values": str(request.baseline.values.dtype),
                "no_decrease_matrix": str(request.no_decrease_matrix.dtype),
                "reference_matrix": str(request.reference_matrix.dtype),
            },
        }
        if request.warm_start is not None:
            # Optional warm-start factors (absent pre-incremental payloads;
            # read with .get, so wire version 1 stays backward compatible).
            arrays[f"{key}__warm_left"] = request.warm_start.left
            arrays[f"{key}__warm_right"] = request.warm_start.right
            entry["warm_start"] = {
                "objective": None
                if request.warm_start.objective is None
                else float(request.warm_start.objective),
            }
        if request.correlation is not None:
            mic, lrr = request.correlation
            arrays[f"{key}__mic_matrix"] = mic.mic_matrix
            arrays[f"{key}__lrr_correlation"] = lrr.correlation
            arrays[f"{key}__lrr_error"] = lrr.error
            entry["correlation"] = {
                "mic": {
                    "indices": [int(i) for i in mic.indices],
                    "rank": int(mic.rank),
                    "strategy": mic.strategy,
                },
                "lrr": {
                    "iterations": int(lrr.iterations),
                    "converged": bool(lrr.converged),
                    "residual": float(lrr.residual),
                },
            }
        else:
            entry["correlation"] = None
        site_entries.append(entry)

    manifest = {
        "format": REQUESTS_FORMAT,
        "version": WIRE_VERSION,
        "count": len(requests),
        "elapsed_days": None if elapsed_days is None else float(elapsed_days),
        "sites": site_entries,
    }
    _write_payload(path, manifest, arrays)


def load_requests(path) -> List[UpdateRequest]:
    """Load a request payload back into validated :class:`UpdateRequest` objects.

    Raises ``ValueError`` with a clear message when the payload is not a
    request payload, has a different wire version, or is corrupt (missing
    arrays, inconsistent shapes, non-finite values, broken configs).
    """
    manifest, payload = _read_payload(path, REQUESTS_FORMAT)
    sites = manifest.get("sites")
    if not isinstance(sites, list) or manifest.get("count") != len(sites):
        raise ValueError(f"corrupt manifest in {path!r}: site list/count mismatch")

    requests: List[UpdateRequest] = []
    for index, entry in enumerate(sites):
        key = _site_key(index)
        try:
            site = str(entry["site"])
            locations_per_link = int(entry["locations_per_link"])
            rng = entry["rng"]
            config_data = entry["config"]
            reference_indices = entry["reference_indices"]
            correlation_meta = entry.get("correlation")
            warm_meta = entry.get("warm_start")
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(
                f"corrupt site entry {index} in {path!r}: {exc}"
            ) from exc
        try:
            # Cross-check the dtypes the writer recorded against what the
            # arrays actually carry — a mismatch means the payload was
            # rewritten or truncated after export.
            for field_name, recorded in (entry.get("dtypes") or {}).items():
                array = _get_array(payload, f"{key}__{field_name}", path)
                if str(array.dtype) != recorded:
                    raise ValueError(
                        f"array {field_name!r} of site {index} has dtype "
                        f"{array.dtype}, manifest records {recorded!r}"
                    )
            baseline = FingerprintMatrix(
                values=_get_array(payload, f"{key}__baseline_values", path),
                locations_per_link=locations_per_link,
                no_decrease_mask=_get_array(payload, f"{key}__baseline_mask", path),
            )
            correlation = None
            if correlation_meta is not None:
                mic_meta = correlation_meta["mic"]
                lrr_meta = correlation_meta["lrr"]
                correlation = (
                    MICResult(
                        indices=tuple(int(i) for i in mic_meta["indices"]),
                        rank=int(mic_meta["rank"]),
                        mic_matrix=_get_array(payload, f"{key}__mic_matrix", path),
                        strategy=str(mic_meta["strategy"]),
                    ),
                    LRRResult(
                        correlation=_get_array(
                            payload, f"{key}__lrr_correlation", path
                        ),
                        error=_get_array(payload, f"{key}__lrr_error", path),
                        iterations=int(lrr_meta["iterations"]),
                        converged=bool(lrr_meta["converged"]),
                        residual=float(lrr_meta["residual"]),
                    ),
                )
            warm = None
            if warm_meta is not None:
                warm = WarmFactors(
                    left=_get_array(payload, f"{key}__warm_left", path),
                    right=_get_array(payload, f"{key}__warm_right", path),
                    objective=warm_meta.get("objective"),
                )
            request = UpdateRequest(
                site=site,
                baseline=baseline,
                no_decrease_matrix=_get_array(
                    payload, f"{key}__no_decrease_matrix", path
                ),
                no_decrease_mask=_get_array(payload, f"{key}__no_decrease_mask", path),
                reference_matrix=_get_array(
                    payload, f"{key}__reference_matrix", path
                ),
                reference_indices=None
                if reference_indices is None
                else tuple(int(i) for i in reference_indices),
                config=_decode_config(config_data),
                rng=None if rng is None else int(rng),
                correlation=correlation,
                warm_start=warm,
            )
        except (KeyError, TypeError) as exc:
            raise ValueError(
                f"corrupt site {index} ({entry.get('site')!r}) in {path!r}: {exc}"
            ) from exc
        requests.append(request)
    return requests


def requests_to_bytes(
    requests: Sequence[UpdateRequest],
    elapsed_days: Optional[float] = None,
) -> bytes:
    """Serialize requests to an in-memory wire payload (no file needed).

    The scatter half of distributed shard execution: the coordinator encodes
    each shard's member requests with the exact same layout ``fleet export``
    writes to disk, and ships the bytes to a worker process.  The same
    seed discipline applies — live generators are rejected.
    """
    buffer = io.BytesIO()
    save_requests(buffer, requests, elapsed_days=elapsed_days)
    return buffer.getvalue()


def requests_from_bytes(data: bytes) -> List[UpdateRequest]:
    """Rehydrate a :func:`requests_to_bytes` payload into validated requests.

    Workers run the identical validation path as :func:`load_requests` on a
    file — format tag, wire version, dtype cross-checks, matrix validation —
    so a corrupt scatter payload fails with a clear ``ValueError`` instead
    of a divergent solve.
    """
    return load_requests(io.BytesIO(data))


# ------------------------------------------------------- remote shard payloads
#
# The remote scatter-gather transport (repro.service.remote) ships shards to
# workers on other machines, so both directions get their own framed payload:
#
# * a **shard task** wraps one shard's `repro-fleet-requests` payload bytes
#   verbatim (workers rehydrate with the exact `requests_from_bytes` path the
#   process-pool executor uses) plus the shard's plan index, the dispatch
#   attempt number, and a SHA-256 fingerprint of (shard index, request bytes);
# * a **shard result** carries the solved `ShardResult` — per-member factors
#   and estimates bit-exactly as NPZ arrays — echoing the task fingerprint so
#   the gather side can match results to tasks, reject cross-wired responses,
#   and deduplicate duplicated completions deterministically.
#
# The fingerprint deliberately excludes the attempt number: every retry and
# straggler re-dispatch of one shard fingerprints identically, which is what
# makes completions idempotent.  Decoders raise `WirePayloadError` on any
# corruption (truncation, bit flips, wrong tags, fingerprint mismatch) —
# pinned by tests/io/test_wire_fuzz.py.

#: Exceptions any stage of payload decoding can raise on corrupt bytes;
#: decoders translate all of them into :class:`WirePayloadError`.
_DECODE_ERRORS = (
    ValueError,
    KeyError,
    TypeError,
    OSError,
    EOFError,  # np.load on payloads truncated to (nearly) nothing
    zipfile.BadZipFile,
    zlib.error,
)


def shard_fingerprint(requests_payload: bytes, shard_index: int) -> str:
    """SHA-256 identity of one scattered shard: its index + request bytes.

    Stable across dispatch attempts, so a shard completed twice (straggler
    re-dispatch, deliberate duplication) yields byte-identical fingerprints
    and the gather side can deduplicate deterministically.
    """
    digest = hashlib.sha256()
    digest.update(f"repro-shard:{int(shard_index)}:".encode("ascii"))
    digest.update(requests_payload)
    return digest.hexdigest()


@dataclass(frozen=True)
class ShardTask:
    """A decoded shard-task payload, as a worker sees it.

    Attributes
    ----------
    shard_index:
        The shard's index in the coordinator's executed plan.
    attempt:
        0-based dispatch attempt this payload belongs to (bookkeeping only;
        it does not feed the fingerprint).
    fingerprint:
        :func:`shard_fingerprint` of ``(shard_index, requests_payload)``,
        verified on decode.
    requests_payload:
        The member requests as verbatim ``repro-fleet-requests`` bytes;
        ``requests()`` rehydrates them through the standard validation path.
    """

    shard_index: int
    attempt: int
    fingerprint: str
    requests_payload: bytes

    def requests(self) -> List[UpdateRequest]:
        """Rehydrate the member requests (full wire validation applies)."""
        return requests_from_bytes(self.requests_payload)


def shard_task_to_bytes(
    requests_payload: bytes, shard_index: int, attempt: int = 0
) -> bytes:
    """Frame one shard's request bytes as a ``repro-shard-task`` payload."""
    if not isinstance(requests_payload, (bytes, bytearray)):
        raise TypeError(
            f"requests_payload must be bytes, got {type(requests_payload).__name__}"
        )
    manifest = {
        "format": SHARD_TASK_FORMAT,
        "version": WIRE_VERSION,
        "shard_index": int(shard_index),
        "attempt": int(attempt),
        "fingerprint": shard_fingerprint(requests_payload, shard_index),
    }
    buffer = io.BytesIO()
    _write_payload(
        buffer,
        manifest,
        {"requests_payload": np.frombuffer(bytes(requests_payload), dtype=np.uint8)},
    )
    return buffer.getvalue()


def shard_task_from_bytes(data: bytes) -> ShardTask:
    """Decode and validate a ``repro-shard-task`` payload.

    Raises :class:`WirePayloadError` when the payload is truncated, bit-
    flipped, mislabeled, or its embedded request bytes no longer hash to the
    recorded fingerprint.
    """
    try:
        manifest, payload = _read_payload(io.BytesIO(data), SHARD_TASK_FORMAT)
        shard_index = int(manifest["shard_index"])
        attempt = int(manifest["attempt"])
        recorded = str(manifest["fingerprint"])
        embedded = _get_array(payload, "requests_payload", "<shard task>")
        if embedded.dtype != np.uint8 or embedded.ndim != 1:
            raise WirePayloadError(
                f"shard task carries a {embedded.dtype}/{embedded.ndim}-d "
                "requests_payload entry; expected 1-d uint8 bytes"
            )
        requests_payload = embedded.tobytes()
    except WirePayloadError:
        raise
    except _DECODE_ERRORS as exc:
        raise WirePayloadError(f"corrupt shard task payload: {exc}") from exc
    actual = shard_fingerprint(requests_payload, shard_index)
    if actual != recorded:
        raise WirePayloadError(
            f"shard task fingerprint mismatch: payload records {recorded}, "
            f"embedded request bytes hash to {actual} — corrupt in transit"
        )
    return ShardTask(
        shard_index=shard_index,
        attempt=attempt,
        fingerprint=recorded,
        requests_payload=requests_payload,
    )


def shard_result_to_bytes(result, fingerprint: str, shard_index: int) -> bytes:
    """Serialize one solved :class:`~repro.core.stacked.ShardResult`.

    ``fingerprint`` is echoed from the task so the gather side can pair the
    completion with its dispatch; the member results' estimates and factors
    ride as NPZ arrays bit-exactly.
    """
    arrays: Dict[str, np.ndarray] = {}
    members: List[dict] = []
    for position, member in enumerate(result.results):
        key = f"res{position:04d}"
        arrays[f"{key}__estimate"] = member.estimate
        arrays[f"{key}__left"] = member.left
        arrays[f"{key}__right"] = member.right
        members.append(
            {
                "objective": float(member.objective),
                "iterations": int(member.iterations),
                "converged": bool(member.converged),
                "reference_weight": float(member.reference_weight),
                "structure_weight": float(member.structure_weight),
            }
        )
    manifest = {
        "format": SHARD_RESULT_FORMAT,
        "version": WIRE_VERSION,
        "fingerprint": str(fingerprint),
        "shard_index": int(shard_index),
        "sweeps": int(result.sweeps),
        "fallback": bool(result.fallback),
        "count": len(members),
        "results": members,
    }
    buffer = io.BytesIO()
    _write_payload(buffer, manifest, arrays)
    return buffer.getvalue()


def shard_result_from_bytes(data: bytes):
    """Decode a ``repro-shard-result`` payload back into gather-side values.

    Returns ``(shard_result, fingerprint, shard_index)`` where
    ``shard_result`` is a :class:`~repro.core.stacked.ShardResult`.  Raises
    :class:`WirePayloadError` on any corruption: bad zip structure, CRC
    failures on bit-flipped arrays, missing entries, shape-inconsistent
    factors, or non-finite values.
    """
    from repro.core.stacked import ShardResult

    try:
        manifest, payload = _read_payload(io.BytesIO(data), SHARD_RESULT_FORMAT)
        fingerprint = str(manifest["fingerprint"])
        shard_index = int(manifest["shard_index"])
        sweeps = int(manifest["sweeps"])
        fallback = bool(manifest["fallback"])
        members = manifest["results"]
        if not isinstance(members, list) or manifest["count"] != len(members):
            raise WirePayloadError(
                "corrupt shard result: member list/count mismatch"
            )
        results = []
        for position, entry in enumerate(members):
            key = f"res{position:04d}"
            estimate = _get_array(payload, f"{key}__estimate", "<shard result>")
            left = _get_array(payload, f"{key}__left", "<shard result>")
            right = _get_array(payload, f"{key}__right", "<shard result>")
            if estimate.ndim != 2 or left.ndim != 2 or right.ndim != 2:
                raise WirePayloadError(
                    f"shard result member {position} carries non-2-d arrays"
                )
            m, n = estimate.shape
            rank = left.shape[1]
            if left.shape != (m, rank) or right.shape != (n, rank):
                raise WirePayloadError(
                    f"shard result member {position} factor shapes "
                    f"{left.shape}/{right.shape} do not fit estimate {estimate.shape}"
                )
            if not (
                np.isfinite(estimate).all()
                and np.isfinite(left).all()
                and np.isfinite(right).all()
            ):
                raise WirePayloadError(
                    f"shard result member {position} carries non-finite values"
                )
            results.append(
                SelfAugmentedResult(
                    estimate=estimate,
                    left=left,
                    right=right,
                    objective=float(entry["objective"]),
                    iterations=int(entry["iterations"]),
                    converged=bool(entry["converged"]),
                    reference_weight=float(entry["reference_weight"]),
                    structure_weight=float(entry["structure_weight"]),
                )
            )
    except WirePayloadError:
        raise
    except _DECODE_ERRORS as exc:
        raise WirePayloadError(f"corrupt shard result payload: {exc}") from exc
    return (
        ShardResult(results=tuple(results), sweeps=sweeps, fallback=fallback),
        fingerprint,
        shard_index,
    )


# -------------------------------------------------------------------- reports
def encode_site_report(site_report: UpdateReport) -> Tuple[dict, Dict[str, np.ndarray]]:
    """One site report as ``(manifest entry, array-name → array)``.

    Array names are unprefixed (``estimate``, ``left``, ...); the caller
    namespaces them per payload layout.  Shared between the full report
    writer (:func:`save_report`) and the delta writer
    (:func:`repro.io.delta.save_delta`), so both formats stay field-for-field
    identical by construction.
    """
    result = site_report.result
    solver = result.solver
    matrix = result.matrix
    arrays: Dict[str, np.ndarray] = {
        "estimate": matrix.values,
        "matrix_mask": matrix.index_matrix(),
        "left": solver.left,
        "right": solver.right,
        "mic_matrix": result.mic.mic_matrix,
    }
    entry = {
        "site": site_report.site,
        "sweeps": int(site_report.sweeps),
        "converged": bool(site_report.converged),
        "solver_backend": site_report.solver_backend,
        # Optional key (absent pre-incremental payloads; read with .get).
        "warm_started": bool(site_report.warm_started),
        "locations_per_link": int(matrix.locations_per_link),
        "reference_indices": [int(i) for i in result.reference_indices],
        "mic": {
            "indices": [int(i) for i in result.mic.indices],
            "rank": int(result.mic.rank),
            "strategy": result.mic.strategy,
        },
        "solver": {
            "objective": float(solver.objective),
            "iterations": int(solver.iterations),
            "converged": bool(solver.converged),
            "reference_weight": float(solver.reference_weight),
            "structure_weight": float(solver.structure_weight),
        },
    }
    if result.lrr is not None:
        arrays["lrr_correlation"] = result.lrr.correlation
        arrays["lrr_error"] = result.lrr.error
        entry["lrr"] = {
            "iterations": int(result.lrr.iterations),
            "converged": bool(result.lrr.converged),
            "residual": float(result.lrr.residual),
        }
    else:
        entry["lrr"] = None
    return entry, arrays


def decode_site_report(entry: dict, get_array) -> UpdateReport:
    """Rebuild one :class:`UpdateReport` from its manifest entry.

    ``get_array(name)`` resolves the unprefixed array names
    :func:`encode_site_report` produced; raising ``KeyError``/``ValueError``
    for missing entries is the caller's concern.
    """
    matrix = FingerprintMatrix(
        values=get_array("estimate"),
        locations_per_link=int(entry["locations_per_link"]),
        no_decrease_mask=get_array("matrix_mask"),
    )
    solver_meta = entry["solver"]
    solver = SelfAugmentedResult(
        estimate=matrix.values,
        left=get_array("left"),
        right=get_array("right"),
        objective=float(solver_meta["objective"]),
        iterations=int(solver_meta["iterations"]),
        converged=bool(solver_meta["converged"]),
        reference_weight=float(solver_meta["reference_weight"]),
        structure_weight=float(solver_meta["structure_weight"]),
    )
    mic_meta = entry["mic"]
    mic = MICResult(
        indices=tuple(int(i) for i in mic_meta["indices"]),
        rank=int(mic_meta["rank"]),
        mic_matrix=get_array("mic_matrix"),
        strategy=str(mic_meta["strategy"]),
    )
    lrr = None
    if entry["lrr"] is not None:
        lrr_meta = entry["lrr"]
        lrr = LRRResult(
            correlation=get_array("lrr_correlation"),
            error=get_array("lrr_error"),
            iterations=int(lrr_meta["iterations"]),
            converged=bool(lrr_meta["converged"]),
            residual=float(lrr_meta["residual"]),
        )
    result = UpdateResult(
        matrix=matrix,
        reference_indices=tuple(int(i) for i in entry["reference_indices"]),
        mic=mic,
        lrr=lrr,
        solver=solver,
    )
    return UpdateReport(
        site=str(entry["site"]),
        result=result,
        sweeps=int(entry["sweeps"]),
        converged=bool(entry["converged"]),
        solver_backend=str(entry["solver_backend"]),
        warm_started=bool(entry.get("warm_started", False)),
    )


def save_report(path, report: FleetReport) -> None:
    """Serialize one fleet refresh (per-site results + plan) to an NPZ payload."""
    arrays: Dict[str, np.ndarray] = {}
    site_entries: List[dict] = []
    for index, site_report in enumerate(report.reports):
        key = _site_key(index)
        entry, site_arrays = encode_site_report(site_report)
        for name, array in site_arrays.items():
            arrays[f"{key}__{name}"] = array
        site_entries.append(entry)

    manifest = {
        "format": REPORT_FORMAT,
        "version": WIRE_VERSION,
        "count": len(site_entries),
        "elapsed_days": float(report.elapsed_days),
        "stacked_sweeps": int(report.stacked_sweeps),
        "errors_db": {k: float(v) for k, v in report.errors_db.items()},
        "stale_errors_db": {k: float(v) for k, v in report.stale_errors_db.items()},
        "plan": None if report.plan is None else report.plan.to_json(),
        # Optional keys (absent in pre-executor payloads; read with .get so
        # wire version 1 stays backward compatible — see docs/WIRE_FORMAT.md).
        "executor": None if report.executor is None else str(report.executor),
        "workers": int(report.workers),
        "sweeps_saved": {k: int(v) for k, v in report.sweeps_saved.items()},
        "sites": site_entries,
    }
    _write_payload(path, manifest, arrays)


def load_report(path) -> FleetReport:
    """Load a report payload back into a full :class:`FleetReport`.

    Per-site estimates, factors, MIC/LRR artefacts and the executed shard
    plan are all reconstructed, so a loaded report compares bit-for-bit
    against the in-process one it was saved from.
    """
    manifest, payload = _read_payload(path, REPORT_FORMAT)
    sites = manifest.get("sites")
    if not isinstance(sites, list) or manifest.get("count") != len(sites):
        raise ValueError(f"corrupt manifest in {path!r}: site list/count mismatch")

    reports: List[UpdateReport] = []
    for index, entry in enumerate(sites):
        key = _site_key(index)
        try:
            reports.append(
                decode_site_report(
                    entry,
                    lambda name: _get_array(payload, f"{key}__{name}", path),
                )
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(
                f"corrupt report site {index} in {path!r}: {exc}"
            ) from exc

    plan_data = manifest.get("plan")
    executor = manifest.get("executor")
    return FleetReport(
        elapsed_days=float(manifest["elapsed_days"]),
        reports=tuple(reports),
        errors_db={str(k): float(v) for k, v in manifest["errors_db"].items()},
        stale_errors_db={
            str(k): float(v) for k, v in manifest["stale_errors_db"].items()
        },
        stacked_sweeps=int(manifest["stacked_sweeps"]),
        plan=None if plan_data is None else ShardPlan.from_json(plan_data),
        executor=None if executor is None else str(executor),
        workers=int(manifest.get("workers") or 0),
        sweeps_saved={
            str(k): int(v)
            for k, v in (manifest.get("sweeps_saved") or {}).items()
        },
    )
