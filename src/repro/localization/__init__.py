"""Target localization: OMP matching plus KNN / SVR / RASS baselines."""

from repro.localization.knn import KNNLocalizer
from repro.localization.metrics import (
    LocalizationReport,
    localization_errors,
    summarize_errors,
)
from repro.localization.omp import OMPLocalizer, OMPConfig
from repro.localization.rass import RASSLocalizer, RASSConfig
from repro.localization.svr import SupportVectorRegressor, SVRConfig

__all__ = [
    "OMPLocalizer",
    "OMPConfig",
    "KNNLocalizer",
    "SupportVectorRegressor",
    "SVRConfig",
    "RASSLocalizer",
    "RASSConfig",
    "LocalizationReport",
    "localization_errors",
    "summarize_errors",
]
