"""K-nearest-neighbour fingerprint matching baseline.

The paper mentions KNN as one of the conventional matchers that the
non-linear OMP formulation outperforms.  This implementation matches an
online RSS vector against the fingerprint columns by Euclidean distance and
returns either the single nearest grid or the (distance-weighted) centroid of
the ``k`` nearest grids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.fingerprint.matrix import FingerprintMatrix
from repro.utils.validation import check_1d, check_2d

__all__ = ["KNNConfig", "KNNLocalizer"]


@dataclass(frozen=True)
class KNNConfig:
    """Configuration of the KNN matcher.

    Attributes
    ----------
    neighbours:
        Number of nearest fingerprint columns considered.
    weighted:
        When True the location estimate is the inverse-distance-weighted
        centroid of the neighbours; when False the single nearest column
        wins.
    center_columns:
        Remove the per-vector mean before distance computation, making the
        matcher robust to global RSS offsets.
    """

    neighbours: int = 3
    weighted: bool = True
    center_columns: bool = True

    def __post_init__(self) -> None:
        if self.neighbours <= 0:
            raise ValueError("neighbours must be positive")


class KNNLocalizer:
    """Nearest-neighbour matcher over fingerprint columns."""

    def __init__(
        self,
        fingerprint: FingerprintMatrix | np.ndarray,
        locations: Optional[np.ndarray] = None,
        config: Optional[KNNConfig] = None,
    ) -> None:
        values = (
            fingerprint.values
            if isinstance(fingerprint, FingerprintMatrix)
            else np.asarray(fingerprint, dtype=float)
        )
        self.dictionary = check_2d(values, "fingerprint")
        self.locations = None if locations is None else np.asarray(locations, dtype=float)
        if self.locations is not None and self.locations.shape[0] != self.dictionary.shape[1]:
            raise ValueError("locations must have one row per fingerprint column")
        self.config = config or KNNConfig()

    def _distances(self, measurement: np.ndarray) -> np.ndarray:
        dictionary = self.dictionary
        vector = measurement.astype(float)
        if self.config.center_columns:
            dictionary = dictionary - dictionary.mean(axis=0, keepdims=True)
            vector = vector - float(vector.mean())
        return np.linalg.norm(dictionary - vector[:, None], axis=0)

    def localize_index(self, measurement: np.ndarray) -> int:
        """Grid index of the nearest fingerprint column."""
        measurement = check_1d(measurement, "measurement")
        distances = self._distances(measurement)
        return int(np.argmin(distances))

    def localize_point(self, measurement: np.ndarray) -> np.ndarray:
        """Estimated coordinates (weighted centroid of the k nearest grids)."""
        if self.locations is None:
            raise ValueError("locations were not provided to the localizer")
        measurement = check_1d(measurement, "measurement")
        distances = self._distances(measurement)
        k = min(self.config.neighbours, distances.size)
        nearest = np.argsort(distances)[:k]
        if not self.config.weighted or k == 1:
            return self.locations[nearest[0]].copy()
        weights = 1.0 / np.maximum(distances[nearest], 1e-9)
        weights = weights / weights.sum()
        return (weights[None, :] @ self.locations[nearest]).ravel()

    def localize_batch(self, measurements: np.ndarray) -> np.ndarray:
        """Localize a batch of measurements; returns grid indices."""
        measurements = check_2d(measurements, "measurements")
        return np.array([self.localize_index(row) for row in measurements], dtype=int)
