"""K-nearest-neighbour fingerprint matching baseline.

The paper mentions KNN as one of the conventional matchers that the
non-linear OMP formulation outperforms.  This implementation matches an
online RSS vector against the fingerprint columns by Euclidean distance and
returns either the single nearest grid or the (distance-weighted) centroid of
the ``k`` nearest grids.

The centered dictionary and its column norms are hoisted into the
constructor, so per-query work is a single distance evaluation; batched
queries go through one distance-matrix GEMM
(:meth:`KNNLocalizer.localize_batch` /
:meth:`KNNLocalizer.localize_points_batch`), which is the code path the
:mod:`repro.query` serving engine rides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.fingerprint.matrix import FingerprintMatrix
from repro.utils.validation import check_1d, check_2d

__all__ = ["KNNConfig", "KNNLocalizer"]


@dataclass(frozen=True)
class KNNConfig:
    """Configuration of the KNN matcher.

    Attributes
    ----------
    neighbours:
        Number of nearest fingerprint columns considered.
    weighted:
        When True the location estimate is the inverse-distance-weighted
        centroid of the neighbours; when False the single nearest column
        wins.
    center_columns:
        Remove the per-vector mean before distance computation, making the
        matcher robust to global RSS offsets.
    """

    neighbours: int = 3
    weighted: bool = True
    center_columns: bool = True

    def __post_init__(self) -> None:
        if self.neighbours <= 0:
            raise ValueError("neighbours must be positive")


class KNNLocalizer:
    """Nearest-neighbour matcher over fingerprint columns."""

    def __init__(
        self,
        fingerprint: FingerprintMatrix | np.ndarray,
        locations: Optional[np.ndarray] = None,
        config: Optional[KNNConfig] = None,
    ) -> None:
        values = (
            fingerprint.values
            if isinstance(fingerprint, FingerprintMatrix)
            else np.asarray(fingerprint, dtype=float)
        )
        self.dictionary = check_2d(values, "fingerprint")
        self.locations = None if locations is None else np.asarray(locations, dtype=float)
        if self.locations is not None and self.locations.shape[0] != self.dictionary.shape[1]:
            raise ValueError("locations must have one row per fingerprint column")
        self.config = config or KNNConfig()
        # Hoisted per-dictionary precomputation: centering the columns (and
        # the squared column norms the batched GEMM expansion needs) happens
        # once here instead of on every query.
        if self.config.center_columns:
            self._centered = self.dictionary - self.dictionary.mean(axis=0, keepdims=True)
        else:
            self._centered = self.dictionary
        self._centered_sq_norms = np.einsum(
            "ij,ij->j", self._centered, self._centered
        )

    def _distances(self, measurement: np.ndarray) -> np.ndarray:
        vector = measurement.astype(float)
        if self.config.center_columns:
            vector = vector - float(vector.mean())
        return np.linalg.norm(self._centered - vector[:, None], axis=0)

    def _distances_batch(self, measurements: np.ndarray) -> np.ndarray:
        """Distance matrix of a query batch against every column — one GEMM.

        Uses the ``||d||^2 - 2 d.y + ||y||^2`` expansion so the whole batch
        costs a single ``(B, M) @ (M, N)`` product instead of ``B`` per-query
        broadcasts.
        """
        batch = measurements.astype(float)
        if self.config.center_columns:
            batch = batch - batch.mean(axis=1, keepdims=True)
        squared = (
            self._centered_sq_norms[None, :]
            - 2.0 * (batch @ self._centered)
            + np.einsum("ij,ij->i", batch, batch)[:, None]
        )
        np.maximum(squared, 0.0, out=squared)
        return np.sqrt(squared)

    def _nearest_k(self, distances: np.ndarray, k: int) -> np.ndarray:
        """Indices of the ``k`` smallest distances, nearest first."""
        if k < distances.size:
            candidates = np.argpartition(distances, k - 1)[:k]
            return candidates[np.argsort(distances[candidates])]
        return np.argsort(distances)

    def localize_index(self, measurement: np.ndarray) -> int:
        """Grid index of the nearest fingerprint column."""
        measurement = check_1d(measurement, "measurement")
        distances = self._distances(measurement)
        return int(np.argmin(distances))

    def localize_point(self, measurement: np.ndarray) -> np.ndarray:
        """Estimated coordinates (weighted centroid of the k nearest grids)."""
        if self.locations is None:
            raise ValueError("locations were not provided to the localizer")
        measurement = check_1d(measurement, "measurement")
        distances = self._distances(measurement)
        k = min(self.config.neighbours, distances.size)
        nearest = self._nearest_k(distances, k)
        if not self.config.weighted or k == 1:
            return self.locations[nearest[0]].copy()
        weights = 1.0 / np.maximum(distances[nearest], 1e-9)
        weights = weights / weights.sum()
        return (weights[None, :] @ self.locations[nearest]).ravel()

    def localize_batch(self, measurements: np.ndarray) -> np.ndarray:
        """Localize a batch of measurements; returns grid indices.

        The whole batch is answered from one distance-matrix GEMM; results
        match the per-query :meth:`localize_index` path (pinned ≤ 1e-10 by
        the parity tests).
        """
        measurements = check_2d(measurements, "measurements")
        return np.argmin(self._distances_batch(measurements), axis=1).astype(int)

    def localize_points_batch(self, measurements: np.ndarray) -> np.ndarray:
        """Estimated coordinates for a batch of measurements, ``(B, 2)``.

        The batched counterpart of :meth:`localize_point`: one distance GEMM,
        then a vectorised top-k selection and inverse-distance weighting.
        This is the shared coordinate path of the figure experiments and the
        :mod:`repro.query` engine.
        """
        if self.locations is None:
            raise ValueError("locations were not provided to the localizer")
        measurements = check_2d(measurements, "measurements")
        distances = self._distances_batch(measurements)
        n = distances.shape[1]
        k = min(self.config.neighbours, n)
        if not self.config.weighted or k == 1:
            return self.locations[np.argmin(distances, axis=1)].copy()
        if k < n:
            nearest = np.argpartition(distances, k - 1, axis=1)[:, :k]
        else:
            nearest = np.argsort(distances, axis=1)
        selected = np.take_along_axis(distances, nearest, axis=1)
        weights = 1.0 / np.maximum(selected, 1e-9)
        weights = weights / weights.sum(axis=1, keepdims=True)
        return np.einsum("bk,bkc->bc", weights, self.locations[nearest])
