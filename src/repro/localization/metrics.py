"""Localization evaluation metrics.

The paper's localization metric is the Euclidean distance between the true
and estimated grid locations.  These helpers compute per-trial errors,
summaries (mean / median / percentiles) and CDFs for the evaluation harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.utils.cdf import EmpiricalCDF, empirical_cdf

__all__ = ["LocalizationReport", "localization_errors", "summarize_errors"]


@dataclass(frozen=True)
class LocalizationReport:
    """Summary statistics of a batch of localization errors (metres)."""

    errors_m: np.ndarray
    mean_m: float
    median_m: float
    percentile_80_m: float
    percentile_90_m: float

    @property
    def cdf(self) -> EmpiricalCDF:
        """Empirical CDF of the errors (for CDF figures)."""
        return empirical_cdf(self.errors_m)

    def improvement_over(self, other: "LocalizationReport") -> float:
        """Relative mean-error improvement of ``self`` over ``other``.

        Matches the paper's phrasing "improves the localization accuracy by
        X %": ``(other.mean - self.mean) / other.mean``.
        """
        if other.mean_m <= 0:
            raise ValueError("cannot compute improvement over a zero-error baseline")
        return float((other.mean_m - self.mean_m) / other.mean_m)


def localization_errors(
    true_points: np.ndarray, estimated_points: np.ndarray
) -> np.ndarray:
    """Euclidean errors (metres) between matched rows of two point arrays."""
    true_points = np.atleast_2d(np.asarray(true_points, dtype=float))
    estimated_points = np.atleast_2d(np.asarray(estimated_points, dtype=float))
    if true_points.shape != estimated_points.shape:
        raise ValueError("true and estimated point arrays must share a shape")
    return np.linalg.norm(true_points - estimated_points, axis=1)


def summarize_errors(errors_m: Sequence[float]) -> LocalizationReport:
    """Build a :class:`LocalizationReport` from raw error samples."""
    errors = np.asarray(list(errors_m), dtype=float).ravel()
    if errors.size == 0:
        raise ValueError("errors_m must be non-empty")
    cdf = empirical_cdf(errors)
    return LocalizationReport(
        errors_m=errors,
        mean_m=float(errors.mean()),
        median_m=cdf.percentile(0.5),
        percentile_80_m=cdf.percentile(0.8),
        percentile_90_m=cdf.percentile(0.9),
    )
