"""Localization evaluation metrics.

The paper's localization metric is the Euclidean distance between the true
and estimated grid locations.  These helpers compute per-trial errors,
summaries (mean / median / percentiles) and CDFs for the evaluation harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.utils.cdf import EmpiricalCDF, empirical_cdf

__all__ = ["LocalizationReport", "localization_errors", "summarize_errors"]


@dataclass(frozen=True)
class LocalizationReport:
    """Summary statistics of a batch of localization errors (metres)."""

    errors_m: np.ndarray
    mean_m: float
    median_m: float
    percentile_80_m: float
    percentile_90_m: float

    @property
    def cdf(self) -> EmpiricalCDF:
        """Empirical CDF of the errors (for CDF figures)."""
        return empirical_cdf(self.errors_m)

    def improvement_over(self, other: "LocalizationReport") -> float:
        """Relative mean-error improvement of ``self`` over ``other``.

        Matches the paper's phrasing "improves the localization accuracy by
        X %": ``(other.mean - self.mean) / other.mean``.
        """
        if other.mean_m <= 0:
            raise ValueError("cannot compute improvement over a zero-error baseline")
        return float((other.mean_m - self.mean_m) / other.mean_m)


def localization_errors(
    true_points: np.ndarray, estimated_points: np.ndarray
) -> np.ndarray:
    """Euclidean errors (metres) between matched rows of two point arrays.

    Empty inputs yield an empty error array; non-finite coordinates are
    rejected (a NaN silently propagating into a CDF would corrupt every
    percentile downstream).
    """
    true_points = np.asarray(true_points, dtype=float)
    estimated_points = np.asarray(estimated_points, dtype=float)
    if true_points.size == 0 and estimated_points.size == 0:
        return np.zeros(0, dtype=float)
    true_points = np.atleast_2d(true_points)
    estimated_points = np.atleast_2d(estimated_points)
    if true_points.shape != estimated_points.shape:
        raise ValueError("true and estimated point arrays must share a shape")
    if not np.all(np.isfinite(true_points)):
        raise ValueError("true_points contains NaN or infinite coordinates")
    if not np.all(np.isfinite(estimated_points)):
        raise ValueError("estimated_points contains NaN or infinite coordinates")
    return np.linalg.norm(true_points - estimated_points, axis=1)


def summarize_errors(errors_m: Sequence[float]) -> LocalizationReport:
    """Build a :class:`LocalizationReport` from raw error samples.

    A single sample is a valid (degenerate) distribution; empty or
    non-finite inputs are rejected.
    """
    errors = np.asarray(list(errors_m), dtype=float).ravel()
    if errors.size == 0:
        raise ValueError("errors_m must be non-empty")
    if not np.all(np.isfinite(errors)):
        raise ValueError("errors_m contains NaN or infinite entries")
    cdf = empirical_cdf(errors)
    return LocalizationReport(
        errors_m=errors,
        mean_m=float(errors.mean()),
        median_m=cdf.percentile(0.5),
        percentile_80_m=cdf.percentile(0.8),
        percentile_90_m=cdf.percentile(0.9),
    )
