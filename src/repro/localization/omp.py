"""OMP-based target localization (Section V).

The localization problem is modelled as sparse recovery: an online RSS
vector ``y`` (one reading per link) is approximately a sparse combination of
the fingerprint matrix's columns, ``y = X_hat @ w + noise`` with ``w`` an
(almost) one-hot indicator of the target's grid location.  Orthogonal
matching pursuit greedily selects the columns most correlated with the
residual and re-fits the coefficients by least squares at each step; the grid
whose column receives the largest coefficient is reported as the location
estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.fingerprint.matrix import FingerprintMatrix
from repro.utils.validation import check_1d, check_2d

__all__ = ["OMPConfig", "OMPLocalizer", "orthogonal_matching_pursuit"]


@dataclass(frozen=True)
class OMPConfig:
    """Configuration of the OMP localizer.

    Attributes
    ----------
    sparsity:
        Maximum number of columns OMP may select (1 for a single target; a
        slightly larger value lets the weighted-centroid estimate interpolate
        between adjacent grids).
    residual_threshold:
        Stop once the squared residual drops below this value (the paper's
        ``xi``).
    center_columns:
        When True the dictionary and measurement are mean-centred before
        matching, which removes global RSS offsets (long-term drift) that
        would otherwise dominate the correlations.
    weighted_centroid:
        When True and ``sparsity > 1`` the location estimate is the
        coefficient-weighted centroid of the selected grids rather than the
        single best column.
    """

    sparsity: int = 1
    residual_threshold: float = 1e-6
    center_columns: bool = True
    weighted_centroid: bool = False

    def __post_init__(self) -> None:
        if self.sparsity <= 0:
            raise ValueError("sparsity must be positive")
        if self.residual_threshold < 0:
            raise ValueError("residual_threshold must be non-negative")


def orthogonal_matching_pursuit(
    dictionary: np.ndarray,
    measurement: np.ndarray,
    sparsity: int,
    residual_threshold: float = 1e-6,
) -> Tuple[np.ndarray, List[int]]:
    """Generic OMP solver.

    Parameters
    ----------
    dictionary:
        ``M x N`` dictionary whose columns are candidate atoms.
    measurement:
        Length-``M`` measurement vector.
    sparsity:
        Maximum number of atoms to select.
    residual_threshold:
        Early-stopping threshold on the squared residual norm.

    Returns
    -------
    (coefficients, support):
        Full-length coefficient vector (zeros off the support) and the list
        of selected column indices in selection order.
    """
    dictionary = check_2d(dictionary, "dictionary")
    measurement = check_1d(measurement, "measurement")
    if dictionary.shape[0] != measurement.size:
        raise ValueError("dictionary rows must match measurement length")
    sparsity = min(int(sparsity), dictionary.shape[1])

    norms = np.linalg.norm(dictionary, axis=0)
    norms[norms == 0] = 1.0
    residual = measurement.astype(float).copy()
    support: List[int] = []
    coefficients = np.zeros(dictionary.shape[1])

    for _ in range(sparsity):
        correlations = np.abs(dictionary.T @ residual) / norms
        correlations[support] = -np.inf
        best = int(np.argmax(correlations))
        support.append(best)
        sub = dictionary[:, support]
        solution, *_ = np.linalg.lstsq(sub, measurement, rcond=None)
        residual = measurement - sub @ solution
        if float(residual @ residual) < residual_threshold:
            break

    solution, *_ = np.linalg.lstsq(dictionary[:, support], measurement, rcond=None)
    coefficients[support] = solution
    return coefficients, support


class OMPLocalizer:
    """Matches online RSS vectors against a fingerprint matrix with OMP."""

    def __init__(
        self,
        fingerprint: FingerprintMatrix | np.ndarray,
        locations: Optional[np.ndarray] = None,
        config: Optional[OMPConfig] = None,
    ) -> None:
        """
        Parameters
        ----------
        fingerprint:
            The (reconstructed) fingerprint matrix used as the dictionary.
        locations:
            Optional ``(N, 2)`` array of grid coordinates; required only for
            weighted-centroid estimates and for error computation helpers.
        config:
            Localizer configuration.
        """
        values = (
            fingerprint.values
            if isinstance(fingerprint, FingerprintMatrix)
            else np.asarray(fingerprint, dtype=float)
        )
        self.dictionary = check_2d(values, "fingerprint")
        self.locations = None if locations is None else np.asarray(locations, dtype=float)
        if self.locations is not None and self.locations.shape[0] != self.dictionary.shape[1]:
            raise ValueError("locations must have one row per fingerprint column")
        self.config = config or OMPConfig()
        self._column_means = self.dictionary.mean(axis=0)
        self._grand_mean = float(self.dictionary.mean())
        # Hoisted: the centered dictionary is query-independent, so it is
        # built once here instead of on every localization call.
        if self.config.center_columns:
            self._centered = self.dictionary - self.dictionary.mean(
                axis=0, keepdims=True
            )
        else:
            self._centered = self.dictionary

    def _prepare(self, measurement: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        vector = measurement.astype(float)
        if self.config.center_columns:
            vector = vector - float(vector.mean())
        return self._centered, vector

    def localize_index(self, measurement: np.ndarray) -> int:
        """Return the grid index of the best-matching fingerprint column."""
        measurement = check_1d(measurement, "measurement")
        dictionary, vector = self._prepare(measurement)
        coefficients, support = orthogonal_matching_pursuit(
            dictionary,
            vector,
            sparsity=self.config.sparsity,
            residual_threshold=self.config.residual_threshold,
        )
        weights = np.abs(coefficients[support])
        if weights.sum() <= 0:
            return int(support[0])
        return int(support[int(np.argmax(weights))])

    def localize_point(self, measurement: np.ndarray) -> np.ndarray:
        """Return the estimated coordinates of the target.

        Uses the weighted centroid of the OMP support when configured (and
        coordinates are available); otherwise the coordinates of the single
        best grid.
        """
        if self.locations is None:
            raise ValueError("locations were not provided to the localizer")
        measurement = check_1d(measurement, "measurement")
        dictionary, vector = self._prepare(measurement)
        coefficients, support = orthogonal_matching_pursuit(
            dictionary,
            vector,
            sparsity=self.config.sparsity,
            residual_threshold=self.config.residual_threshold,
        )
        weights = np.abs(coefficients[support])
        if self.config.weighted_centroid and weights.sum() > 0 and len(support) > 1:
            weights = weights / weights.sum()
            return (weights[None, :] @ self.locations[support]).ravel()
        best = support[int(np.argmax(weights))] if weights.sum() > 0 else support[0]
        return self.locations[best].copy()

    def localize_batch(self, measurements: np.ndarray) -> np.ndarray:
        """Localize a batch of measurements; returns grid indices."""
        measurements = check_2d(measurements, "measurements")
        return np.array([self.localize_index(row) for row in measurements], dtype=int)
