"""RASS baseline: SVR-based device-free localization.

RASS (Zhang et al., "RASS: A real-time, accurate, and scalable system for
tracking transceiver-free objects", TPDS 2013) is the state-of-the-art
comparison system of the paper's evaluation (Figs. 23-24).  Its defining
feature relative to iUpdater's matcher is that it *learns a regression model*
from the fingerprint database to the target's coordinates, using one support
vector regressor per coordinate, instead of matching an online vector against
the database columns.

The comparison variants of the paper are reproduced as:

* ``RASS w/o rec.`` — train the regressors on the stale (original)
  fingerprint matrix.
* ``RASS w/ rec.``  — train them on the matrix reconstructed by iUpdater.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.fingerprint.matrix import FingerprintMatrix
from repro.localization.svr import SupportVectorRegressor, SVRConfig
from repro.utils.validation import check_1d, check_2d

__all__ = ["RASSConfig", "RASSLocalizer"]


@dataclass(frozen=True)
class RASSConfig:
    """Configuration of the RASS baseline.

    Attributes
    ----------
    svr:
        Configuration shared by the per-coordinate support vector regressors.
    center_features:
        Remove the per-vector mean of each fingerprint before training and
        prediction (the same offset-robustness trick the other matchers use).
    """

    svr: SVRConfig = field(default_factory=SVRConfig)
    center_features: bool = True


class RASSLocalizer:
    """SVR-based localization trained on a fingerprint matrix."""

    def __init__(self, config: Optional[RASSConfig] = None) -> None:
        self.config = config or RASSConfig()
        self._regressor_x = SupportVectorRegressor(self.config.svr)
        self._regressor_y = SupportVectorRegressor(self.config.svr)
        self._locations: Optional[np.ndarray] = None
        self._fitted = False

    def _features(self, matrix: np.ndarray) -> np.ndarray:
        features = matrix.T.astype(float)  # one row per location
        if self.config.center_features:
            features = features - features.mean(axis=1, keepdims=True)
        return features

    def fit(
        self,
        fingerprint: FingerprintMatrix | np.ndarray,
        locations: np.ndarray,
    ) -> "RASSLocalizer":
        """Train the per-coordinate SVRs on a fingerprint matrix.

        Parameters
        ----------
        fingerprint:
            ``M x N`` fingerprint matrix (columns are training fingerprints).
        locations:
            ``(N, 2)`` coordinates of the grid locations.
        """
        values = (
            fingerprint.values
            if isinstance(fingerprint, FingerprintMatrix)
            else np.asarray(fingerprint, dtype=float)
        )
        values = check_2d(values, "fingerprint")
        locations = check_2d(locations, "locations")
        if locations.shape[0] != values.shape[1]:
            raise ValueError("locations must have one row per fingerprint column")
        if locations.shape[1] != 2:
            raise ValueError("locations must be (N, 2) planar coordinates")
        features = self._features(values)
        self._regressor_x.fit(features, locations[:, 0])
        self._regressor_y.fit(features, locations[:, 1])
        self._locations = locations.copy()
        self._fitted = True
        return self

    def localize_point(self, measurement: np.ndarray) -> np.ndarray:
        """Predict the target coordinates for one online RSS vector."""
        if not self._fitted:
            raise RuntimeError("RASSLocalizer must be fitted before localization")
        measurement = check_1d(measurement, "measurement")
        feature = measurement[None, :].astype(float)
        if self.config.center_features:
            feature = feature - feature.mean(axis=1, keepdims=True)
        x = float(self._regressor_x.predict(feature)[0])
        y = float(self._regressor_y.predict(feature)[0])
        return np.array([x, y], dtype=float)

    def localize_index(self, measurement: np.ndarray) -> int:
        """Snap the regressed coordinates to the nearest training grid."""
        if self._locations is None:
            raise RuntimeError("RASSLocalizer must be fitted before localization")
        point = self.localize_point(measurement)
        distances = np.linalg.norm(self._locations - point[None, :], axis=1)
        return int(np.argmin(distances))

    def localize_points_batch(self, measurements: np.ndarray) -> np.ndarray:
        """Predict coordinates for a whole batch with two kernel GEMMs.

        Each coordinate regressor evaluates its RBF kernel against the full
        ``(B, M)`` batch at once instead of row by row; results match the
        per-query :meth:`localize_point` path (pinned ≤ 1e-10 by the parity
        tests).
        """
        if not self._fitted:
            raise RuntimeError("RASSLocalizer must be fitted before localization")
        measurements = check_2d(measurements, "measurements")
        features = measurements.astype(float)
        if self.config.center_features:
            features = features - features.mean(axis=1, keepdims=True)
        x = self._regressor_x.predict(features)
        y = self._regressor_y.predict(features)
        return np.column_stack([x, y])

    def localize_batch(self, measurements: np.ndarray) -> np.ndarray:
        """Predict coordinates for a batch of RSS vectors (rows)."""
        return self.localize_points_batch(measurements)
