"""Support vector regression built on numpy/scipy (no scikit-learn).

The RASS baseline of the paper trains an SVR model mapping RSS fingerprints
to target coordinates.  Since no ML library is available offline, this module
implements an RBF-kernel support vector regressor by minimising the primal
objective with a *smoothed* epsilon-insensitive loss (squared hinge on the
excess over epsilon), solved with L-BFGS.  The smooth loss keeps the model an
SVR in spirit — flat (zero-gradient) region of width ``2 * epsilon``, ridge
penalty on the function norm — while remaining differentiable so scipy's
optimiser converges quickly on fingerprint-sized problems (tens to hundreds
of training points).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import optimize

from repro.utils.validation import check_1d, check_2d

__all__ = ["SVRConfig", "SupportVectorRegressor"]


@dataclass(frozen=True)
class SVRConfig:
    """Configuration of the RBF-kernel support vector regressor.

    Attributes
    ----------
    c:
        Regularisation trade-off (larger = fit training data more tightly).
    epsilon:
        Half-width of the insensitive tube (in target units).
    gamma:
        RBF kernel width; ``None`` uses the median-heuristic
        ``1 / (n_features * var(X))`` analogous to scikit-learn's ``scale``.
    max_iterations:
        L-BFGS iteration cap.
    """

    c: float = 10.0
    epsilon: float = 0.1
    gamma: Optional[float] = None
    max_iterations: int = 500

    def __post_init__(self) -> None:
        if self.c <= 0:
            raise ValueError("c must be positive")
        if self.epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        if self.gamma is not None and self.gamma <= 0:
            raise ValueError("gamma must be positive when given")
        if self.max_iterations <= 0:
            raise ValueError("max_iterations must be positive")


class SupportVectorRegressor:
    """RBF-kernel SVR with a smoothed epsilon-insensitive loss."""

    def __init__(self, config: Optional[SVRConfig] = None) -> None:
        self.config = config or SVRConfig()
        self._train_x: Optional[np.ndarray] = None
        self._coefficients: Optional[np.ndarray] = None
        self._bias: float = 0.0
        self._gamma: float = 1.0

    # ----------------------------------------------------------------- kernel
    def _resolve_gamma(self, features: np.ndarray) -> float:
        if self.config.gamma is not None:
            return self.config.gamma
        variance = float(features.var())
        if variance <= 0:
            variance = 1.0
        return 1.0 / (features.shape[1] * variance)

    def _kernel(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        sq_a = np.sum(a**2, axis=1)[:, None]
        sq_b = np.sum(b**2, axis=1)[None, :]
        squared_distance = sq_a + sq_b - 2.0 * a @ b.T
        np.maximum(squared_distance, 0.0, out=squared_distance)
        return np.exp(-self._gamma * squared_distance)

    # ------------------------------------------------------------------- fit
    def fit(self, features: np.ndarray, targets: np.ndarray) -> "SupportVectorRegressor":
        """Fit the regressor on ``(n_samples, n_features)`` data."""
        features = check_2d(features, "features")
        targets = check_1d(targets, "targets")
        if features.shape[0] != targets.size:
            raise ValueError("features and targets must have matching lengths")
        self._train_x = features.copy()
        self._gamma = self._resolve_gamma(features)
        kernel = self._kernel(features, features)
        n = features.shape[0]
        epsilon = self.config.epsilon
        c = self.config.c

        def objective(params: np.ndarray) -> tuple[float, np.ndarray]:
            alpha = params[:n]
            bias = params[n]
            prediction = kernel @ alpha + bias
            residual = prediction - targets
            excess = np.abs(residual) - epsilon
            active = excess > 0
            loss = c * float(np.sum(excess[active] ** 2))
            reg = 0.5 * float(alpha @ kernel @ alpha)
            value = reg + loss

            grad_pred = np.zeros(n)
            grad_pred[active] = 2.0 * c * excess[active] * np.sign(residual[active])
            grad_alpha = kernel @ alpha + kernel @ grad_pred
            grad_bias = float(np.sum(grad_pred))
            gradient = np.concatenate([grad_alpha, [grad_bias]])
            return value, gradient

        initial = np.zeros(n + 1)
        initial[n] = float(np.mean(targets))
        result = optimize.minimize(
            objective,
            initial,
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.config.max_iterations},
        )
        self._coefficients = result.x[:n]
        self._bias = float(result.x[n])
        return self

    # --------------------------------------------------------------- predict
    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets for ``(n_samples, n_features)`` inputs."""
        if self._train_x is None or self._coefficients is None:
            raise RuntimeError("the regressor has not been fitted")
        features = check_2d(features, "features")
        kernel = self._kernel(features, self._train_x)
        return kernel @ self._coefficients + self._bias

    @property
    def support_vector_count(self) -> int:
        """Number of training points with non-negligible coefficients."""
        if self._coefficients is None:
            return 0
        return int(np.sum(np.abs(self._coefficients) > 1e-8))
