"""The localization serving engine: the read path of the reproduction.

Where :mod:`repro.service` scales the *write* side (refreshing fleets of
fingerprint databases), this package scales the *read* side — millions of
users localizing against those refreshed databases:

* :class:`~repro.query.index.QueryIndex` — an immutable per-site index
  (precomputed centred dictionary, column norms, location table) built from
  a refreshed :class:`~repro.service.types.FleetReport`, in memory or
  loaded from the :mod:`repro.io` wire format.
* :mod:`repro.query.matchers` — every :mod:`repro.localization` matcher
  (kNN / OMP / SVR / RASS) in a fully **vectorized** batched backend (one
  distance-matrix GEMM per kNN batch, batched OMP correlation projections,
  batched SVR kernels) plus the per-query ``"looped"`` reference backend it
  is pinned against (≤ 1e-10).
* :class:`~repro.query.engine.QueryEngine` — ``localize_batch(site,
  measurements)`` over a :class:`~repro.query.engine.GenerationStore` that
  **hot-swaps database generations atomically** (in-flight batches finish
  on their snapshot), with an optional LRU
  :class:`~repro.query.cache.ResultCache` keyed on quantized RSS vectors.
* :class:`~repro.query.types.QueryBatch` /
  :class:`~repro.query.types.QueryAnswer` — the wire-portable value types
  behind the CLI ``query export`` / ``query run`` / ``query bench``
  workflow.
"""

from repro.query.cache import CacheStats, ResultCache
from repro.query.engine import (
    BoundSite,
    Generation,
    GenerationStore,
    QueryConfig,
    QueryEngine,
)
from repro.query.index import QueryIndex, grid_locations, indexes_from_report
from repro.query.matchers import BACKENDS, MATCHERS, BoundMatcher, bind_matcher
from repro.query.types import QueryAnswer, QueryBatch

__all__ = [
    "QueryEngine",
    "QueryConfig",
    "QueryIndex",
    "QueryBatch",
    "QueryAnswer",
    "Generation",
    "GenerationStore",
    "BoundSite",
    "BoundMatcher",
    "bind_matcher",
    "indexes_from_report",
    "grid_locations",
    "ResultCache",
    "CacheStats",
    "MATCHERS",
    "BACKENDS",
]
