"""Thread-safe LRU result cache keyed on quantized RSS vectors.

Real fleets see the same few RSS patterns over and over (a target standing
still, repeated polling from the same spot), so the engine can answer a
repeat query without touching the matcher.  Exact float equality would
almost never hit — RSS readings carry sensor noise — so keys quantize the
measurement to a configurable dB step: two vectors that round to the same
quantized pattern share an answer.  Keys also carry the site, matcher
identity and database generation, so a hot-swap naturally invalidates every
cached answer of the retired generation (old entries simply age out of the
LRU).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Optional, Tuple

import numpy as np

__all__ = ["CacheStats", "ResultCache"]


@dataclass(frozen=True)
class CacheStats:
    """Counters of one cache's lifetime."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from cache (NaN before any lookup)."""
        total = self.hits + self.misses
        return float("nan") if total == 0 else self.hits / total


class ResultCache:
    """Bounded LRU mapping quantized query keys to per-query answers.

    A capacity of 0 disables the cache entirely (every lookup misses and
    nothing is stored), which is the engine's exact-by-default mode.
    """

    def __init__(self, capacity: int, quantum_db: float = 0.25) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        if quantum_db <= 0:
            raise ValueError("quantum_db must be positive")
        self.capacity = int(capacity)
        self.quantum_db = float(quantum_db)
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def enabled(self) -> bool:
        """Whether the cache stores anything at all."""
        return self.capacity > 0

    def key(
        self,
        site: str,
        generation: int,
        matcher: str,
        backend: str,
        measurement: np.ndarray,
    ) -> Tuple:
        """Cache key of one query: identity fields + the quantized vector."""
        quantized = np.round(
            np.asarray(measurement, dtype=float) / self.quantum_db
        ).astype(np.int64)
        return (site, int(generation), matcher, backend, quantized.tobytes())

    def get(self, key: Hashable) -> Optional[object]:
        """Look up a key, refreshing its LRU position on a hit."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._hits += 1
                return self._entries[key]
            self._misses += 1
            return None

    def put(self, key: Hashable, value: object) -> None:
        """Insert (or refresh) an entry, evicting the LRU tail over capacity."""
        if not self.enabled:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters keep accumulating)."""
        with self._lock:
            self._entries.clear()

    @property
    def stats(self) -> CacheStats:
        """Snapshot of the cache counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                capacity=self.capacity,
            )
