"""The query-serving engine: batched localization over generation-swapped
fleet databases.

This is the read-side counterpart of :class:`~repro.service.service.
UpdateService`: the write path refreshes fingerprint databases, the
:class:`QueryEngine` answers localization queries against them at high QPS.

* A refreshed :class:`~repro.service.types.FleetReport` is published as a
  **generation**: one immutable :class:`~repro.query.index.QueryIndex` per
  site, with the configured matcher bound (per-generation precompute — SVR
  fits, centred dictionaries) at publish time.
* :meth:`QueryEngine.localize_batch` answers a whole batch through the
  bound matcher's vectorized backend (or the per-query looped reference,
  pinned ≤ 1e-10 — see :mod:`repro.query.matchers`).
* The :class:`GenerationStore` hot-swaps generations **atomically**: a
  batch in flight finishes entirely on the generation snapshot it grabbed;
  new batches see the new one.  No locks are held while matching.
* An optional LRU :class:`~repro.query.cache.ResultCache` short-circuits
  repeat queries, keyed on quantized RSS vectors plus the generation (so a
  swap never serves stale answers).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, NamedTuple, Optional, Tuple

import numpy as np

from repro.localization.knn import KNNConfig
from repro.localization.omp import OMPConfig
from repro.localization.rass import RASSConfig
from repro.query.cache import CacheStats, ResultCache
from repro.query.index import QueryIndex, indexes_from_report
from repro.query.matchers import BACKENDS, MATCHERS, BoundMatcher, bind_matcher
from repro.query.types import QueryAnswer, QueryBatch
from repro.service.types import FleetReport
from repro.utils.validation import check_2d

__all__ = ["QueryConfig", "BoundSite", "Generation", "GenerationStore", "QueryEngine"]


@dataclass(frozen=True)
class QueryConfig:
    """Configuration of the serving engine.

    Attributes
    ----------
    matcher:
        Which matcher answers queries: ``"knn"`` (default), ``"omp"``,
        ``"svr"`` or ``"rass"``.
    matcher_backend:
        ``"vectorized"`` (default, batched GEMM path) or ``"looped"`` (the
        per-query :mod:`repro.localization` reference path).
    knn, omp, rass:
        Per-matcher configurations (``rass`` is shared by the ``"svr"``
        matcher, which forces feature centering off).
    cache_size:
        LRU result-cache capacity in entries; 0 (default) disables caching,
        keeping the engine exact.
    cache_quantum_db:
        Quantization step (dB) of the cache keys — queries that round to
        the same pattern share a cached answer.
    """

    matcher: str = "knn"
    matcher_backend: str = "vectorized"
    knn: KNNConfig = field(default_factory=KNNConfig)
    omp: OMPConfig = field(default_factory=OMPConfig)
    rass: RASSConfig = field(default_factory=RASSConfig)
    cache_size: int = 0
    cache_quantum_db: float = 0.25

    def __post_init__(self) -> None:
        if self.matcher not in MATCHERS:
            raise ValueError(
                f"unknown matcher {self.matcher!r}; expected one of {MATCHERS}"
            )
        if self.matcher_backend not in BACKENDS:
            raise ValueError(
                f"unknown matcher_backend {self.matcher_backend!r}; "
                f"expected one of {BACKENDS}"
            )
        if self.cache_size < 0:
            raise ValueError("cache_size must be non-negative")
        if self.cache_quantum_db <= 0:
            raise ValueError("cache_quantum_db must be positive")


class BoundSite(NamedTuple):
    """One site inside a generation: its index plus the bound matcher."""

    index: QueryIndex
    matcher: BoundMatcher


@dataclass(frozen=True)
class Generation:
    """One immutable published database generation."""

    ordinal: int
    label: str
    sites: Mapping[str, BoundSite]

    @property
    def site_names(self) -> Tuple[str, ...]:
        """Sites this generation can answer for, sorted."""
        return tuple(sorted(self.sites))

    @property
    def nbytes(self) -> int:
        """Bytes held by the generation's indexes."""
        return int(sum(bound.index.nbytes for bound in self.sites.values()))


class GenerationStore:
    """Atomic holder of the current generation.

    Publishing replaces a single reference under a lock; readers grab that
    reference once per batch (no lock) and keep answering from their
    snapshot even while a newer generation lands — queries in flight finish
    on the old index, new queries see the new one.  Retired generations are
    garbage-collected once the last in-flight reader drops its snapshot.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._current: Optional[Generation] = None
        self._published = 0

    def publish(self, sites: Mapping[str, BoundSite], label: str = "") -> Generation:
        """Atomically make ``sites`` the current generation."""
        if not sites:
            raise ValueError("cannot publish a generation with no sites")
        with self._lock:
            generation = Generation(
                ordinal=self._published,
                label=label or f"generation-{self._published}",
                sites=dict(sites),
            )
            self._current = generation
            self._published += 1
        return generation

    def current(self) -> Generation:
        """Snapshot of the current generation (raises before first publish)."""
        generation = self._current
        if generation is None:
            raise RuntimeError(
                "no database generation has been published; call "
                "QueryEngine.publish_report (or publish_indexes) first"
            )
        return generation

    @property
    def generation_count(self) -> int:
        """How many generations have been published so far."""
        return self._published


class QueryEngine:
    """High-QPS batched localization over hot-swappable fleet databases."""

    def __init__(self, config: Optional[QueryConfig] = None) -> None:
        self.config = config or QueryConfig()
        self.store = GenerationStore()
        self.cache = ResultCache(
            self.config.cache_size, self.config.cache_quantum_db
        )
        self._publish_listeners: List[Callable[[Generation], None]] = []

    # ------------------------------------------------------------- publishing
    def add_publish_listener(self, listener: Callable[[Generation], None]) -> None:
        """Register a callback invoked after every generation hot-swap.

        The listener receives the freshly-published :class:`Generation`
        once it is already the current one — the hook the always-on
        daemon uses to tie a completed refresh job to the generation it
        published (journaling, metrics).  Listeners run synchronously on
        the publishing thread, after the swap, so they must not block;
        exceptions propagate to the publisher.
        """
        self._publish_listeners.append(listener)
    def publish_indexes(
        self, indexes: Mapping[str, QueryIndex], label: str = ""
    ) -> Generation:
        """Bind the configured matcher to each index and hot-swap them in.

        Binding runs the per-generation precompute (SVR fits, centred
        dictionaries) *before* the swap, so the publish is atomic from the
        readers' point of view: they see the old generation until the new
        one is fully built.
        """
        config = self.config
        sites = {
            site: BoundSite(
                index=index,
                matcher=bind_matcher(
                    config.matcher,
                    config.matcher_backend,
                    index,
                    knn=config.knn,
                    omp=config.omp,
                    rass=config.rass,
                ),
            )
            for site, index in indexes.items()
        }
        generation = self.store.publish(sites, label=label)
        for listener in self._publish_listeners:
            listener(generation)
        return generation

    def publish_report(
        self,
        report: FleetReport,
        locations: Optional[Mapping[str, np.ndarray]] = None,
        grid_fallback: bool = True,
        label: str = "",
    ) -> Generation:
        """Publish a refreshed :class:`FleetReport` as the next generation.

        ``locations`` supplies per-site coordinate tables where the caller
        knows the deployment geometry; other sites fall back to the
        deterministic :func:`~repro.query.index.grid_locations` layout
        (disable with ``grid_fallback=False`` to serve bare grid indices).
        """
        indexes = indexes_from_report(
            report, locations=locations, grid_fallback=grid_fallback
        )
        return self.publish_indexes(
            indexes, label=label or f"refresh@{report.elapsed_days:g}d"
        )

    # -------------------------------------------------------------- inspection
    @property
    def sites(self) -> Tuple[str, ...]:
        """Sites of the current generation (empty before first publish)."""
        try:
            return self.store.current().site_names
        except RuntimeError:
            return ()

    @property
    def cache_stats(self) -> CacheStats:
        """Counters of the result cache."""
        return self.cache.stats

    # ---------------------------------------------------------------- serving
    def localize_batch(self, site: str, measurements: np.ndarray) -> QueryAnswer:
        """Answer a ``(B, M)`` batch of RSS vectors against ``site``.

        The whole batch is answered from one generation snapshot; the
        generation's ordinal is recorded on the answer.
        """
        generation = self.store.current()
        bound = generation.sites.get(site)
        if bound is None:
            raise ValueError(
                f"unknown site {site!r}; generation {generation.ordinal} "
                f"serves {list(generation.site_names)}"
            )
        measurements = check_2d(measurements, "measurements")
        if measurements.shape[1] != bound.index.link_count:
            raise ValueError(
                f"measurements must have {bound.index.link_count} columns "
                f"(one per link of site {site!r}), got {measurements.shape[1]}"
            )

        matcher = bound.matcher
        if not self.cache.enabled:
            indices, points = matcher.localize(measurements)
            return QueryAnswer(
                site=site,
                matcher=matcher.name,
                backend=matcher.backend,
                generation=generation.ordinal,
                indices=indices,
                points=points,
            )

        keys = [
            self.cache.key(
                site, generation.ordinal, matcher.name, matcher.backend, row
            )
            for row in measurements
        ]
        cached = [self.cache.get(key) for key in keys]
        miss_rows = [i for i, entry in enumerate(cached) if entry is None]

        count = measurements.shape[0]
        indices = np.empty(count, dtype=int)
        has_points = bound.index.locations is not None
        points = np.empty((count, 2)) if has_points else None
        if miss_rows:
            miss_indices, miss_points = matcher.localize(measurements[miss_rows])
            for position, row in enumerate(miss_rows):
                point = (
                    miss_points[position].copy() if miss_points is not None else None
                )
                self.cache.put(keys[row], (int(miss_indices[position]), point))
                indices[row] = miss_indices[position]
                if points is not None:
                    points[row] = point
        for row, entry in enumerate(cached):
            if entry is None:
                continue
            cached_index, cached_point = entry
            indices[row] = cached_index
            if points is not None:
                points[row] = cached_point
        return QueryAnswer(
            site=site,
            matcher=matcher.name,
            backend=matcher.backend,
            generation=generation.ordinal,
            indices=indices,
            points=points,
            cache_hits=count - len(miss_rows),
        )

    def answer(self, batch: QueryBatch) -> QueryAnswer:
        """Answer a :class:`QueryBatch` (the wire-payload counterpart)."""
        return self.localize_batch(batch.site, batch.measurements)
