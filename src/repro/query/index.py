"""Immutable per-site query indexes over refreshed fingerprint databases.

A :class:`QueryIndex` is the read-side artifact one refreshed site turns
into: the fingerprint dictionary plus everything the batched matchers need
precomputed — the mean-centred dictionary, its column norms, and the grid
location table.  All arrays are copied and frozen (``writeable=False``), so
an index can be shared across serving threads and swapped atomically by the
:class:`~repro.query.engine.GenerationStore` without defensive copies.

:func:`indexes_from_report` bridges the write path to the read path: it
turns a refreshed :class:`~repro.service.types.FleetReport` (in-memory or
loaded from the :mod:`repro.io` wire format) into one index per site.
Reports do not carry deployment geometry, so callers either supply location
tables or fall back to :func:`grid_locations`, the paper's Fig. 3 stripe
convention laid out on a regular grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

import numpy as np

from repro.fingerprint.matrix import FingerprintMatrix
from repro.service.types import FleetReport
from repro.utils.validation import check_2d

__all__ = ["QueryIndex", "grid_locations", "indexes_from_report"]

DEFAULT_GRID_SPACING_M = 0.6
"""Fallback grid spacing (metres) — the paper's 0.6 m inter-grid distance."""


def grid_locations(
    link_count: int,
    locations_per_link: int,
    spacing_m: float = DEFAULT_GRID_SPACING_M,
) -> np.ndarray:
    """Deterministic ``(N, 2)`` location table for a striped deployment.

    Column ``j`` belongs to link ``j // locations_per_link`` at stripe
    offset ``j % locations_per_link`` (the paper's Fig. 3 convention); the
    fallback lays links out as parallel rows ``spacing_m`` apart.  Used when
    a wire-loaded report carries no deployment geometry: distances between
    these synthetic coordinates are consistent within a site, which is all
    relative accuracy metrics need.
    """
    if link_count <= 0 or locations_per_link <= 0:
        raise ValueError("link_count and locations_per_link must be positive")
    if spacing_m <= 0:
        raise ValueError("spacing_m must be positive")
    links = np.repeat(np.arange(link_count, dtype=float), locations_per_link)
    offsets = np.tile(np.arange(locations_per_link, dtype=float), link_count)
    return np.column_stack([offsets * spacing_m, links * spacing_m])


def _frozen(array: np.ndarray) -> np.ndarray:
    copy = np.array(array, dtype=float, copy=True)
    copy.setflags(write=False)
    return copy


@dataclass(frozen=True)
class QueryIndex:
    """One site's immutable, precomputed localization dictionary.

    Attributes
    ----------
    site:
        Site identifier.
    values:
        ``(M, N)`` fingerprint dictionary (read-only).
    locations_per_link:
        Stripe width ``N / M`` of the dictionary.
    locations:
        ``(N, 2)`` grid coordinates (read-only), or ``None`` when the
        producer knows no geometry — answers then carry indices only.
    centered:
        The dictionary with per-column means removed (read-only): the
        matching dictionary of the offset-robust KNN and OMP matchers.
    column_means:
        ``(N,)`` per-column means removed from :attr:`centered`.
    column_norms:
        ``(N,)`` Euclidean norms of the centred columns with zeros replaced
        by 1 — the OMP correlation normalizer.
    """

    site: str
    values: np.ndarray
    locations_per_link: int
    locations: Optional[np.ndarray]
    centered: np.ndarray
    column_means: np.ndarray
    column_norms: np.ndarray

    @classmethod
    def build(
        cls,
        site: str,
        fingerprint: "FingerprintMatrix | np.ndarray",
        locations: Optional[np.ndarray] = None,
        locations_per_link: Optional[int] = None,
    ) -> "QueryIndex":
        """Precompute an index from a fingerprint matrix.

        Parameters
        ----------
        site:
            Site identifier recorded on the index.
        fingerprint:
            The (refreshed) fingerprint matrix serving as dictionary.
        locations:
            Optional ``(N, 2)`` grid coordinates.
        locations_per_link:
            Stripe width; required only when ``fingerprint`` is a raw
            array (a :class:`FingerprintMatrix` knows its own).
        """
        if not site:
            raise ValueError("site must be a non-empty identifier")
        if isinstance(fingerprint, FingerprintMatrix):
            values = fingerprint.values
            width = fingerprint.locations_per_link
        else:
            values = check_2d(fingerprint, "fingerprint")
            if locations_per_link is None:
                raise ValueError(
                    "locations_per_link is required when building from a raw array"
                )
            width = int(locations_per_link)
        values = _frozen(values)
        if locations is not None:
            locations = check_2d(locations, "locations")
            if locations.shape != (values.shape[1], 2):
                raise ValueError(
                    f"locations must be ({values.shape[1]}, 2), "
                    f"got {locations.shape}"
                )
            locations = _frozen(locations)
        column_means = values.mean(axis=0)
        centered = _frozen(values - column_means[None, :])
        norms = np.linalg.norm(centered, axis=0)
        norms[norms == 0] = 1.0
        norms.setflags(write=False)
        column_means.setflags(write=False)
        return cls(
            site=site,
            values=values,
            locations_per_link=width,
            locations=locations,
            centered=centered,
            column_means=column_means,
            column_norms=norms,
        )

    # ------------------------------------------------------------------ shape
    @property
    def link_count(self) -> int:
        """Number of links ``M`` (dictionary rows)."""
        return int(self.values.shape[0])

    @property
    def location_count(self) -> int:
        """Number of grid locations ``N`` (dictionary columns)."""
        return int(self.values.shape[1])

    @property
    def nbytes(self) -> int:
        """Bytes held by the index's arrays (dictionary + precomputations)."""
        total = self.values.nbytes + self.centered.nbytes
        total += self.column_means.nbytes + self.column_norms.nbytes
        if self.locations is not None:
            total += self.locations.nbytes
        return int(total)


def indexes_from_report(
    report: FleetReport,
    locations: Optional[Mapping[str, np.ndarray]] = None,
    grid_fallback: bool = True,
    spacing_m: float = DEFAULT_GRID_SPACING_M,
) -> Dict[str, QueryIndex]:
    """Build one :class:`QueryIndex` per site of a refreshed fleet report.

    Parameters
    ----------
    report:
        The refreshed fleet (``UpdateService`` output or
        :func:`repro.io.load_report`).
    locations:
        Optional per-site ``(N, 2)`` coordinate tables from a producer that
        knows the deployment geometry.
    grid_fallback:
        When True (default), sites without a supplied table get the
        deterministic :func:`grid_locations` layout; when False they get
        ``None`` and their answers carry grid indices only.
    spacing_m:
        Grid spacing of the fallback layout.
    """
    locations = dict(locations or {})
    indexes: Dict[str, QueryIndex] = {}
    for site_report in report.reports:
        matrix = site_report.matrix
        table = locations.get(site_report.site)
        if table is None and grid_fallback:
            table = grid_locations(
                matrix.link_count, matrix.locations_per_link, spacing_m
            )
        indexes[site_report.site] = QueryIndex.build(
            site_report.site, matrix, locations=table
        )
    return indexes
