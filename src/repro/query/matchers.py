"""Batched localization matchers over a :class:`~repro.query.index.QueryIndex`.

Every matcher of :mod:`repro.localization` (kNN / OMP / SVR / RASS) is
available in two backends:

* ``"vectorized"`` — the serving path: a whole query batch is answered with
  a constant number of GEMMs (one distance-matrix product for kNN, one
  correlation product per OMP round, two kernel products for SVR/RASS)
  instead of a Python loop per query.
* ``"looped"`` — the reference path: the existing per-query
  ``localize_index`` / ``localize_point`` methods, row by row.  This is the
  paper-faithful baseline the vectorized backend is pinned against
  (≤ 1e-10, ``tests/query/test_matchers.py``).

A matcher is *bound* to an index once per database generation
(:func:`bind_matcher`), which is where the per-generation precomputation
happens: kNN hoists its centred dictionary, SVR/RASS fit their coordinate
regressors.  Bound matchers are immutable after binding and safe to share
across serving threads.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Tuple

import numpy as np

from repro.localization.knn import KNNConfig, KNNLocalizer
from repro.localization.omp import OMPConfig, OMPLocalizer
from repro.localization.rass import RASSConfig, RASSLocalizer
from repro.query.index import QueryIndex

__all__ = ["MATCHERS", "BACKENDS", "BoundMatcher", "bind_matcher"]

MATCHERS = ("knn", "omp", "svr", "rass")
"""Matcher names the engine accepts (``"svr"`` is RASS without feature
centering — the plain support-vector regression baseline)."""

BACKENDS = ("vectorized", "looped")
"""Matcher execution backends."""

Answer = Tuple[np.ndarray, Optional[np.ndarray]]


class BoundMatcher:
    """A matcher bound to one immutable index (one database generation)."""

    name: str = ""

    def __init__(self, index: QueryIndex, backend: str) -> None:
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown matcher backend {backend!r}; expected one of {BACKENDS}"
            )
        self.index = index
        self.backend = backend

    def localize(self, measurements: np.ndarray) -> Answer:
        """Answer a validated ``(B, M)`` batch: ``(indices, points_or_None)``."""
        if self.backend == "vectorized":
            return self._localize_vectorized(measurements)
        return self._localize_looped(measurements)

    # Subclass hooks ------------------------------------------------------
    def _localize_vectorized(self, measurements: np.ndarray) -> Answer:
        raise NotImplementedError

    def _localize_looped(self, measurements: np.ndarray) -> Answer:
        raise NotImplementedError


# ------------------------------------------------------------------------ kNN
class _KNNBound(BoundMatcher):
    name = "knn"

    def __init__(self, index: QueryIndex, backend: str, config: KNNConfig) -> None:
        super().__init__(index, backend)
        self.config = config
        # Binding is the per-generation precompute: the localizer hoists the
        # centred dictionary and column norms once, then both backends share
        # it (satellite: figures and engine ride one code path).
        self._localizer = KNNLocalizer(index.values, index.locations, config)

    def _localize_vectorized(self, measurements: np.ndarray) -> Answer:
        indices = self._localizer.localize_batch(measurements)
        points = (
            self._localizer.localize_points_batch(measurements)
            if self.index.locations is not None
            else None
        )
        return indices, points

    def _localize_looped(self, measurements: np.ndarray) -> Answer:
        indices = np.array(
            [self._localizer.localize_index(row) for row in measurements], dtype=int
        )
        points = None
        if self.index.locations is not None:
            points = np.vstack(
                [self._localizer.localize_point(row) for row in measurements]
            )
        return indices, points


# ------------------------------------------------------------------------ OMP
class _OMPBound(BoundMatcher):
    name = "omp"

    def __init__(self, index: QueryIndex, backend: str, config: OMPConfig) -> None:
        super().__init__(index, backend)
        self.config = config
        self._localizer = OMPLocalizer(index.values, index.locations, config)
        # The matching dictionary OMP actually correlates against, plus the
        # normalizer from the index precomputation.
        if config.center_columns:
            self._dictionary = index.centered
            self._norms = index.column_norms
        else:
            self._dictionary = index.values
            norms = np.linalg.norm(index.values, axis=0)
            norms[norms == 0] = 1.0
            self._norms = norms

    def _center(self, measurements: np.ndarray) -> np.ndarray:
        batch = measurements.astype(float)
        if self.config.center_columns:
            batch = batch - batch.mean(axis=1, keepdims=True)
        return batch

    def _localize_vectorized(self, measurements: np.ndarray) -> Answer:
        targets = self._center(measurements)
        sparsity = min(int(self.config.sparsity), self.index.location_count)
        if sparsity == 1:
            # Serving fast path: one correlation GEMM, one argmax.  With a
            # single atom the best column *is* the answer (the reference
            # path's coefficient re-fit cannot change the selection).
            correlations = np.abs(targets @ self._dictionary) / self._norms[None, :]
            indices = np.argmax(correlations, axis=1).astype(int)
            points = (
                self.index.locations[indices].copy()
                if self.index.locations is not None
                else None
            )
            return indices, points
        return self._omp_multi_atom(targets, sparsity)

    def _omp_multi_atom(self, targets: np.ndarray, sparsity: int) -> Answer:
        """Batched multi-atom OMP: the correlation step is one GEMM per
        round over the still-active queries; the tiny per-query least-squares
        re-fits stay looped (support size ≤ sparsity)."""
        dictionary = self._dictionary
        batch = targets.shape[0]
        residuals = targets.copy()
        supports: List[List[int]] = [[] for _ in range(batch)]
        active = np.ones(batch, dtype=bool)
        threshold = self.config.residual_threshold
        for _ in range(sparsity):
            rows = np.nonzero(active)[0]
            if rows.size == 0:
                break
            correlations = (
                np.abs(residuals[rows] @ dictionary) / self._norms[None, :]
            )
            for local, q in enumerate(rows):
                row_corr = correlations[local]
                support = supports[q]
                if support:
                    row_corr[support] = -np.inf
                best = int(np.argmax(row_corr))
                support.append(best)
                sub = dictionary[:, support]
                solution, *_ = np.linalg.lstsq(sub, targets[q], rcond=None)
                residuals[q] = targets[q] - sub @ solution
                if float(residuals[q] @ residuals[q]) < threshold:
                    active[q] = False

        indices = np.empty(batch, dtype=int)
        locations = self.index.locations
        points = np.empty((batch, 2)) if locations is not None else None
        weighted = self.config.weighted_centroid
        for q in range(batch):
            support = supports[q]
            solution, *_ = np.linalg.lstsq(
                dictionary[:, support], targets[q], rcond=None
            )
            weights = np.abs(solution)
            total = weights.sum()
            if total <= 0:
                best = support[0]
            else:
                best = support[int(np.argmax(weights))]
            indices[q] = best
            if points is None:
                continue
            if weighted and total > 0 and len(support) > 1:
                normalized = weights / total
                points[q] = normalized @ locations[support]
            else:
                points[q] = locations[best]
        return indices, points

    def _localize_looped(self, measurements: np.ndarray) -> Answer:
        indices = np.array(
            [self._localizer.localize_index(row) for row in measurements], dtype=int
        )
        points = None
        if self.index.locations is not None:
            points = np.vstack(
                [self._localizer.localize_point(row) for row in measurements]
            )
        return indices, points


# ------------------------------------------------------------------- SVR/RASS
def _snap_to_grid(points: np.ndarray, locations: np.ndarray) -> np.ndarray:
    """Nearest grid index per point — one GEMM over the location table."""
    squared = (
        np.einsum("nc,nc->n", locations, locations)[None, :]
        - 2.0 * (points @ locations.T)
        + np.einsum("bc,bc->b", points, points)[:, None]
    )
    return np.argmin(squared, axis=1).astype(int)


class _RASSBound(BoundMatcher):
    def __init__(
        self, index: QueryIndex, backend: str, config: RASSConfig, name: str
    ) -> None:
        super().__init__(index, backend)
        self.name = name
        if index.locations is None:
            raise ValueError(
                f"matcher {name!r} needs a location table on the index: it "
                "regresses fingerprints to coordinates"
            )
        self.config = config
        # Binding fits the per-coordinate support vector regressors on the
        # generation's dictionary — the expensive part of the read path,
        # paid once per hot-swap instead of per query.
        self._localizer = RASSLocalizer(config).fit(index.values, index.locations)

    def _localize_vectorized(self, measurements: np.ndarray) -> Answer:
        points = self._localizer.localize_points_batch(measurements)
        indices = _snap_to_grid(points, self.index.locations)
        return indices, points

    def _localize_looped(self, measurements: np.ndarray) -> Answer:
        points = np.vstack(
            [self._localizer.localize_point(row) for row in measurements]
        )
        indices = np.array(
            [self._localizer.localize_index(row) for row in measurements], dtype=int
        )
        return indices, points


# ---------------------------------------------------------------------- bind
def bind_matcher(
    matcher: str,
    backend: str,
    index: QueryIndex,
    knn: Optional[KNNConfig] = None,
    omp: Optional[OMPConfig] = None,
    rass: Optional[RASSConfig] = None,
) -> BoundMatcher:
    """Bind a named matcher to an index, running its per-generation setup.

    ``"svr"`` is the plain support-vector-regression baseline: the RASS
    machinery with feature centering forced off; ``"rass"`` uses the given
    :class:`RASSConfig` as-is (centered by default).
    """
    if matcher == "knn":
        return _KNNBound(index, backend, knn or KNNConfig())
    if matcher == "omp":
        return _OMPBound(index, backend, omp or OMPConfig())
    if matcher == "svr":
        return _RASSBound(
            index, backend, replace(rass or RASSConfig(), center_features=False), "svr"
        )
    if matcher == "rass":
        return _RASSBound(index, backend, rass or RASSConfig(), "rass")
    raise ValueError(f"unknown matcher {matcher!r}; expected one of {MATCHERS}")
