"""Value types of the query-serving engine.

The read path speaks two value types, mirroring the write path's
request/response model (:mod:`repro.service.types`):

* :class:`QueryBatch` — a batch of online RSS measurements against one
  site's fingerprint database, optionally carrying the true grid indices
  (for accuracy evaluation) and the site's location table (for producers
  that know the deployment geometry).
* :class:`QueryAnswer` — the engine's response: per-query grid indices,
  estimated coordinates where a location table is available, and the serving
  bookkeeping (matcher, backend, database generation, cache hits).

Both ride the :mod:`repro.io` wire format via
:func:`repro.io.save_queries` / :func:`repro.io.save_answers`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils.validation import check_2d

__all__ = ["QueryBatch", "QueryAnswer"]


@dataclass
class QueryBatch:
    """A batch of localization queries against one site.

    Attributes
    ----------
    site:
        Identifier of the site whose database the queries target (matches
        :attr:`repro.service.types.UpdateReport.site`).
    measurements:
        ``(B, M)`` online RSS vectors, one row per query, one column per
        link.
    true_indices:
        Optional ``(B,)`` ground-truth grid indices, for accuracy
        evaluation of the answers.
    locations:
        Optional ``(N, 2)`` grid-coordinate table of the site.  Producers
        that know the deployment geometry attach it so the serving side can
        answer with coordinates instead of bare grid indices.
    """

    site: str
    measurements: np.ndarray
    true_indices: Optional[np.ndarray] = None
    locations: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if not self.site:
            raise ValueError("site must be a non-empty identifier")
        self.measurements = check_2d(self.measurements, "measurements")
        if self.true_indices is not None:
            self.true_indices = np.asarray(self.true_indices, dtype=int).ravel()
            if self.true_indices.size != self.measurements.shape[0]:
                raise ValueError("true_indices must have one entry per query row")
            if self.true_indices.size and self.true_indices.min() < 0:
                raise ValueError("true_indices must be non-negative")
        if self.locations is not None:
            self.locations = check_2d(self.locations, "locations")
            if self.locations.shape[1] != 2:
                raise ValueError("locations must be (N, 2) planar coordinates")

    @property
    def count(self) -> int:
        """Number of queries in the batch."""
        return int(self.measurements.shape[0])


@dataclass(frozen=True)
class QueryAnswer:
    """The engine's response to one :class:`QueryBatch`.

    Attributes
    ----------
    site:
        The site identifier echoed back from the query.
    matcher:
        Which matcher answered (``"knn"`` / ``"omp"`` / ``"svr"`` /
        ``"rass"``).
    backend:
        Which matcher backend ran (``"vectorized"`` or the per-query
        ``"looped"`` reference).
    generation:
        Ordinal of the database generation the whole batch was answered
        from.  Hot-swaps are atomic: every row of one answer comes from the
        same generation.
    indices:
        ``(B,)`` estimated grid indices.
    points:
        ``(B, 2)`` estimated coordinates, or ``None`` when the serving
        index has no location table.
    cache_hits:
        How many of the batch's rows were answered from the result cache.
    """

    site: str
    matcher: str
    backend: str
    generation: int
    indices: np.ndarray
    points: Optional[np.ndarray] = None
    cache_hits: int = 0

    @property
    def count(self) -> int:
        """Number of answered queries."""
        return int(self.indices.size)
