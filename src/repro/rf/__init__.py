"""Simulated radio substrate.

The paper's evaluation runs on physical Wi-Fi testbeds.  This subpackage
implements the closest synthetic equivalent: a first-principles RSS simulator
with log-distance path loss, environment-specific multipath, a first-Fresnel-
zone human-obstruction model, and both short-term and long-term temporal
variation processes.  See DESIGN.md section 2 for the substitution argument.
"""

from repro.rf.channel import LinkChannel, ChannelConfig
from repro.rf.geometry import Link, Point, first_fresnel_radius, point_segment_distance
from repro.rf.multipath import MultipathField, MultipathConfig
from repro.rf.propagation import PathLossModel, PropagationConfig
from repro.rf.target import TargetModel, TargetConfig, ObstructionState
from repro.rf.variation import ShortTermNoise, LongTermDrift, VariationConfig

__all__ = [
    "LinkChannel",
    "ChannelConfig",
    "Link",
    "Point",
    "first_fresnel_radius",
    "point_segment_distance",
    "MultipathField",
    "MultipathConfig",
    "PathLossModel",
    "PropagationConfig",
    "TargetModel",
    "TargetConfig",
    "ObstructionState",
    "ShortTermNoise",
    "LongTermDrift",
    "VariationConfig",
]
