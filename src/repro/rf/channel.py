"""Link-level RSS composition.

``LinkChannel`` composes the propagation, multipath, target-obstruction and
temporal-variation models into the quantity the rest of the system consumes:
an RSS reading (dBm) for a link, optionally with a target at a grid location,
at a given elapsed time, with or without short-term noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.rf.geometry import Link, Point
from repro.rf.multipath import MultipathConfig, MultipathField
from repro.rf.propagation import PathLossModel, PropagationConfig
from repro.rf.target import ObstructionState, TargetConfig, TargetModel
from repro.rf.variation import LongTermDrift, ShortTermNoise, VariationConfig
from repro.utils.random import RngLike, make_rng

__all__ = ["ChannelConfig", "LinkChannel"]


@dataclass(frozen=True)
class ChannelConfig:
    """Bundle of all physical-layer configuration objects.

    A single ``ChannelConfig`` fully describes the radio behaviour of a
    deployment; environments differ only in these parameters plus geometry.
    """

    propagation: PropagationConfig = field(default_factory=PropagationConfig)
    multipath: MultipathConfig = field(default_factory=MultipathConfig)
    target: TargetConfig = field(default_factory=TargetConfig)
    variation: VariationConfig = field(default_factory=VariationConfig)
    rss_quantization_db: float = 0.5
    rss_floor_dbm: float = -95.0

    def __post_init__(self) -> None:
        if self.rss_quantization_db < 0:
            raise ValueError("rss_quantization_db must be non-negative")


class LinkChannel:
    """RSS generator for one deployment (a set of links in one area)."""

    def __init__(
        self,
        links: list[Link],
        area_width: float,
        area_height: float,
        config: Optional[ChannelConfig] = None,
        seed: RngLike = None,
    ) -> None:
        if not links:
            raise ValueError("links must be non-empty")
        self.links = list(links)
        self.config = config or ChannelConfig()
        self._seed = seed if isinstance(seed, int) else None
        rng = make_rng(seed)
        self.path_loss = PathLossModel(self.config.propagation, rng=rng)
        self.multipath = MultipathField(
            self.config.multipath, area_width, area_height, rng=rng
        )
        self.target_model = TargetModel(self.config.target)
        self.drift = LongTermDrift(self.config.variation, seed=self._seed or 0)
        self._noise = ShortTermNoise(self.config.variation, rng=rng)

    @property
    def link_count(self) -> int:
        """Number of links in the deployment."""
        return len(self.links)

    def _quantize(self, rss_dbm: float) -> float:
        step = self.config.rss_quantization_db
        if step <= 0:
            return rss_dbm
        return round(rss_dbm / step) * step

    def baseline_rss_dbm(self, link_index: int, elapsed_days: float = 0.0) -> float:
        """Target-free mean RSS of a link at a given elapsed time (no noise)."""
        link = self.links[link_index]
        rss = self.path_loss.baseline_rss_dbm(link.length, link_index)
        rss += self.multipath.static_offset_db(link)
        rss += self.drift.total_shift_db(link_index, link.midpoint(), elapsed_days)
        return max(rss, self.config.rss_floor_dbm)

    def mean_rss_dbm(
        self,
        link_index: int,
        target_location: Optional[Point] = None,
        elapsed_days: float = 0.0,
    ) -> float:
        """Noise-free mean RSS of a link with an optional target present."""
        link = self.links[link_index]
        rss = self.path_loss.baseline_rss_dbm(link.length, link_index)
        rss += self.multipath.static_offset_db(link)
        if target_location is not None:
            rss -= self.target_model.attenuation_db(link, target_location)
            rss += self.multipath.target_offset_db(link, target_location)
            drift_point = target_location
        else:
            drift_point = link.midpoint()
        rss += self.drift.total_shift_db(link_index, drift_point, elapsed_days)
        return max(rss, self.config.rss_floor_dbm)

    def measure_rss_dbm(
        self,
        link_index: int,
        target_location: Optional[Point] = None,
        elapsed_days: float = 0.0,
        with_noise: bool = True,
    ) -> float:
        """One RSS sample (optionally noisy and quantised to 0.5 dB)."""
        rss = self.mean_rss_dbm(link_index, target_location, elapsed_days)
        if with_noise:
            rss += self._noise.sample()
        return self._quantize(max(rss, self.config.rss_floor_dbm))

    def measure_vector(
        self,
        target_location: Optional[Point] = None,
        elapsed_days: float = 0.0,
        samples: int = 1,
        with_noise: bool = True,
    ) -> np.ndarray:
        """RSS vector across all links, averaged over ``samples`` readings.

        This is the quantity a survey collects at one grid location (one
        fingerprint-matrix column) or the online measurement used for
        localization.
        """
        if samples <= 0:
            raise ValueError("samples must be positive")
        readings = np.zeros((samples, self.link_count), dtype=float)
        for s in range(samples):
            for i in range(self.link_count):
                readings[s, i] = self.measure_rss_dbm(
                    i, target_location, elapsed_days, with_noise
                )
        return readings.mean(axis=0)

    def obstruction_state(self, link_index: int, location: Point) -> ObstructionState:
        """Expose the target model's link/location classification."""
        return self.target_model.obstruction_state(self.links[link_index], location)

    def rss_time_series(
        self,
        link_index: int,
        duration_s: float,
        sample_interval_s: float = 0.5,
        target_location: Optional[Point] = None,
        elapsed_days: float = 0.0,
    ) -> np.ndarray:
        """Simulate a time series of RSS samples (used for Fig. 1 / Fig. 6)."""
        if duration_s <= 0 or sample_interval_s <= 0:
            raise ValueError("duration and sample interval must be positive")
        count = int(round(duration_s / sample_interval_s))
        self._noise.reset()
        series = np.zeros(count, dtype=float)
        for k in range(count):
            series[k] = self.measure_rss_dbm(
                link_index, target_location, elapsed_days, with_noise=True
            )
        return series
