"""Planar geometry primitives: points, links, grids and Fresnel-zone math.

The monitoring area is modelled in 2-D (the paper places transceivers and the
target's torso at a common 1 m height, so the geometry that matters for
obstruction is planar).  A *link* is the segment between a transmitter and a
receiver; the first Fresnel zone (FFZ) around that segment determines whether
a target affects the link strongly, weakly, or not at all.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

__all__ = [
    "Point",
    "Link",
    "SPEED_OF_LIGHT",
    "WIFI_2G4_FREQUENCY_HZ",
    "wavelength",
    "first_fresnel_radius",
    "point_segment_distance",
    "projection_parameter",
    "make_grid_centres",
]

SPEED_OF_LIGHT = 299_792_458.0
"""Speed of light in metres per second."""

WIFI_2G4_FREQUENCY_HZ = 2.437e9
"""Centre frequency of Wi-Fi channel 6, used by the paper's 2.4 GHz links."""


@dataclass(frozen=True)
class Point:
    """A point in the 2-D monitoring area (metres)."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to another point."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def as_array(self) -> np.ndarray:
        """Return the point as a length-2 numpy array."""
        return np.array([self.x, self.y], dtype=float)

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a copy of the point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)


@dataclass(frozen=True)
class Link:
    """A wireless link between a transmitter and a receiver.

    Attributes
    ----------
    index:
        Zero-based link index (row index in the fingerprint matrix).
    transmitter, receiver:
        End points of the link.
    frequency_hz:
        Carrier frequency; defaults to Wi-Fi channel 6.
    """

    index: int
    transmitter: Point
    receiver: Point
    frequency_hz: float = WIFI_2G4_FREQUENCY_HZ

    @property
    def length(self) -> float:
        """Distance between transmitter and receiver in metres."""
        return self.transmitter.distance_to(self.receiver)

    @property
    def wavelength(self) -> float:
        """Carrier wavelength in metres."""
        return wavelength(self.frequency_hz)

    def midpoint(self) -> Point:
        """Geometric midpoint of the link."""
        return Point(
            (self.transmitter.x + self.receiver.x) / 2.0,
            (self.transmitter.y + self.receiver.y) / 2.0,
        )

    def distance_from(self, location: Point) -> float:
        """Perpendicular distance from ``location`` to the link segment."""
        return point_segment_distance(location, self.transmitter, self.receiver)

    def along_fraction(self, location: Point) -> float:
        """Normalised projection of ``location`` onto the link (clipped to [0, 1]).

        0 corresponds to the transmitter, 1 to the receiver.  Used to place
        the location-dependent obstruction profile along the link.
        """
        return projection_parameter(location, self.transmitter, self.receiver)

    def fresnel_radius_at(self, location: Point) -> float:
        """First-Fresnel-zone radius of the link at the projection of ``location``."""
        fraction = self.along_fraction(location)
        d1 = fraction * self.length
        d2 = (1.0 - fraction) * self.length
        return first_fresnel_radius(d1, d2, self.wavelength)


def wavelength(frequency_hz: float) -> float:
    """Wavelength in metres for a given carrier frequency."""
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    return SPEED_OF_LIGHT / frequency_hz


def first_fresnel_radius(d1: float, d2: float, wavelength_m: float) -> float:
    """Radius of the first Fresnel zone at distances ``d1`` and ``d2`` from the ends.

    ``r = sqrt(lambda * d1 * d2 / (d1 + d2))``.  At the link's end points the
    radius is zero, which matches the physical intuition that standing right
    next to a transceiver always blocks the link.
    """
    if d1 < 0 or d2 < 0:
        raise ValueError("distances along the link must be non-negative")
    total = d1 + d2
    if total == 0:
        return 0.0
    return math.sqrt(max(wavelength_m * d1 * d2 / total, 0.0))


def projection_parameter(location: Point, start: Point, end: Point) -> float:
    """Projection of ``location`` onto segment ``start``-``end`` normalised to [0, 1]."""
    sx, sy = start.x, start.y
    ex, ey = end.x, end.y
    px, py = location.x, location.y
    seg_dx, seg_dy = ex - sx, ey - sy
    seg_len_sq = seg_dx**2 + seg_dy**2
    if seg_len_sq == 0:
        return 0.0
    t = ((px - sx) * seg_dx + (py - sy) * seg_dy) / seg_len_sq
    return min(1.0, max(0.0, t))


def point_segment_distance(location: Point, start: Point, end: Point) -> float:
    """Shortest distance from ``location`` to the segment ``start``-``end``."""
    t = projection_parameter(location, start, end)
    closest = Point(start.x + t * (end.x - start.x), start.y + t * (end.y - start.y))
    return location.distance_to(closest)


def make_grid_centres(
    width: float,
    height: float,
    grid_size: float,
    origin: Tuple[float, float] = (0.0, 0.0),
    excluded: Sequence[Tuple[float, float, float, float]] = (),
) -> List[Point]:
    """Generate grid-cell centres covering a ``width x height`` area.

    Parameters
    ----------
    width, height:
        Dimensions of the monitoring area in metres.
    grid_size:
        Edge length of a square grid cell (the paper uses 0.6 m).
    origin:
        Coordinates of the area's lower-left corner.
    excluded:
        Axis-aligned rectangles ``(x_min, y_min, x_max, y_max)`` that are not
        part of the effective area (furniture, book racks, ...).  Cells whose
        centre falls inside an excluded rectangle are dropped, mirroring the
        paper's "effective area" grids.
    """
    if width <= 0 or height <= 0 or grid_size <= 0:
        raise ValueError("width, height and grid_size must be positive")
    ox, oy = origin
    n_cols = int(round(width / grid_size))
    n_rows = int(round(height / grid_size))
    centres: List[Point] = []
    for row in range(n_rows):
        for col in range(n_cols):
            cx = ox + (col + 0.5) * grid_size
            cy = oy + (row + 0.5) * grid_size
            if any(
                x_min <= cx <= x_max and y_min <= cy <= y_max
                for x_min, y_min, x_max, y_max in excluded
            ):
                continue
            centres.append(Point(cx, cy))
    return centres


def bounding_box(points: Iterable[Point]) -> Tuple[float, float, float, float]:
    """Return ``(x_min, y_min, x_max, y_max)`` of a collection of points."""
    pts = list(points)
    if not pts:
        raise ValueError("points must be non-empty")
    xs = [p.x for p in pts]
    ys = [p.y for p in pts]
    return min(xs), min(ys), max(xs), max(ys)
