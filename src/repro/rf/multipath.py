"""Multipath model: a static field of scatterers perturbing each link.

Indoor RSS is shaped by reflections off walls, furniture and metal racks.  We
model each environment as a set of point scatterers with random reflection
coefficients.  A scatterer contributes a small, location-dependent ripple to
the RSS of a link, and — importantly for iUpdater — a *target-position-
dependent* component: when the target stands near a scatterer that lies close
to a link, it perturbs the reflected path and hence the fingerprint.

This is what makes the simulated fingerprint matrix *approximately* (rather
than exactly) low rank, reproducing Observation 1 / Fig. 5 of the paper: the
dominant rank-1 structure comes from the direct-path obstruction profile,
while the multipath ripples add small independent components across links.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.rf.geometry import Link, Point
from repro.utils.random import RngLike, make_rng

__all__ = ["Scatterer", "MultipathConfig", "MultipathField"]


@dataclass(frozen=True)
class Scatterer:
    """A point scatterer with a reflection strength expressed in dB."""

    position: Point
    strength_db: float


@dataclass(frozen=True)
class MultipathConfig:
    """Parameters controlling the richness of the multipath field.

    Attributes
    ----------
    scatterer_count:
        Number of scatterers in the area.  The library environment (metal
        book racks) uses a large count, the empty hall a small one.
    strength_std_db:
        Standard deviation of per-scatterer reflection strengths.
    interaction_range_m:
        Distance scale over which a target standing near a scatterer or near
        the reflected path perturbs the link.
    target_coupling_db:
        Scale of the target-position-dependent multipath perturbation.
    """

    scatterer_count: int = 12
    strength_std_db: float = 1.0
    interaction_range_m: float = 1.5
    target_coupling_db: float = 0.8

    def __post_init__(self) -> None:
        if self.scatterer_count < 0:
            raise ValueError("scatterer_count must be non-negative")
        if self.strength_std_db < 0 or self.target_coupling_db < 0:
            raise ValueError("strength scales must be non-negative")
        if self.interaction_range_m <= 0:
            raise ValueError("interaction_range_m must be positive")


class MultipathField:
    """A static field of scatterers covering the monitoring area."""

    def __init__(
        self,
        config: MultipathConfig,
        area_width: float,
        area_height: float,
        rng: RngLike = None,
    ) -> None:
        if area_width <= 0 or area_height <= 0:
            raise ValueError("area dimensions must be positive")
        self.config = config
        self.area_width = float(area_width)
        self.area_height = float(area_height)
        rng = make_rng(rng)
        self._scatterers = self._generate_scatterers(rng)

    def _generate_scatterers(self, rng: np.random.Generator) -> List[Scatterer]:
        scatterers: List[Scatterer] = []
        for _ in range(self.config.scatterer_count):
            position = Point(
                float(rng.uniform(0.0, self.area_width)),
                float(rng.uniform(0.0, self.area_height)),
            )
            strength = float(rng.normal(0.0, self.config.strength_std_db))
            scatterers.append(Scatterer(position=position, strength_db=strength))
        return scatterers

    @property
    def scatterers(self) -> Sequence[Scatterer]:
        """The (immutable) list of scatterers."""
        return tuple(self._scatterers)

    def static_offset_db(self, link: Link) -> float:
        """Target-independent multipath ripple for a link.

        Scatterers close to the link contribute constructively or
        destructively depending on their (random) strength; the contribution
        decays with the scatterer's distance from the link segment.
        """
        offset = 0.0
        for scatterer in self._scatterers:
            distance = link.distance_from(scatterer.position)
            weight = np.exp(-distance / self.config.interaction_range_m)
            offset += scatterer.strength_db * weight
        return float(offset)

    def target_offset_db(self, link: Link, target_location: Point) -> float:
        """Target-position-dependent multipath perturbation for a link.

        A target standing near a scatterer that is itself relevant to the
        link perturbs the reflected path.  The perturbation is a smooth
        deterministic function of the target position, so neighbouring
        locations still produce similar fingerprints (Observation 2), but it
        differs across links enough to break exact low-rankness.
        """
        offset = 0.0
        for scatterer in self._scatterers:
            link_distance = link.distance_from(scatterer.position)
            link_weight = np.exp(-link_distance / self.config.interaction_range_m)
            target_distance = target_location.distance_to(scatterer.position)
            target_weight = np.exp(-target_distance / self.config.interaction_range_m)
            offset += scatterer.strength_db * link_weight * target_weight
        return float(self.config.target_coupling_db * offset)
