"""Large-scale propagation model: log-distance path loss with shadowing.

The received signal strength (without a target present) along a link is
modelled as::

    RSS(d) = P_tx + G_sys - PL(d0) - 10 * n * log10(d / d0) + X_sigma

where ``n`` is the path-loss exponent (environment dependent), ``PL(d0)`` is
the close-in free-space reference loss and ``X_sigma`` is a static,
link-specific log-normal shadowing term (drawn once per deployment, because
shadowing from walls and furniture does not fluctuate second to second).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.rf.geometry import SPEED_OF_LIGHT, WIFI_2G4_FREQUENCY_HZ
from repro.utils.random import RngLike, make_rng

__all__ = ["PropagationConfig", "PathLossModel", "free_space_path_loss"]


def free_space_path_loss(distance_m: float, frequency_hz: float) -> float:
    """Free-space path loss in dB at ``distance_m`` metres.

    Uses the standard Friis form ``20 log10(4 pi d f / c)``.  A minimum
    distance of 1 cm avoids the singularity at zero.
    """
    if frequency_hz <= 0:
        raise ValueError("frequency must be positive")
    distance = max(distance_m, 0.01)
    return 20.0 * math.log10(4.0 * math.pi * distance * frequency_hz / SPEED_OF_LIGHT)


@dataclass(frozen=True)
class PropagationConfig:
    """Parameters of the large-scale propagation model.

    Attributes
    ----------
    tx_power_dbm:
        Transmit power plus antenna gains.  TP-Link WR742N routers transmit
        at about 20 dBm.
    path_loss_exponent:
        Log-distance exponent; ~2.0 for the open hall, larger for cluttered
        environments.
    reference_distance_m:
        Close-in reference distance ``d0``.
    shadowing_std_db:
        Standard deviation of the static per-link shadowing term.
    frequency_hz:
        Carrier frequency.
    """

    tx_power_dbm: float = 20.0
    path_loss_exponent: float = 2.2
    reference_distance_m: float = 1.0
    shadowing_std_db: float = 2.0
    frequency_hz: float = WIFI_2G4_FREQUENCY_HZ

    def __post_init__(self) -> None:
        if self.path_loss_exponent <= 0:
            raise ValueError("path_loss_exponent must be positive")
        if self.reference_distance_m <= 0:
            raise ValueError("reference_distance_m must be positive")
        if self.shadowing_std_db < 0:
            raise ValueError("shadowing_std_db must be non-negative")


class PathLossModel:
    """Log-distance path-loss model with a frozen per-link shadowing offset."""

    def __init__(self, config: PropagationConfig, rng: RngLike = None) -> None:
        self.config = config
        self._rng = make_rng(rng)
        self._shadowing_cache: dict[int, float] = {}

    def reference_loss_db(self) -> float:
        """Path loss at the reference distance ``d0``."""
        return free_space_path_loss(
            self.config.reference_distance_m, self.config.frequency_hz
        )

    def path_loss_db(self, distance_m: float) -> float:
        """Deterministic log-distance path loss at ``distance_m`` metres."""
        distance = max(distance_m, self.config.reference_distance_m)
        return self.reference_loss_db() + 10.0 * self.config.path_loss_exponent * math.log10(
            distance / self.config.reference_distance_m
        )

    def shadowing_db(self, link_index: int) -> float:
        """Static shadowing offset for a link, drawn once and cached."""
        if link_index not in self._shadowing_cache:
            self._shadowing_cache[link_index] = float(
                self._rng.normal(0.0, self.config.shadowing_std_db)
            )
        return self._shadowing_cache[link_index]

    def baseline_rss_dbm(self, distance_m: float, link_index: int = 0) -> float:
        """Target-free RSS of a link of length ``distance_m``."""
        return (
            self.config.tx_power_dbm
            - self.path_loss_db(distance_m)
            + self.shadowing_db(link_index)
        )
