"""Human-target obstruction model.

When a person stands in the monitoring area the RSS of each link changes
according to where the person is relative to the link (Fig. 3 / Fig. 4 of the
paper):

* **Blocking the direct path** — large RSS decrease.  The decrease is
  strongest near the transceivers and weakest at the midpoint of the link,
  because the first Fresnel zone is narrowest at the ends (Section IV-C.1).
* **Inside the first Fresnel zone (FFZ) but not blocking** — small decrease.
* **Outside the FFZ** — essentially no change (these are the *no-decrease*
  elements that can be measured without a person present).

The model below maps the target location to an attenuation (in dB) per link.
It is deliberately smooth in the target position so that neighbouring
locations produce similar attenuation (Observation 2) and parallel adjacent
links see similar attenuation profiles (Observation 3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum

from repro.rf.geometry import Link, Point

__all__ = ["ObstructionState", "TargetConfig", "TargetModel"]


class ObstructionState(str, Enum):
    """Qualitative effect of the target on a link."""

    BLOCKING = "blocking"
    FRESNEL = "fresnel"
    OUTSIDE = "outside"


@dataclass(frozen=True)
class TargetConfig:
    """Parameters of the human obstruction model.

    Attributes
    ----------
    body_radius_m:
        Effective radius of the human body cross-section (a 1.72 m person
        has a torso roughly 0.35-0.4 m across).
    blocking_attenuation_db:
        Peak attenuation when the body fully blocks the link near a
        transceiver.
    midpoint_attenuation_db:
        Attenuation when blocking the link at its midpoint, where the Fresnel
        zone is widest and the body obstructs a smaller fraction of it.
    fresnel_attenuation_db:
        Attenuation scale when the target is inside the FFZ but not blocking.
    fresnel_margin:
        Multiple of the FFZ radius within which the target still has a small
        effect.
    outside_epsilon_db:
        Residual attenuation outside the FFZ (effectively measurement-level).
    asymmetry:
        Transmitter/receiver asymmetry of the obstruction profile.  Real
        links are not perfectly symmetric (the near-transmitter antenna
        pattern and the body's orientation differ from the receiver side);
        a positive value strengthens attenuation on the transmitter half of
        the link and weakens it on the receiver half, which also removes the
        artificial mirror ambiguity a perfectly symmetric profile would give
        the localizer.
    """

    body_radius_m: float = 0.2
    blocking_attenuation_db: float = 9.0
    midpoint_attenuation_db: float = 4.5
    fresnel_attenuation_db: float = 1.8
    fresnel_margin: float = 2.5
    outside_epsilon_db: float = 0.05
    asymmetry: float = 0.35

    def __post_init__(self) -> None:
        if self.body_radius_m <= 0:
            raise ValueError("body_radius_m must be positive")
        if self.blocking_attenuation_db < self.midpoint_attenuation_db:
            raise ValueError(
                "blocking_attenuation_db must be >= midpoint_attenuation_db "
                "(the paper observes larger decreases near the transceivers)"
            )
        if self.fresnel_margin < 1.0:
            raise ValueError("fresnel_margin must be >= 1")
        if not -1.0 < self.asymmetry < 1.0:
            raise ValueError("asymmetry must lie in (-1, 1)")


class TargetModel:
    """Maps a target location to per-link attenuation."""

    def __init__(self, config: TargetConfig | None = None) -> None:
        self.config = config or TargetConfig()

    def obstruction_state(self, link: Link, location: Point) -> ObstructionState:
        """Classify the target's effect on ``link`` (blocking / FFZ / outside)."""
        distance = link.distance_from(location)
        fresnel = max(link.fresnel_radius_at(location), 1e-6)
        if distance <= self.config.body_radius_m + 0.5 * fresnel:
            return ObstructionState.BLOCKING
        if distance <= self.config.body_radius_m + self.config.fresnel_margin * fresnel:
            return ObstructionState.FRESNEL
        return ObstructionState.OUTSIDE

    def attenuation_db(self, link: Link, location: Point) -> float:
        """Attenuation (positive dB) the target causes on ``link``.

        The blocking attenuation follows the paper's description of the RSS
        profile along a link: strongest close to the transceivers, weakest at
        the midpoint, varying smoothly in between.  Off the direct path the
        attenuation decays with the ratio of the lateral offset to the local
        Fresnel-zone radius.
        """
        state = self.obstruction_state(link, location)
        if state is ObstructionState.OUTSIDE:
            return self.config.outside_epsilon_db

        fraction = link.along_fraction(location)
        # Profile along the link: 1.0 at the ends, dipping at the midpoint.
        end_weight = abs(2.0 * fraction - 1.0)  # 1 at ends, 0 at midpoint
        peak = (
            self.config.midpoint_attenuation_db
            + (self.config.blocking_attenuation_db - self.config.midpoint_attenuation_db)
            * end_weight
        )
        # Transmitter/receiver asymmetry: stronger on the TX half (fraction
        # near 0), weaker on the RX half (fraction near 1).
        asym_factor = 1.0 + self.config.asymmetry * (1.0 - 2.0 * fraction)
        peak *= max(asym_factor, 0.1)

        distance = link.distance_from(location)
        fresnel = max(link.fresnel_radius_at(location), 1e-6)
        lateral_scale = self.config.body_radius_m + fresnel

        if state is ObstructionState.BLOCKING:
            # Smooth decay from the peak as the body moves off the exact path.
            decay = math.exp(-((distance / lateral_scale) ** 2))
            return float(max(peak * decay, self.config.fresnel_attenuation_db))

        # Inside the FFZ but not blocking: a small decrease that fades towards
        # the edge of the (margin-expanded) Fresnel zone.
        outer = self.config.body_radius_m + self.config.fresnel_margin * fresnel
        inner = self.config.body_radius_m + 0.5 * fresnel
        span = max(outer - inner, 1e-6)
        closeness = max(0.0, min(1.0, (outer - distance) / span))
        return float(
            max(
                self.config.fresnel_attenuation_db * closeness * max(asym_factor, 0.1),
                self.config.outside_epsilon_db,
            )
        )
