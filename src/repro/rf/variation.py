"""Temporal RSS variation: short-term noise and long-term drift.

The paper motivates iUpdater with two observations about RSS dynamics:

* **Short term** (Fig. 1): readings at a fixed location fluctuate by up to
  ~5 dB over 100 s because of interference, fans, people moving elsewhere,
  and receiver quantisation.
* **Long term** (Fig. 2): even with nothing moving, the mean RSS drifts by
  ~2.5 dB after 5 days and ~6 dB after 45 days (temperature, humidity,
  furniture changes), which makes the fingerprint database stale.

``ShortTermNoise`` models the former as an AR(1) process plus heavy-ish
tailed impulsive outliers.  ``LongTermDrift`` models the latter as the sum of
a global environment shift, a per-link hardware/gain drift, and a smooth
spatial-field drift (so the *differences* between neighbouring locations and
adjacent links stay much more stable than the raw RSS — Observation 2/3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.rf.geometry import Point
from repro.utils.random import RngLike, derive_rng, make_rng

__all__ = ["VariationConfig", "ShortTermNoise", "LongTermDrift"]


@dataclass(frozen=True)
class VariationConfig:
    """Parameters of the temporal variation processes.

    Attributes
    ----------
    short_term_std_db:
        Standard deviation of the short-term fluctuation process.
    short_term_correlation:
        AR(1) coefficient of consecutive 0.5 s samples.
    outlier_probability:
        Probability that a sample is an impulsive outlier.
    outlier_std_db:
        Standard deviation of outlier amplitudes.
    drift_scale_db:
        Scale of the global long-term drift; calibrated so the shift is
        ≈2.5 dB after 5 days and ≈6 dB after 45 days as in Fig. 2.
    link_drift_std_db:
        Per-link drift scale (hardware gain / antenna aging).
    spatial_drift_std_db:
        Scale of the smooth spatial drift field.
    spatial_drift_length_m:
        Correlation length of the spatial drift field; large values keep
        neighbouring locations drifting together.
    drift_time_constant_days:
        Saturation time constant of the drift magnitude.
    """

    short_term_std_db: float = 1.2
    short_term_correlation: float = 0.7
    outlier_probability: float = 0.05
    outlier_std_db: float = 2.5
    drift_scale_db: float = 5.5
    link_drift_std_db: float = 2.5
    spatial_drift_std_db: float = 2.5
    spatial_drift_length_m: float = 4.0
    drift_time_constant_days: float = 10.0

    def __post_init__(self) -> None:
        if not 0 <= self.short_term_correlation < 1:
            raise ValueError("short_term_correlation must lie in [0, 1)")
        if not 0 <= self.outlier_probability <= 1:
            raise ValueError("outlier_probability must lie in [0, 1]")
        for name in (
            "short_term_std_db",
            "outlier_std_db",
            "drift_scale_db",
            "link_drift_std_db",
            "spatial_drift_std_db",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.spatial_drift_length_m <= 0 or self.drift_time_constant_days <= 0:
            raise ValueError("length and time scales must be positive")


class ShortTermNoise:
    """AR(1) short-term fluctuation with occasional impulsive outliers."""

    def __init__(self, config: VariationConfig, rng: RngLike = None) -> None:
        self.config = config
        self._rng = make_rng(rng)
        self._state = 0.0

    def reset(self) -> None:
        """Reset the AR(1) state (start of a new measurement burst)."""
        self._state = 0.0

    def sample(self) -> float:
        """Draw the next noise sample (dB)."""
        cfg = self.config
        innovation_std = cfg.short_term_std_db * math.sqrt(
            max(1.0 - cfg.short_term_correlation**2, 1e-9)
        )
        self._state = cfg.short_term_correlation * self._state + float(
            self._rng.normal(0.0, innovation_std)
        )
        noise = self._state
        if self._rng.random() < cfg.outlier_probability:
            noise += float(self._rng.normal(0.0, cfg.outlier_std_db))
        return noise

    def sample_burst(self, count: int) -> np.ndarray:
        """Draw ``count`` consecutive samples (one measurement burst)."""
        if count <= 0:
            raise ValueError("count must be positive")
        return np.array([self.sample() for _ in range(count)], dtype=float)


class LongTermDrift:
    """Deterministic-per-seed long-term drift field.

    The drift at elapsed time ``t`` (days) is::

        drift(link, location, t) = saturation(t) * (global + link_term + spatial(location))

    where ``saturation(t) = 1 - exp(-t / tau)`` grows smoothly with time so
    the 5-day shift is a fraction of the 45-day shift, matching Fig. 2.  The
    per-seed realisation is derived deterministically from the base seed and
    the time stamp, so re-sampling a time stamp always yields the same drift.
    """

    def __init__(self, config: VariationConfig, seed: Optional[int] = None) -> None:
        self.config = config
        self._seed = 0 if seed is None else int(seed)

    def _saturation(self, elapsed_days: float) -> float:
        if elapsed_days < 0:
            raise ValueError("elapsed_days must be non-negative")
        return 1.0 - math.exp(-elapsed_days / self.config.drift_time_constant_days)

    def global_shift_db(self, elapsed_days: float) -> float:
        """Environment-wide RSS shift at ``elapsed_days``."""
        rng = derive_rng(self._seed, 101, int(round(elapsed_days * 1000)))
        direction = 1.0 if rng.random() < 0.5 else -1.0
        magnitude = self.config.drift_scale_db * self._saturation(elapsed_days)
        # Small stochastic modulation (±15 %) so repeated campaigns differ.
        modulation = 1.0 + 0.15 * float(rng.normal())
        return direction * magnitude * max(modulation, 0.5)

    def link_shift_db(self, link_index: int, elapsed_days: float) -> float:
        """Per-link drift (receiver gain, antenna aging) at ``elapsed_days``."""
        rng = derive_rng(self._seed, 211, link_index, int(round(elapsed_days * 1000)))
        return float(
            rng.normal(0.0, self.config.link_drift_std_db) * self._saturation(elapsed_days)
        )

    def spatial_shift_db(self, location: Point, elapsed_days: float) -> float:
        """Smooth spatial drift (furniture moved, doors opened) at a location.

        Implemented as a low-frequency random cosine field whose phase and
        orientation depend only on the time stamp, guaranteeing spatial
        smoothness: nearby locations receive nearly identical shifts, which
        preserves the stability of neighbouring-location differences.
        """
        rng = derive_rng(self._seed, 307, int(round(elapsed_days * 1000)))
        angle = float(rng.uniform(0.0, 2.0 * math.pi))
        phase = float(rng.uniform(0.0, 2.0 * math.pi))
        amplitude = float(
            abs(rng.normal(0.0, self.config.spatial_drift_std_db))
            * self._saturation(elapsed_days)
        )
        wave_number = 2.0 * math.pi / (2.0 * self.config.spatial_drift_length_m)
        projected = location.x * math.cos(angle) + location.y * math.sin(angle)
        return amplitude * math.cos(wave_number * projected + phase)

    def total_shift_db(
        self, link_index: int, location: Point, elapsed_days: float
    ) -> float:
        """Total long-term drift for a link / location pair."""
        return (
            self.global_shift_db(elapsed_days)
            + self.link_shift_db(link_index, elapsed_days)
            + self.spatial_shift_db(location, elapsed_days)
        )
