"""The fleet update service: "update a fleet of sites" as the first-class API.

Where :class:`~repro.core.updater.IUpdater` refreshes one fingerprint
database at a time, this package makes the multi-site workload primary:

* :class:`~repro.service.types.UpdateRequest` /
  :class:`~repro.service.types.UpdateReport` — the request/response model of
  one site's refresh.
* :class:`~repro.service.service.UpdateService` — an ingest → plan → execute
  pipeline: accepts many sites' matrices (heterogeneous shapes and ranks
  welcome, in memory or loaded from a :mod:`repro.io` wire payload), plans
  rank-grouped shards sized to a byte budget
  (:class:`~repro.service.shard.ShardConfig` /
  :class:`~repro.service.shard.ShardPlan`), and executes every shard as
  stacked batched solves — bit-identical per site for any shard split.
* :class:`~repro.service.executor.SerialExecutor` /
  :class:`~repro.service.executor.ProcessExecutor` /
  :class:`~repro.service.remote.RemoteExecutor` — pluggable execution
  backends behind ``update_fleet(requests, executor=...)``: in-process by
  default, scatter-gather over worker processes, or scatter-gather over
  HTTP :class:`~repro.service.remote.WorkerServer` machines with retry,
  straggler re-dispatch, failover and fingerprint-deduplicated results —
  all rehydrating shards from :mod:`repro.io` wire payloads and all
  bit-identical for any worker or endpoint count (the
  :class:`~repro.service.remote.FaultPlan` chaos seam pins this under
  injected failures).
* :class:`~repro.service.fleet.FleetCampaign` — builds the paper's
  office / hall / library deployments and refreshes all of them per survey
  stamp, returning per-site and aggregate
  :class:`~repro.service.types.FleetReport` summaries (plan included).
* :func:`~repro.service.synthetic.synthesize_fleet` — manufactures fleets of
  simulated sites at scale for payload export, benchmarks and tests.

``IUpdater.update()`` is now a thin single-site adapter over this service
path; see ``docs/API.md`` for the public surface.
"""

from repro.service.executor import (
    InvalidWorkerCountError,
    PooledProcessExecutor,
    ProcessExecutor,
    SerialExecutor,
    ShardExecutor,
)
from repro.service.fleet import PAPER_FLEET, FleetCampaign, FleetConfig
from repro.service.remote import (
    Fault,
    FaultPlan,
    RemoteExecutor,
    RemoteShardError,
    WorkerServer,
)
from repro.service.service import UpdateService
from repro.service.shard import (
    DEFAULT_MAX_STACK_BYTES,
    Shard,
    ShardConfig,
    ShardPlan,
    plan_shards,
)
from repro.service.synthetic import synthesize_fleet
from repro.service.types import (
    FleetReport,
    UpdateReport,
    UpdateRequest,
    WarmFactors,
)

__all__ = [
    "UpdateRequest",
    "UpdateReport",
    "FleetReport",
    "WarmFactors",
    "UpdateService",
    "FleetCampaign",
    "FleetConfig",
    "PAPER_FLEET",
    "DEFAULT_MAX_STACK_BYTES",
    "Shard",
    "ShardConfig",
    "ShardPlan",
    "ShardExecutor",
    "SerialExecutor",
    "ProcessExecutor",
    "PooledProcessExecutor",
    "RemoteExecutor",
    "WorkerServer",
    "Fault",
    "FaultPlan",
    "RemoteShardError",
    "InvalidWorkerCountError",
    "plan_shards",
    "synthesize_fleet",
]
