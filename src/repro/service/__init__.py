"""The fleet update service: "update a fleet of sites" as the first-class API.

Where :class:`~repro.core.updater.IUpdater` refreshes one fingerprint
database at a time, this package makes the multi-site workload primary:

* :class:`~repro.service.types.UpdateRequest` /
  :class:`~repro.service.types.UpdateReport` — the request/response model of
  one site's refresh.
* :class:`~repro.service.service.UpdateService` — accepts many sites'
  matrices (heterogeneous shapes and ranks welcome) and runs every
  alternating-least-squares sweep of the whole fleet as a single stacked
  batched solve.
* :class:`~repro.service.fleet.FleetCampaign` — builds the paper's
  office / hall / library deployments and refreshes all of them per survey
  stamp, returning per-site and aggregate
  :class:`~repro.service.types.FleetReport` summaries.

``IUpdater.update()`` is now a thin single-site adapter over this service
path; see ``docs/API.md`` for the public surface.
"""

from repro.service.fleet import PAPER_FLEET, FleetCampaign, FleetConfig
from repro.service.service import UpdateService
from repro.service.types import FleetReport, UpdateReport, UpdateRequest

__all__ = [
    "UpdateRequest",
    "UpdateReport",
    "FleetReport",
    "UpdateService",
    "FleetCampaign",
    "FleetConfig",
    "PAPER_FLEET",
]
