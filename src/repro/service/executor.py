"""Pluggable shard-execution backends: serial in-process or scatter-gather.

The service pipeline (ingest → plan → **execute**) keeps planning and
execution separate on purpose: a :class:`~repro.service.shard.ShardPlan` is
pure data, so *where* its shards run is a backend choice.  This module
defines that seam:

* :class:`SerialExecutor` — the default and the reference semantics: every
  shard advances in this process, one lockstep run after another, exactly
  as ``UpdateService.update_fleet`` has always behaved.
* :class:`ProcessExecutor` — scatter-gather over a
  ``concurrent.futures.ProcessPoolExecutor``: each shard's member requests
  are serialized with :func:`repro.io.wire.requests_to_bytes` (the same
  versioned NPZ+JSON layout ``fleet export`` writes to disk), a worker
  process rehydrates them with :func:`repro.io.wire.requests_from_bytes`,
  re-runs the deterministic preparation path
  (:func:`~repro.service.prepare.prepare_request`) and the stacked solve
  (:func:`~repro.core.stacked.solve_shard`), and ships a
  :class:`~repro.core.stacked.ShardResult` back.  The coordinator gathers
  outcomes in plan order and the service reassembles reports in request
  order, so results are **bit-identical to serial execution for any worker
  count** — pinned by ``tests/service/test_executor.py``.

Why bit-identical?  Three properties compose:

1. The wire payload preserves every float, mask, dtype, config and seed
   exactly (no pickling of live state — workers rebuild from the same bytes
   an on-disk payload would carry).
2. Preparation is deterministic: MIC/LRR either travel precomputed on the
   request or are recomputed from the bit-identical baseline, and the
   solver's random init draws from the request's integer seed.
3. Batched LU factorises each ``(r, r)`` slice independently, so a shard
   solved alone produces the same floats it would inside any larger stack.

Because property 2 leans on the seed, :class:`ProcessExecutor` refuses
requests whose ``rng`` is ``None`` or a live generator — a worker could not
reproduce the coordinator's random init, silently breaking parity.  Give
every request an integer seed (``fleet export`` payloads always carry one).

Per-shard singularity isolation carries over unchanged: a shard whose
stacked run dies on a numerical error is re-solved site by site from clean
states (in the worker, for :class:`ProcessExecutor`) and flagged
``fallback``; a site that fails even in isolation raises a ``RuntimeError``
naming every offender.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.self_augmented import SelfAugmentedResult
from repro.core.stacked import ShardResult, run_stacked_sweeps, solve_shard
from repro.service.prepare import PreparedSite, prepare_request
from repro.service.shard import Shard, ShardPlan, mark_executed
from repro.service.types import UpdateRequest

__all__ = [
    "InvalidWorkerCountError",
    "ShardExecutor",
    "SerialExecutor",
    "ProcessExecutor",
    "PooledProcessExecutor",
    "resolve_executor",
    "validate_worker_count",
]

_NUMERICAL_ERRORS = (np.linalg.LinAlgError, FloatingPointError)


class InvalidWorkerCountError(ValueError):
    """``max_workers`` was not a positive integer.

    The one named error every executor backend raises for a bad worker
    count, so callers (CLI flag handlers, the daemon's job admission) can
    catch and report it uniformly — a ``ValueError`` subclass, keeping
    existing handlers working.
    """


def validate_worker_count(value, owner: str) -> int:
    """Validate an executor's ``max_workers``: a positive integer, uniformly.

    Rejects non-integers (including ``bool`` and floats — silently
    truncating ``2.5`` workers would mask a caller bug) and anything below
    1 with an :class:`InvalidWorkerCountError` naming the owning backend.
    """
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise InvalidWorkerCountError(
            f"{owner} max_workers must be an integer, got {value!r} "
            f"({type(value).__name__})"
        )
    if value < 1:
        raise InvalidWorkerCountError(
            f"{owner} max_workers must be at least 1, got {value}"
        )
    return int(value)


class ShardExecutor(ABC):
    """Strategy interface: run a plan's shards, return results per site.

    ``execute`` receives the prepared fleet and the plan, and must return
    the executed plan (per-shard sweep counts and fallback flags recorded)
    plus one finalized solver result per *batched* prepared-site index.
    Implementations may mutate ``prepared`` entries only by replacing them
    with an equivalently prepared site (the serial fallback path does, so
    report metadata always reflects the states that actually solved).
    """

    #: Stable identifier recorded on ``FleetReport.executor``.
    name: str = "abstract"

    @property
    def workers(self) -> int:
        """Worker processes this backend fans out to (0 = in-process)."""
        return 0

    @abstractmethod
    def execute(
        self, prepared: List[PreparedSite], plan: ShardPlan
    ) -> Tuple[ShardPlan, Dict[int, SelfAugmentedResult]]:
        """Solve every shard; map prepared-site index → solver result."""


def _gather(
    plan: ShardPlan, shard: Shard, outcome: ShardResult
) -> Tuple[ShardPlan, Dict[int, SelfAugmentedResult]]:
    """Record one shard's outcome on the plan and key results by member."""
    plan = mark_executed(plan, shard.index, outcome.sweeps, fallback=outcome.fallback)
    return plan, dict(zip(shard.members, outcome.results))


def _solve_requests_individually(
    requests: Sequence[UpdateRequest], shard_index: int
) -> Tuple[List[PreparedSite], ShardResult]:
    """Fallback: solve a failed shard's sites one by one from clean states.

    Every member is re-prepared and retried solo so healthy co-tenants
    recover from the abandoned stacked run; only after all retries does a
    site that cannot be solved even in isolation raise, naming every
    offender so the caller can exclude them and resubmit.
    """
    sweeps = 0
    failed = []
    fresh_sites: List[PreparedSite] = []
    results: List[SelfAugmentedResult] = []
    for request in requests:
        fresh = prepare_request(request)
        try:
            sweeps = max(sweeps, run_stacked_sweeps([fresh.state]))
        except _NUMERICAL_ERRORS as exc:
            failed.append((request.site, exc))
        else:
            fresh_sites.append(fresh)
            results.append(fresh.state.finalize())
    if failed:
        sites = ", ".join(repr(site) for site, _ in failed)
        raise RuntimeError(
            f"sites {sites} failed to solve even in isolation "
            f"(shard {shard_index})"
        ) from failed[0][1]
    return fresh_sites, ShardResult(
        results=tuple(results), sweeps=sweeps, fallback=True
    )


class SerialExecutor(ShardExecutor):
    """Execute every shard in this process, in plan order (the default)."""

    name = "serial"

    def execute(
        self, prepared: List[PreparedSite], plan: ShardPlan
    ) -> Tuple[ShardPlan, Dict[int, SelfAugmentedResult]]:
        results: Dict[int, SelfAugmentedResult] = {}
        for shard in plan.shards:
            states = [prepared[index].state for index in shard.members]
            try:
                outcome = solve_shard(states)
            except _NUMERICAL_ERRORS:
                fresh_sites, outcome = _solve_requests_individually(
                    [prepared[index].request for index in shard.members],
                    shard.index,
                )
                for index, fresh in zip(shard.members, fresh_sites):
                    prepared[index] = fresh
            plan, shard_results = _gather(plan, shard, outcome)
            results.update(shard_results)
        return plan, results


def scatter_request(site: PreparedSite) -> UpdateRequest:
    """The request as scattered: the coordinator's MIC/LRR always attached.

    Shared by every scatter-gather backend (process pool and remote HTTP),
    so workers skip Inherent Correlation Acquisition instead of recomputing
    what the coordinator's prepare stage already paid for.
    """
    if site.request.correlation is not None:
        return site.request
    return replace(site.request, correlation=(site.mic, site.lrr))


def check_reproducible(
    prepared: Sequence[PreparedSite], plan: ShardPlan, owner: str
) -> None:
    """Reject request seeds a scattered worker could not reproduce from."""
    for shard in plan.shards:
        for index in shard.members:
            rng = prepared[index].request.rng
            if not isinstance(rng, (int, np.integer)) or isinstance(rng, bool):
                raise ValueError(
                    f"site {prepared[index].request.site!r} carries rng="
                    f"{rng!r}; {owner} needs a reproducible "
                    "integer seed per request so worker processes "
                    "re-derive the coordinator's random init exactly"
                )


def _solve_shard_payload(payload: bytes, shard_index: int) -> ShardResult:
    """Worker entry point: rehydrate one shard's requests and solve them.

    Runs in a pool process, so it must be a top-level (picklable) function.
    The payload travels as :mod:`repro.io.wire` bytes and re-enters through
    the same validation as an on-disk payload; preparation and the stacked
    solve are the exact code the serial path runs.
    """
    from repro.io.wire import requests_from_bytes

    requests = requests_from_bytes(payload)
    prepared = [prepare_request(request) for request in requests]
    try:
        return solve_shard([site.state for site in prepared])
    except _NUMERICAL_ERRORS:
        _, outcome = _solve_requests_individually(requests, shard_index)
        return outcome


class ProcessExecutor(ShardExecutor):
    """Scatter shards over a process pool, gather bit-identical results.

    Parameters
    ----------
    max_workers:
        Worker processes to fan shards out to; defaults to the machine's
        CPU count.  One worker is a legal (if pointless) configuration —
        results never depend on the count, only wall-clock does.
    """

    name = "process"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is None:
            max_workers = os.cpu_count() or 1
        self.max_workers = validate_worker_count(max_workers, type(self).__name__)

    @property
    def workers(self) -> int:
        return self.max_workers

    def execute(
        self, prepared: List[PreparedSite], plan: ShardPlan
    ) -> Tuple[ShardPlan, Dict[int, SelfAugmentedResult]]:
        if not plan.shards:
            return plan, {}
        self._check_reproducible(prepared, plan)
        from concurrent.futures import ProcessPoolExecutor

        workers = min(self.max_workers, len(plan.shards))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return self._execute_on_pool(prepared, plan, pool)

    def _execute_on_pool(
        self, prepared: List[PreparedSite], plan: ShardPlan, pool
    ) -> Tuple[ShardPlan, Dict[int, SelfAugmentedResult]]:
        """Scatter the plan's shards over ``pool`` and gather in plan order.

        At most ``max_workers`` shard futures are in flight at a time, so
        several executors can share one caller-owned pool (the daemon's
        case — see :class:`PooledProcessExecutor`) while each honors its
        own worker budget.  Gathering in plan order (not completion order)
        keeps bookkeeping — like the per-site reports — deterministic for
        any worker count or scheduling interleaving.
        """
        from repro.io.wire import requests_to_bytes

        # Ship the coordinator's MIC/LRR along with each request (the wire
        # format carries them bit-exactly), so workers skip Inherent
        # Correlation Acquisition instead of recomputing what the prepare
        # stage here already paid for.
        payloads = [
            requests_to_bytes(
                [self._scatter_request(prepared[index]) for index in shard.members]
            )
            for shard in plan.shards
        ]
        results: Dict[int, SelfAugmentedResult] = {}
        shards = plan.shards
        window = max(1, self.max_workers)
        futures: Dict[int, "object"] = {}
        submitted = 0
        for position, shard in enumerate(shards):
            while submitted < len(shards) and submitted - position < window:
                futures[submitted] = pool.submit(
                    _solve_shard_payload, payloads[submitted], shards[submitted].index
                )
                submitted += 1
            future = futures.pop(position)
            try:
                outcome = future.result()
            except Exception as exc:
                # A worker traceback alone loses *which* sites were being
                # solved; name the shard's members so the caller can
                # exclude or resubmit them.
                for pending in futures.values():
                    pending.cancel()
                sites = ", ".join(repr(site) for site in shard.sites)
                raise RuntimeError(
                    f"worker failed solving shard {shard.index} "
                    f"(sites {sites}): {exc}"
                ) from exc
            plan, shard_results = _gather(plan, shard, outcome)
            results.update(shard_results)
        return plan, results

    @staticmethod
    def _scatter_request(site: PreparedSite) -> UpdateRequest:
        """The request as scattered: correlation results always attached."""
        return scatter_request(site)

    def _check_reproducible(
        self, prepared: Sequence[PreparedSite], plan: ShardPlan
    ) -> None:
        """Reject seeds a worker could not reproduce the solve from."""
        check_reproducible(prepared, plan, type(self).__name__)


class PooledProcessExecutor(ProcessExecutor):
    """Scatter-gather over a **caller-owned, shared** process pool.

    Where :class:`ProcessExecutor` spins a pool up per ``execute`` call,
    this variant reuses a ``concurrent.futures.ProcessPoolExecutor`` the
    caller keeps alive — the always-on daemon runs every concurrent fleet
    refresh through one pool so worker processes are created once, not per
    job.  ``max_workers`` becomes the executor's *in-flight shard budget*
    on that shared pool: at most that many of its shards are queued or
    running at a time, so one huge job cannot starve the others even
    though they share processes.

    Results stay bit-identical to :class:`SerialExecutor` — the scatter
    payloads, worker entry point and plan-order gather are exactly
    :class:`ProcessExecutor`'s.  The pool's lifecycle belongs to the
    caller: ``execute`` never shuts it down.
    """

    name = "pooled-process"

    def __init__(self, pool, max_workers: Optional[int] = None) -> None:
        super().__init__(max_workers)
        if pool is None:
            raise ValueError("PooledProcessExecutor needs a live process pool")
        self._pool = pool

    def execute(
        self, prepared: List[PreparedSite], plan: ShardPlan
    ) -> Tuple[ShardPlan, Dict[int, SelfAugmentedResult]]:
        if not plan.shards:
            return plan, {}
        self._check_reproducible(prepared, plan)
        return self._execute_on_pool(prepared, plan, self._pool)


def resolve_executor(
    executor: Union[ShardExecutor, str, None]
) -> ShardExecutor:
    """Normalise the ``executor=`` argument of ``UpdateService.update_fleet``.

    ``None`` and ``"serial"`` keep the in-process behaviour; ``"process"``
    builds a CPU-count :class:`ProcessExecutor`; an instance passes through.
    """
    if executor is None:
        return SerialExecutor()
    if isinstance(executor, ShardExecutor):
        return executor
    if isinstance(executor, str):
        if executor == "serial":
            return SerialExecutor()
        if executor == "process":
            return ProcessExecutor()
        raise ValueError(
            f"unknown executor {executor!r}; expected 'serial' or 'process'"
        )
    raise TypeError(
        "executor must be a ShardExecutor, 'serial', 'process', or None, "
        f"got {type(executor).__name__}"
    )
