"""Fleet campaigns: many sites, one stacked refresh per time stamp.

``FleetCampaign`` scales the single-environment
:class:`~repro.simulation.campaign.SurveyCampaign` protocol to the paper's
whole evaluation: it builds the office / hall / library deployments (or any
registered subset, or caller-supplied specs), surveys each site's
ground-truth database, and at every survey stamp refreshes *all* sites with
one :meth:`UpdateService.update_fleet` call — the per-sweep normal equations
of every site land in a single stacked batched solve.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.core.updater import IUpdater
from repro.environments import environment_by_name
from repro.environments.base import EnvironmentSpec
from repro.service.executor import ShardExecutor
from repro.service.service import UpdateService
from repro.service.shard import ShardConfig
from repro.service.types import FleetReport, UpdateRequest
from repro.simulation.campaign import CampaignConfig, SurveyCampaign

__all__ = ["FleetConfig", "FleetCampaign", "PAPER_FLEET"]

PAPER_FLEET: Tuple[str, ...] = ("office", "hall", "library")
"""The paper's three evaluation environments."""


@dataclass(frozen=True)
class FleetConfig:
    """Configuration of a multi-site fleet campaign.

    Attributes
    ----------
    environments:
        Names of registered environments to deploy (see
        :data:`~repro.environments.ENVIRONMENT_FACTORIES`).  Ignored when the
        campaign is built from explicit specs.
    campaign:
        The per-site campaign protocol (time stamps, collection depths,
        updater configuration); shared by every site.
    seed_stride:
        Per-site offset added to the campaign seed so each deployment gets an
        independent radio substrate (site ``k`` uses
        ``campaign.seed + k * seed_stride``).
    """

    environments: Tuple[str, ...] = PAPER_FLEET
    campaign: CampaignConfig = field(default_factory=CampaignConfig)
    seed_stride: int = 101

    def __post_init__(self) -> None:
        if not self.environments:
            raise ValueError("environments must be non-empty")
        if len(set(self.environments)) != len(self.environments):
            raise ValueError(f"duplicate environments: {self.environments}")
        if self.seed_stride <= 0:
            raise ValueError("seed_stride must be positive")


class FleetCampaign:
    """A simulated measurement campaign across a fleet of sites.

    Parameters
    ----------
    specs:
        Optional explicit ``{site: EnvironmentSpec}`` mapping.  When omitted,
        the specs are built from ``config.environments`` via the environment
        registry.
    config:
        Fleet configuration; defaults to the paper's three environments on
        the default campaign protocol.
    service:
        The :class:`UpdateService` performing the stacked refreshes
        (injectable for testing).
    """

    def __init__(
        self,
        specs: Optional[Mapping[str, EnvironmentSpec]] = None,
        config: Optional[FleetConfig] = None,
        service: Optional[UpdateService] = None,
    ) -> None:
        self.config = config or FleetConfig()
        if specs is None:
            specs = {
                name: environment_by_name(name) for name in self.config.environments
            }
        if not specs:
            raise ValueError("the fleet needs at least one site")
        self.specs: Dict[str, EnvironmentSpec] = dict(specs)
        self.service = service or UpdateService()
        self.campaigns: Dict[str, SurveyCampaign] = {}
        for index, (site, spec) in enumerate(self.specs.items()):
            site_config = replace(
                self.config.campaign,
                seed=self.config.campaign.seed + index * self.config.seed_stride,
            )
            self.campaigns[site] = SurveyCampaign(spec, site_config)
        self._updaters: Dict[str, IUpdater] = {}

    # ---------------------------------------------------------------- access
    @property
    def sites(self) -> Tuple[str, ...]:
        """Site identifiers, in deployment order."""
        return tuple(self.campaigns)

    def campaign(self, site: str) -> SurveyCampaign:
        """The per-site survey campaign for ``site``."""
        try:
            return self.campaigns[site]
        except KeyError:
            raise ValueError(
                f"unknown site {site!r}; have {list(self.campaigns)}"
            ) from None

    def updater(self, site: str) -> IUpdater:
        """The site's (cached) pipeline, holding its MIC / LRR results."""
        if site not in self._updaters:
            self._updaters[site] = self.campaign(site).make_updater()
        return self._updaters[site]

    # -------------------------------------------------------------- refreshes
    def build_requests(self, elapsed_days: float) -> List[UpdateRequest]:
        """Collect every site's fresh measurements into update requests."""
        requests: List[UpdateRequest] = []
        for site in self.sites:
            campaign = self.campaigns[site]
            updater = self.updater(site)
            mic, lrr = updater.acquire_correlation()
            reference_indices = tuple(int(i) for i in mic.indices)
            observed, mask, reference = campaign.collect_update_inputs(
                elapsed_days, reference_indices
            )
            requests.append(
                UpdateRequest(
                    site=site,
                    baseline=updater.baseline,
                    no_decrease_matrix=observed,
                    no_decrease_mask=mask,
                    reference_matrix=reference,
                    reference_indices=reference_indices,
                    config=updater.config,
                    rng=campaign.config.seed,
                    correlation=(mic, lrr),
                )
            )
        return requests

    def refresh(
        self,
        elapsed_days: float,
        shards: Union[ShardConfig, int, None] = None,
        executor: Union["ShardExecutor", str, None] = None,
        warm_from: Optional[FleetReport] = None,
    ) -> FleetReport:
        """Refresh every site's database at ``elapsed_days`` in one stacked solve.

        ``shards``, ``executor`` and ``warm_from`` are forwarded to
        :meth:`UpdateService.update_fleet`; the executed plan, the executor
        choice and the per-site sweeps a warm start saved are recorded on
        the returned :class:`FleetReport`.
        """
        requests = self.build_requests(elapsed_days)
        reports = self.service.update_fleet(
            requests, shards=shards, executor=executor, warm_from=warm_from
        )
        errors: Dict[str, float] = {}
        stale: Dict[str, float] = {}
        for report in reports:
            campaign = self.campaigns[report.site]
            if elapsed_days not in campaign.database:
                # Refreshes between survey stamps are legal; there is simply
                # no ground truth to grade them against.
                continue
            truth = campaign.ground_truth(elapsed_days)
            errors[report.site] = report.matrix.reconstruction_error_db(truth)
            stale[report.site] = campaign.database.original.reconstruction_error_db(
                truth
            )
        backend = self.service.last_executor
        return FleetReport(
            elapsed_days=elapsed_days,
            reports=tuple(reports),
            errors_db=errors,
            stale_errors_db=stale,
            stacked_sweeps=self.service.last_stacked_sweeps,
            plan=self.service.last_plan,
            executor=None if backend is None else backend.name,
            workers=0 if backend is None else backend.workers,
            sweeps_saved=self.service.last_sweeps_saved,
        )

    def refresh_all(self) -> Dict[float, FleetReport]:
        """Refresh the fleet at every post-original campaign time stamp."""
        return {
            days: self.refresh(days)
            for days in self.config.campaign.timestamps_days
            if days > 0
        }
