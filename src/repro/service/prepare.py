"""Per-site preparation: turn an :class:`UpdateRequest` into a solvable state.

This is the **ingest** stage of the service pipeline, factored out of
:class:`~repro.service.service.UpdateService` so that any execution backend
— the in-process :class:`~repro.service.executor.SerialExecutor` or a
:class:`~repro.service.executor.ProcessExecutor` worker that just rehydrated
its shard from a :mod:`repro.io` payload — runs the exact same code path:
Inherent Correlation Acquisition (MIC + LRR, skipped when the request
carries a precomputed ``correlation``), the Constraint-1 prediction
``P = X_R Z``, the merge of the fresh reference columns into the observation
mask, and the staged :class:`~repro.core.self_augmented.SweepState`.

Preparation is deterministic for a given request (MIC and LRR are
deterministic in the baseline; the solver init draws from the request's
seed), which is what lets a worker process rebuild a shard's states
bit-identically to the coordinator that planned them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.lrr import LRRResult, low_rank_representation
from repro.core.mic import MICResult, select_reference_locations
from repro.core.self_augmented import SelfAugmentedResult, SweepState
from repro.core.updater import UpdateResult
from repro.fingerprint.matrix import FingerprintMatrix
from repro.service.types import UpdateReport, UpdateRequest

__all__ = ["PreparedSite", "prepare_request"]


@dataclass
class PreparedSite:
    """A request after Inherent Correlation Acquisition, ready to solve."""

    request: UpdateRequest
    mic: MICResult
    lrr: LRRResult
    reference_indices: Tuple[int, ...]
    state: SweepState

    @property
    def backend(self) -> str:
        return self.state.cfg.solver_backend

    def report(self, solver_result: SelfAugmentedResult) -> UpdateReport:
        request = self.request
        baseline = request.baseline
        matrix = FingerprintMatrix(
            values=solver_result.estimate,
            locations_per_link=baseline.locations_per_link,
            no_decrease_mask=baseline.no_decrease_mask.copy()
            if baseline.no_decrease_mask is not None
            else None,
        )
        result = UpdateResult(
            matrix=matrix,
            reference_indices=self.reference_indices,
            mic=self.mic,
            lrr=self.lrr,
            solver=solver_result,
        )
        return UpdateReport(
            site=request.site,
            result=result,
            sweeps=solver_result.iterations,
            converged=solver_result.converged,
            solver_backend=self.backend,
            warm_started=self.state.warm_started,
        )


def prepare_request(request: UpdateRequest) -> PreparedSite:
    """Run Inherent Correlation Acquisition and stage the site's solve.

    This is the per-site half of the pipeline ``IUpdater.update`` used to
    own: MIC selection + LRR on the baseline, the Constraint-1 prediction
    ``P = X_R Z``, and the merge of the fresh reference columns into the
    observation mask.
    """
    config = request.config
    if request.correlation is not None:
        mic, lrr = request.correlation
    else:
        mic = select_reference_locations(
            request.baseline.values,
            count=config.reference_count,
            strategy=config.mic_strategy,
        )
        lrr = low_rank_representation(
            request.baseline.values, mic.mic_matrix, config=config.lrr
        )

    reference_indices = request.reference_indices
    if reference_indices is None:
        reference_indices = tuple(int(i) for i in mic.indices)
    if request.reference_matrix.shape[1] != len(reference_indices):
        raise ValueError(
            "reference_matrix must have one column per reference index"
        )

    # Constraint 1 prediction P = X_R Z, valid when the reference columns
    # match the MIC columns the correlation matrix was built from.
    if len(reference_indices) == lrr.correlation.shape[0]:
        prediction: Optional[np.ndarray] = lrr.predict(request.reference_matrix)
    else:
        prediction = None

    observed = request.no_decrease_matrix.copy()
    mask = request.no_decrease_mask.copy()
    if config.include_reference_in_mask:
        for k, j in enumerate(reference_indices):
            observed[:, j] = request.reference_matrix[:, k]
            mask[:, j] = 1.0

    state = SweepState(
        observed,
        mask,
        request.baseline.locations_per_link,
        prediction=prediction,
        config=config.resolved_solver(),
        rng=request.rng,
    )
    if request.warm_start is not None:
        state.warm_start(
            request.warm_start.left,
            request.warm_start.right,
            request.warm_start.objective,
        )
    return PreparedSite(
        request=request,
        mic=mic,
        lrr=lrr,
        reference_indices=reference_indices,
        state=state,
    )
