"""Remote scatter-gather: HTTP shard workers + a fault-tolerant executor.

This module takes shard execution past one machine.  The wire payloads were
already transport-agnostic — :class:`~repro.service.executor.ProcessExecutor`
ships :func:`repro.io.wire.requests_to_bytes` blobs to pool processes — so
the remote transport reuses exactly that path over plain HTTP:

* :class:`WorkerServer` — a stdlib ``ThreadingHTTPServer`` that accepts
  ``repro-shard-task`` payloads on ``POST /api/shard``, rehydrates the
  member requests with the *same* worker entry point the process pool uses
  (:func:`~repro.service.executor._solve_shard_payload`: validate → prepare
  → :func:`~repro.core.stacked.solve_shard`, with the per-shard singularity
  fallback), and returns a ``repro-shard-result`` payload.
* :class:`RemoteExecutor` — a :class:`~repro.service.executor.ShardExecutor`
  that scatters planned shards across worker endpoints on a thread pool
  (serialization and dispatch overlap remote solves), gathers in plan
  order, and absorbs machine failure:

  - **per-shard timeout + bounded exponential-backoff retry** — every
    dispatch carries a socket timeout; a failed attempt (connection error,
    timeout, corrupt response) sleeps ``backoff * 2^k`` (capped) and
    retries, up to ``max_attempts`` dispatches;
  - **worker-loss failover** — each retry rotates to the next endpoint, so
    a dead worker's shards drain onto the survivors;
  - **straggler re-dispatch** — with ``straggler_after`` set, a dispatch
    that has not answered within that window is raced against a second
    worker; the first valid completion wins;
  - **idempotent results** — every task and result carries the SHA-256
    :func:`~repro.io.wire.shard_fingerprint` of ``(shard index, request
    bytes)``; a completion whose fingerprint was already gathered is
    dropped, so duplicated completions (stragglers, deliberate duplicates)
    are deduplicated deterministically.

The invariant is unchanged from every previous backend: gathered results
are **bit-identical to SerialExecutor** for any endpoint count — and, the
chaos suite pins, under every injected fault.

Fault injection is part of the production surface, not test monkey-
patching: a :class:`FaultPlan` of :class:`Fault` entries arms deliberate
failures per ``(shard, attempt)`` — ``drop`` / ``delay`` / ``corrupt`` /
``kill`` fire inside the worker server, ``duplicate`` fires inside the
executor's dispatcher — so the chaos tests (and the CI ``chaos`` job, via
``fleet workers serve --fault``) drive the real retry / failover / dedup
code paths end to end.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.self_augmented import SelfAugmentedResult
from repro.core.stacked import ShardResult
from repro.io.wire import (
    WirePayloadError,
    requests_to_bytes,
    shard_fingerprint,
    shard_result_from_bytes,
    shard_result_to_bytes,
    shard_task_from_bytes,
    shard_task_to_bytes,
)
from repro.service.executor import (
    ShardExecutor,
    _gather,
    _solve_shard_payload,
    check_reproducible,
    scatter_request,
    validate_worker_count,
)
from repro.service.prepare import PreparedSite
from repro.service.shard import Shard, ShardPlan

__all__ = [
    "FAULT_KINDS",
    "Fault",
    "FaultPlan",
    "RemoteExecutor",
    "RemoteShardError",
    "WorkerServer",
]

FAULT_KINDS = ("drop", "delay", "duplicate", "corrupt", "kill")
"""Injectable fault classes, one per distributed failure mode."""

#: Faults the worker server injects while handling a task.
_SERVER_FAULTS = ("drop", "delay", "corrupt", "kill")

#: Faults the executor injects while dispatching a task.
_CLIENT_FAULTS = ("duplicate",)


# ------------------------------------------------------------------ fault plan
@dataclass(frozen=True)
class Fault:
    """One armed fault: what to break, on which shard, on which attempt.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`:

        - ``drop`` — the worker reads the task and closes the connection
          without responding (a lost response);
        - ``delay`` — the worker solves but sits on the response for
          ``seconds`` (a straggler; past the client timeout, a lost one);
        - ``duplicate`` — the executor dispatches the shard to two workers
          at once and gathers *both* completions (exercises fingerprint
          dedup);
        - ``corrupt`` — the worker flips bits in the result payload before
          sending (caught by wire validation, never by the solve);
        - ``kill`` — the worker dies mid-shard: no response, listener shut
          down, every later connection refused (machine loss).
    shard:
        Plan index of the shard to hit, or ``None`` for any shard.
    attempt:
        0-based dispatch attempt the fault fires on.
    seconds:
        Delay duration (``delay`` faults only).
    """

    kind: str
    shard: Optional[int] = None
    attempt: int = 0
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.attempt < 0:
            raise ValueError(f"fault attempt must be >= 0, got {self.attempt}")
        if self.seconds < 0:
            raise ValueError(f"fault seconds must be >= 0, got {self.seconds}")

    def matches(self, shard_index: int, attempt: int) -> bool:
        """Whether this fault fires for the given dispatch."""
        if self.shard is not None and self.shard != shard_index:
            return False
        return self.attempt == attempt

    @classmethod
    def parse(cls, spec: str) -> "Fault":
        """Parse a CLI fault spec: ``kind[:key=value[,key=value...]]``.

        Examples: ``"kill:shard=0"``, ``"delay:shard=1,seconds=15"``,
        ``"drop"`` (any shard, first attempt).
        """
        kind, _, rest = spec.strip().partition(":")
        kwargs: Dict[str, object] = {}
        if rest:
            for part in rest.split(","):
                key, sep, value = part.partition("=")
                key = key.strip()
                if not sep or key not in ("shard", "attempt", "seconds"):
                    raise ValueError(
                        f"bad fault spec {spec!r}: expected "
                        "kind[:shard=N][,attempt=N][,seconds=X]"
                    )
                try:
                    kwargs[key] = (
                        float(value) if key == "seconds" else int(value)
                    )
                except ValueError:
                    raise ValueError(
                        f"bad fault spec {spec!r}: {key}={value!r} is not a number"
                    ) from None
        return cls(kind=kind, **kwargs)


class FaultPlan:
    """A thread-safe set of armed faults, each consumed at most once.

    Both the worker server and the executor consult the plan per dispatch
    (``take`` matches on shard index and attempt number carried by the task
    payload); a fault that fired stays fired, so one armed ``drop`` breaks
    exactly one dispatch and the retry proceeds cleanly.
    """

    def __init__(self, faults: Sequence[Fault] = ()) -> None:
        self._armed: List[Fault] = list(faults)
        for fault in self._armed:
            if not isinstance(fault, Fault):
                raise TypeError(f"FaultPlan takes Fault entries, got {fault!r}")
        self._fired: List[Fault] = []
        self._lock = threading.Lock()

    @classmethod
    def parse(cls, specs: Sequence[str]) -> "FaultPlan":
        """Build a plan from CLI specs (see :meth:`Fault.parse`)."""
        return cls([Fault.parse(spec) for spec in specs])

    def take(
        self, shard_index: int, attempt: int, kinds: Sequence[str] = FAULT_KINDS
    ) -> Optional[Fault]:
        """Consume and return the first matching armed fault, if any."""
        with self._lock:
            for fault in self._armed:
                if fault.kind in kinds and fault.matches(shard_index, attempt):
                    self._armed.remove(fault)
                    self._fired.append(fault)
                    return fault
        return None

    @property
    def fired(self) -> Tuple[Fault, ...]:
        """Faults that have been injected so far."""
        with self._lock:
            return tuple(self._fired)

    @property
    def pending(self) -> Tuple[Fault, ...]:
        """Faults still armed."""
        with self._lock:
            return tuple(self._armed)

    def __len__(self) -> int:
        with self._lock:
            return len(self._armed) + len(self._fired)


# --------------------------------------------------------------- worker server
class _WorkerRequestHandler(BaseHTTPRequestHandler):
    """Routes: ``GET /api/health`` and ``POST /api/shard``."""

    server_version = "repro-worker"
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 — base-class API
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _send(self, code: int, body: bytes, content_type: str) -> None:
        try:
            self.send_response(code)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        except OSError:
            # The client gave up (timeout, straggler race) — a delayed
            # response to a dead socket is the expected fate of a loser.
            self.close_connection = True

    def _send_json(self, code: int, payload: dict) -> None:
        self._send(code, json.dumps(payload).encode("utf-8"), "application/json")

    def do_GET(self) -> None:  # noqa: N802 — base-class API
        path = self.path.split("?", 1)[0].rstrip("/")
        if path == "/api/health":
            self._send_json(200, self.server.health())
        else:
            self._send_json(404, {"error": f"unknown route {path!r}"})

    def do_POST(self) -> None:  # noqa: N802 — base-class API
        path = self.path.split("?", 1)[0].rstrip("/")
        if path != "/api/shard":
            self._send_json(404, {"error": f"unknown route {path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
            body = self.rfile.read(length) if length > 0 else b""
            task = shard_task_from_bytes(body)
        except (WirePayloadError, ValueError) as exc:
            self._send_json(400, {"error": str(exc)})
            return

        fault = None
        if self.server.faults is not None:
            fault = self.server.faults.take(
                task.shard_index, task.attempt, kinds=_SERVER_FAULTS
            )
        if fault is not None and fault.kind == "drop":
            # Read the task, answer nothing: the response is lost in transit.
            self.close_connection = True
            return
        if fault is not None and fault.kind == "kill":
            # The machine dies mid-shard: no response now, no connections
            # ever again.  shutdown() must run off-thread — it joins the
            # serve loop, and this handler thread must die with the server.
            self.close_connection = True
            self.server.kill()
            return

        try:
            result = _solve_shard_payload(task.requests_payload, task.shard_index)
        except (WirePayloadError, ValueError) as exc:
            self._send_json(400, {"error": str(exc)})
            return
        except Exception as exc:  # noqa: BLE001 — solve failures are terminal
            self._send_json(
                500, {"error": f"{type(exc).__name__}: {exc}"}
            )
            return
        self.server.count_solved()

        body_out = shard_result_to_bytes(
            result, fingerprint=task.fingerprint, shard_index=task.shard_index
        )
        if fault is not None and fault.kind == "delay":
            time.sleep(fault.seconds)
        if fault is not None and fault.kind == "corrupt":
            corrupted = bytearray(body_out)
            middle = len(corrupted) // 2
            for offset in range(middle, min(middle + 16, len(corrupted))):
                corrupted[offset] ^= 0xFF
            body_out = bytes(corrupted)
        self._send(200, body_out, "application/octet-stream")


class WorkerServer(ThreadingHTTPServer):
    """A remote shard worker: solve ``repro-shard-task`` payloads over HTTP.

    The serving-side half of :class:`RemoteExecutor`.  Each ``POST
    /api/shard`` body is decoded through the standard wire validation,
    solved with the exact worker entry point the process-pool backend uses,
    and answered as a ``repro-shard-result`` payload — so a remote solve is
    bit-identical to a local one by construction.  ``GET /api/health``
    reports liveness and counters.

    Parameters
    ----------
    host, port:
        Bind address; port 0 picks a free port (see :attr:`url`).
    faults:
        Optional :class:`FaultPlan` of deliberate failures to inject while
        serving — the chaos-test seam (``fleet workers serve --fault``).
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        super().__init__((host, port), _WorkerRequestHandler)
        self.faults = faults
        self.verbose = False
        self._solved = 0
        self._count_lock = threading.Lock()
        self._serve_thread: Optional[threading.Thread] = None
        self._stopped = threading.Event()
        self._stop_lock = threading.Lock()
        self.killed = False

    @property
    def url(self) -> str:
        """Base URL of this worker (``http://host:port``)."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    @property
    def solved(self) -> int:
        """Shards this worker has solved so far."""
        with self._count_lock:
            return self._solved

    def count_solved(self) -> None:
        with self._count_lock:
            self._solved += 1

    def health(self) -> Dict[str, object]:
        """The ``GET /api/health`` body."""
        return {
            "status": "ok",
            "solved": self.solved,
            "faults_armed": 0 if self.faults is None else len(self.faults.pending),
            "faults_injected": 0 if self.faults is None else len(self.faults.fired),
        }

    def start(self) -> None:
        """Serve on a background thread (tests and the CLI both use this)."""
        self._serve_thread = threading.Thread(
            target=self.serve_forever, name="repro-worker-http", daemon=True
        )
        self._serve_thread.start()

    def stop(self) -> None:
        """Stop serving and release the socket; idempotent."""
        with self._stop_lock:
            if self._stopped.is_set():
                return
            self._stopped.set()
        self.shutdown()
        self.server_close()

    def kill(self) -> None:
        """Die like a lost machine: stop accepting, close the socket.

        Runs the shutdown off-thread because a ``kill`` fault triggers it
        from inside a handler thread, and ``shutdown()`` joins the serve
        loop.
        """
        self.killed = True
        threading.Thread(target=self.stop, daemon=True).start()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the server has stopped (CLI foreground mode)."""
        return self._stopped.wait(timeout=timeout)


# ------------------------------------------------------------- remote executor
class RemoteShardError(RuntimeError):
    """A shard could not be solved remotely within its retry budget."""


#: Transient dispatch failures worth retrying on another worker: connection
#: errors and timeouts (``URLError`` subclasses ``OSError``), protocol-level
#: breakage (``RemoteDisconnected`` after a ``drop``), and responses that
#: fail wire validation (``corrupt`` in transit).
_RETRYABLE = (OSError, http.client.HTTPException, WirePayloadError)


class _WorkerSolveError(RuntimeError):
    """The worker reached the solve and the solve itself failed (HTTP 500).

    Not transient: retrying a deterministic numerical failure elsewhere
    yields the same failure, so it short-circuits the retry loop.
    """


@dataclass
class _ShardStats:
    """Per-shard dispatch bookkeeping, reported via the executor's stats."""

    attempts: int = 0
    retries: int = 0
    redispatches: int = 0
    duplicates_dropped: int = 0


@dataclass(frozen=True)
class _ShardOutcome:
    """What a shard job hands the gather loop."""

    result: ShardResult
    fingerprint: str
    stats: _ShardStats


class RemoteExecutor(ShardExecutor):
    """Scatter shards across HTTP worker endpoints, gather bit-identically.

    Parameters
    ----------
    endpoints:
        Worker base URLs (``http://host:port``).  Shards round-robin across
        them; every retry rotates to the next endpoint (failover).
    timeout:
        Per-dispatch socket timeout in seconds.
    max_attempts:
        Dispatch attempts per shard before :class:`RemoteShardError`.
    backoff:
        Base retry delay in seconds; attempt ``k`` waits
        ``min(backoff * 2^(k-1), backoff_cap)``.
    backoff_cap:
        Upper bound on a single retry delay.
    straggler_after:
        Optional straggler threshold: a dispatch silent for this long is
        raced against the next endpoint (first valid completion wins; the
        loser is deduplicated by fingerprint).  ``None`` disables racing.
    max_workers:
        Concurrent shard dispatches (thread-pool width); defaults to
        ``2 * len(endpoints)``.  Serialization happens on these threads,
        so encoding shard N overlaps with shard M solving remotely.
    faults:
        Optional :class:`FaultPlan`; the executor consumes ``duplicate``
        faults (deliberate double dispatch) and passes every dispatch's
        ``(shard, attempt)`` to workers, which consume the server-side
        kinds.
    """

    name = "remote"

    def __init__(
        self,
        endpoints: Sequence[str],
        timeout: float = 30.0,
        max_attempts: int = 3,
        backoff: float = 0.1,
        backoff_cap: float = 2.0,
        straggler_after: Optional[float] = None,
        max_workers: Optional[int] = None,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        self.endpoints = [self._normalize_endpoint(e) for e in endpoints]
        if not self.endpoints:
            raise ValueError("RemoteExecutor needs at least one worker endpoint")
        if timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be at least 1, got {max_attempts}")
        if backoff < 0:
            raise ValueError(f"backoff must be non-negative, got {backoff}")
        if backoff_cap < 0:
            raise ValueError(f"backoff_cap must be non-negative, got {backoff_cap}")
        if straggler_after is not None and straggler_after <= 0:
            raise ValueError(
                f"straggler_after must be positive or None, got {straggler_after}"
            )
        if max_workers is None:
            max_workers = 2 * len(self.endpoints)
        self.max_workers = validate_worker_count(max_workers, type(self).__name__)
        self.timeout = float(timeout)
        self.max_attempts = int(max_attempts)
        self.backoff = float(backoff)
        self.backoff_cap = float(backoff_cap)
        self.straggler_after = (
            None if straggler_after is None else float(straggler_after)
        )
        self.faults = faults
        self._stats: Dict[int, _ShardStats] = {}
        self._stats_lock = threading.Lock()

    @staticmethod
    def _normalize_endpoint(endpoint: str) -> str:
        endpoint = str(endpoint).strip().rstrip("/")
        if not endpoint:
            raise ValueError("worker endpoint must be non-empty")
        if not endpoint.startswith(("http://", "https://")):
            endpoint = f"http://{endpoint}"
        return endpoint

    @property
    def workers(self) -> int:
        """Remote endpoints this backend fans out to."""
        return len(self.endpoints)

    # ------------------------------------------------------------- statistics
    @property
    def last_attempts(self) -> Dict[int, int]:
        """Shard index → total dispatches of the most recent ``execute``."""
        with self._stats_lock:
            return {index: s.attempts for index, s in self._stats.items()}

    @property
    def last_retries(self) -> Dict[int, int]:
        """Shard index → failed-then-retried dispatches of the last run."""
        with self._stats_lock:
            return {index: s.retries for index, s in self._stats.items()}

    @property
    def last_redispatches(self) -> Dict[int, int]:
        """Shard index → straggler/duplicate extra dispatches of the last run."""
        with self._stats_lock:
            return {index: s.redispatches for index, s in self._stats.items()}

    @property
    def last_duplicates_dropped(self) -> int:
        """Duplicated completions deduplicated by fingerprint in the last run."""
        with self._stats_lock:
            return sum(s.duplicates_dropped for s in self._stats.values())

    # -------------------------------------------------------------- execution
    def execute(
        self, prepared: List[PreparedSite], plan: ShardPlan
    ) -> Tuple[ShardPlan, Dict[int, SelfAugmentedResult]]:
        if not plan.shards:
            return plan, {}
        check_reproducible(prepared, plan, type(self).__name__)
        with self._stats_lock:
            self._stats = {}

        results: Dict[int, SelfAugmentedResult] = {}
        gathered: Dict[str, ShardResult] = {}
        width = min(self.max_workers, len(plan.shards))
        with ThreadPoolExecutor(
            max_workers=width, thread_name_prefix="repro-remote-scatter"
        ) as pool:
            futures = {
                position: pool.submit(self._run_shard, shard, prepared, position)
                for position, shard in enumerate(plan.shards)
            }
            for position, shard in enumerate(plan.shards):
                try:
                    outcome = futures[position].result()
                except Exception as exc:
                    for later in list(futures.values())[position + 1 :]:
                        later.cancel()
                    if isinstance(exc, RemoteShardError):
                        raise
                    sites = ", ".join(repr(site) for site in shard.sites)
                    raise RemoteShardError(
                        f"remote worker failed solving shard {shard.index} "
                        f"(sites {sites}): {exc}"
                    ) from exc
                # Gather-level idempotency guard: a fingerprint that already
                # landed (shouldn't happen across distinct shards — every
                # shard hashes differently) is never applied twice.
                if outcome.fingerprint not in gathered:
                    gathered[outcome.fingerprint] = outcome.result
                plan, shard_results = _gather(
                    plan, shard, gathered[outcome.fingerprint]
                )
                results.update(shard_results)
                with self._stats_lock:
                    self._stats[shard.index] = outcome.stats
        return plan, results

    # ----------------------------------------------------- per-shard dispatch
    def _endpoint_for(self, position: int, attempt: int) -> str:
        """Round-robin start by plan position, rotate per attempt (failover)."""
        return self.endpoints[(position + attempt) % len(self.endpoints)]

    def _next_endpoint(self, endpoint: str) -> str:
        """The endpoint after ``endpoint`` in rotation (backup dispatches)."""
        index = self.endpoints.index(endpoint)
        return self.endpoints[(index + 1) % len(self.endpoints)]

    def _run_shard(
        self, shard: Shard, prepared: Sequence[PreparedSite], position: int
    ) -> _ShardOutcome:
        """Serialize, dispatch (with retry/failover), decode one shard."""
        payload = requests_to_bytes(
            [scatter_request(prepared[index]) for index in shard.members]
        )
        fingerprint = shard_fingerprint(payload, shard.index)
        stats = _ShardStats()
        delay = self.backoff
        last_error: Optional[BaseException] = None
        for attempt in range(self.max_attempts):
            if attempt:
                stats.retries += 1
                if delay > 0:
                    time.sleep(min(delay, self.backoff_cap))
                delay *= 2.0
            endpoint = self._endpoint_for(position, attempt)
            try:
                result = self._dispatch(
                    shard, payload, fingerprint, attempt, endpoint, stats
                )
            except _WorkerSolveError as exc:
                sites = ", ".join(repr(site) for site in shard.sites)
                raise RemoteShardError(
                    f"remote worker failed solving shard {shard.index} "
                    f"(sites {sites}): {exc}"
                ) from exc
            except _RETRYABLE as exc:
                last_error = exc
                continue
            return _ShardOutcome(
                result=result, fingerprint=fingerprint, stats=stats
            )
        sites = ", ".join(repr(site) for site in shard.sites)
        raise RemoteShardError(
            f"remote worker failed solving shard {shard.index} (sites {sites}) "
            f"after {stats.attempts} dispatch(es) over {len(self.endpoints)} "
            f"endpoint(s); last error: {type(last_error).__name__}: {last_error}"
        ) from last_error

    def _dispatch(
        self,
        shard: Shard,
        payload: bytes,
        fingerprint: str,
        attempt: int,
        endpoint: str,
        stats: _ShardStats,
    ) -> ShardResult:
        """One dispatch attempt, including duplicate/straggler double-sends."""
        task = shard_task_to_bytes(payload, shard.index, attempt=attempt)
        duplicate = None
        if self.faults is not None:
            duplicate = self.faults.take(
                shard.index, attempt, kinds=_CLIENT_FAULTS
            )
        if duplicate is not None:
            return self._dispatch_duplicated(
                shard, task, fingerprint, endpoint, stats
            )
        if self.straggler_after is None or len(self.endpoints) < 2:
            stats.attempts += 1
            return self._decode(self._post(endpoint, task), shard, fingerprint)
        return self._dispatch_racing(shard, task, fingerprint, endpoint, stats)

    def _dispatch_duplicated(
        self,
        shard: Shard,
        task: bytes,
        fingerprint: str,
        endpoint: str,
        stats: _ShardStats,
    ) -> ShardResult:
        """A ``duplicate`` fault: send twice, gather both, dedup by hash.

        Both completions are fully decoded and fingerprint-checked; the
        second is dropped *because* its fingerprint matches the first —
        the deterministic idempotency path the chaos suite pins.
        """
        backup = self._next_endpoint(endpoint)
        stats.attempts += 2
        stats.redispatches += 1
        with ThreadPoolExecutor(
            max_workers=2, thread_name_prefix="repro-remote-duplicate"
        ) as pool:
            first = pool.submit(self._post, endpoint, task)
            second = pool.submit(self._post, backup, task)
            primary = self._decode(first.result(), shard, fingerprint)
            duplicate = self._decode(second.result(), shard, fingerprint)
        # Same fingerprint == same shard bytes: drop the duplicate.
        assert duplicate is not None
        stats.duplicates_dropped += 1
        return primary

    def _dispatch_racing(
        self,
        shard: Shard,
        task: bytes,
        fingerprint: str,
        endpoint: str,
        stats: _ShardStats,
    ) -> ShardResult:
        """Primary dispatch with straggler re-dispatch to a second worker."""
        pool = ThreadPoolExecutor(
            max_workers=2, thread_name_prefix="repro-remote-race"
        )
        try:
            stats.attempts += 1
            pending = {pool.submit(self._post, endpoint, task)}
            done, pending = wait(pending, timeout=self.straggler_after)
            if not done:
                # Straggler: race a second worker; first valid result wins,
                # the loser's completion is discarded (same fingerprint).
                stats.attempts += 1
                stats.redispatches += 1
                backup = self._next_endpoint(endpoint)
                pending = set(pending) | {pool.submit(self._post, backup, task)}
            last_error: Optional[BaseException] = None
            while done or pending:
                for future in done:
                    try:
                        return self._decode(future.result(), shard, fingerprint)
                    except _RETRYABLE as exc:
                        last_error = exc
                if not pending:
                    break
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
            raise last_error if last_error is not None else RemoteShardError(
                f"straggler race for shard {shard.index} produced no completion"
            )
        finally:
            pool.shutdown(wait=False)

    def _post(self, endpoint: str, task: bytes) -> bytes:
        """POST one task payload; return the raw response body."""
        request = urllib.request.Request(
            f"{endpoint}/api/shard",
            data=task,
            headers={"Content-Type": "application/octet-stream"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read()
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read().decode("utf-8")).get("error", "")
            except Exception:  # noqa: BLE001 — diagnostics only
                detail = ""
            if exc.code >= 500:
                # The worker reached the solve and the solve failed — a
                # deterministic error that retrying elsewhere cannot fix.
                raise _WorkerSolveError(
                    detail or f"worker answered HTTP {exc.code}"
                ) from exc
            raise WirePayloadError(
                f"worker {endpoint} rejected the task (HTTP {exc.code}): "
                f"{detail or 'no detail'}"
            ) from exc

    def _decode(
        self, body: bytes, shard: Shard, expected_fingerprint: str
    ) -> ShardResult:
        """Validate one completion against the dispatch it answers."""
        result, fingerprint, shard_index = shard_result_from_bytes(body)
        if fingerprint != expected_fingerprint or shard_index != shard.index:
            raise WirePayloadError(
                f"shard result answers fingerprint {fingerprint[:12]}… "
                f"(shard {shard_index}), dispatch expected "
                f"{expected_fingerprint[:12]}… (shard {shard.index})"
            )
        if len(result.results) != len(shard.members):
            raise WirePayloadError(
                f"shard {shard.index} result carries {len(result.results)} "
                f"member results, expected {len(shard.members)}"
            )
        return result
