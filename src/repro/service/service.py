"""The batched multi-site update service: an ingest → plan → execute pipeline.

``UpdateService`` is the canonical way to refresh fingerprint databases.  It
accepts any number of :class:`~repro.service.types.UpdateRequest` objects —
sites with heterogeneous matrix shapes and factorisation ranks are fine —
and runs the whole fleet through a three-stage pipeline:

1. **Ingest / prepare** — per-site Inherent Correlation Acquisition (MIC +
   LRR, skipped when the request carries a precomputed ``correlation``), the
   Constraint-1 prediction and the staged
   :class:`~repro.core.self_augmented.SweepState`
   (:func:`~repro.service.prepare.prepare_request`).  Requests can come from
   anywhere: built in memory by :class:`~repro.service.fleet.FleetCampaign`,
   or loaded from a serialized payload via :func:`repro.io.load_requests`.
2. **Plan** — :func:`~repro.service.shard.plan_shards` groups the batched
   sites by factorisation rank (equal-rank stacks concatenate without
   padding, preserving the bitwise-parity guarantee; identity-padding is NOT
   bit-exact) and splits each rank group into shards sized by the
   :class:`~repro.service.shard.ShardConfig` byte budget, so one process can
   refresh hundreds of sites without the per-sweep system stack outgrowing
   cache.
3. **Execute** — a pluggable :class:`~repro.service.executor.ShardExecutor`
   backend runs the plan: the default
   :class:`~repro.service.executor.SerialExecutor` advances every shard in
   this process through :func:`~repro.core.stacked.solve_shard`, while
   :class:`~repro.service.executor.ProcessExecutor` scatters shards over a
   process pool (workers rehydrate their shard from a :mod:`repro.io` wire
   payload) and gathers the results — bit-identical either way.  Per-shard
   singularity isolation applies in both: a shard whose stacked run dies on
   a numerical error falls back to re-preparing and solving its member
   sites individually, so co-tenants are never left with the abandoned
   run's partially-advanced sweeps (a site that fails even in isolation
   raises a ``RuntimeError`` naming it, so the caller can exclude it and
   resubmit).  Reports are reassembled in request order, and the executed
   plan is available as :attr:`UpdateService.last_plan` and travels on
   :class:`~repro.service.types.FleetReport` along with the executor name
   and worker count.

Per-site results are bit-identical to independent
:meth:`~repro.core.updater.IUpdater.update` runs for every shard split and
every executor backend — pinned by ``tests/service/test_fleet_parity.py``
and ``tests/service/test_executor.py``: batched LU factorises each slice
independently, and heterogeneous ranks are solved per rank group rather
than padded, so no site's floating-point result is perturbed.

Sites configured with the ``"looped"`` reference backend cannot ride the
stacked solve; the service runs them through the same reference path
``IUpdater`` would use, so mixed fleets stay correct.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Union

from repro.core.self_augmented import solve_state
from repro.core.stacked import sweep_stack_nbytes
from repro.service.executor import ShardExecutor, resolve_executor
from repro.service.prepare import PreparedSite, prepare_request
from repro.service.shard import (
    ShardConfig,
    ShardPlan,
    plan_shards,
    resolve_shard_config,
)
from repro.service.types import (
    FleetReport,
    UpdateReport,
    UpdateRequest,
    WarmFactors,
)

__all__ = ["UpdateService"]


class UpdateService:
    """Fleet-first fingerprint update service over the stacked ALS core."""

    def __init__(self) -> None:
        self._last_stacked_sweeps = 0
        self._last_plan: Optional[ShardPlan] = None
        self._last_executor: Optional[ShardExecutor] = None
        self._last_sweeps_saved: Dict[str, int] = {}

    @property
    def last_stacked_sweeps(self) -> int:
        """Lockstep sweeps the most recent :meth:`update_fleet` executed.

        With a sharded plan this is the maximum over the per-shard sweep
        counts, which equals the maximum over the per-site sweep counts —
        the same fleet-level iteration number the unsharded lockstep
        reported.
        """
        return self._last_stacked_sweeps

    @property
    def last_plan(self) -> Optional[ShardPlan]:
        """The executed shard plan of the most recent :meth:`update_fleet`."""
        return self._last_plan

    @property
    def last_executor(self) -> Optional[ShardExecutor]:
        """The execution backend the most recent :meth:`update_fleet` used."""
        return self._last_executor

    @property
    def last_sweeps_saved(self) -> Dict[str, int]:
        """Per-site sweeps the most recent warm-started refresh saved.

        ``previous generation's sweeps - this refresh's sweeps`` for every
        site that warm-started from a ``warm_from`` report; empty for cold
        refreshes.
        """
        return dict(self._last_sweeps_saved)

    def update(self, request: UpdateRequest) -> UpdateReport:
        """Refresh a single site (a one-request fleet)."""
        return self.update_fleet([request])[0]

    def update_fleet(
        self,
        requests: Sequence[UpdateRequest],
        shards: Union[ShardConfig, int, None] = None,
        executor: Union[ShardExecutor, str, None] = None,
        warm_from: Optional[FleetReport] = None,
    ) -> List[UpdateReport]:
        """Refresh every requested site through the prepare/plan/execute pipeline.

        Parameters
        ----------
        requests:
            The fleet, one request per site; heterogeneous shapes and ranks
            are fine.
        shards:
            Shard scheduling: ``None`` (default) plans one unbounded shard
            per rank group — the historical all-in-lockstep behaviour; a
            :class:`~repro.service.shard.ShardConfig` (or a plain byte
            budget) additionally splits each rank group so every shard's
            per-sweep system stack fits the budget.
        executor:
            Execution backend: ``None`` / ``"serial"`` (default) solves every
            shard in this process; ``"process"`` or a configured
            :class:`~repro.service.executor.ProcessExecutor` scatters shards
            over worker processes.  Results are bit-identical either way
            (``ProcessExecutor`` requires integer request seeds).
        warm_from:
            Previous generation's :class:`~repro.service.types.FleetReport`.
            Sites present in it (with matching shapes and rank) resume from
            its factors instead of a cold init; sites it does not cover —
            or whose geometry changed — fall back to the cold path
            unchanged.  Per-site sweeps saved land in
            :attr:`last_sweeps_saved`.

        Returns the per-site reports in request order; any shard split and
        any executor backend yields bit-identical per-site results.
        Looped-backend sites are solved with the per-column reference
        implementation as before.
        """
        requests = list(requests)
        backend = resolve_executor(executor)
        if not requests:
            self._last_stacked_sweeps = 0
            self._last_plan = None
            self._last_executor = backend
            self._last_sweeps_saved = {}
            return []
        sites = [request.site for request in requests]
        if len(set(sites)) != len(sites):
            raise ValueError(f"duplicate site identifiers in fleet request: {sites}")
        if warm_from is not None:
            requests = [
                self._warm_request(request, warm_from) for request in requests
            ]

        prepared = [self._prepare(request) for request in requests]
        plan = self._plan(prepared, resolve_shard_config(shards))
        plan, solver_results = backend.execute(prepared, plan)

        self._last_plan = plan
        self._last_executor = backend
        self._last_stacked_sweeps = max(
            (shard.sweeps for shard in plan.shards), default=0
        )

        reports = []
        for index, site in enumerate(prepared):
            if site.backend == "batched":
                reports.append(site.report(solver_results[index]))
            else:
                reports.append(site.report(solve_state(site.state)))

        self._last_sweeps_saved = {}
        if warm_from is not None:
            for report in reports:
                if not report.warm_started:
                    continue
                try:
                    previous = warm_from.report_for(report.site)
                except KeyError:
                    continue
                self._last_sweeps_saved[report.site] = (
                    previous.sweeps - report.sweeps
                )
        return reports

    # ------------------------------------------------------------ preparation
    def _prepare(self, request: UpdateRequest) -> PreparedSite:
        """Stage one site's solve (see :func:`repro.service.prepare.prepare_request`)."""
        return prepare_request(request)

    def _warm_request(
        self, request: UpdateRequest, warm_from: FleetReport
    ) -> UpdateRequest:
        """Attach the previous generation's factors to one site's request.

        Falls back to the cold request untouched when the site is absent
        from the previous report, already carries explicit warm factors, or
        the previous factors no longer fit the request's geometry (shape or
        resolved rank changed between generations).
        """
        if request.warm_start is not None:
            return request
        try:
            previous = warm_from.report_for(request.site)
        except KeyError:
            return request
        solver = previous.result.solver
        m, n = request.baseline.shape
        cfg = request.config.resolved_solver()
        rank = min(cfg.rank if cfg.rank is not None else m, m, n)
        if solver.left.shape != (m, rank) or solver.right.shape != (n, rank):
            return request
        return replace(
            request,
            warm_start=WarmFactors(
                left=solver.left,
                right=solver.right,
                objective=solver.objective,
            ),
        )

    # --------------------------------------------------------------- planning
    def _plan(
        self, prepared: Sequence[PreparedSite], config: ShardConfig
    ) -> ShardPlan:
        """Build the rank-grouped, byte-budgeted schedule of the batched sites.

        Looped-backend sites never ride the stacked solve, so they stay out
        of the plan and run on the per-column reference path at report time.
        """
        stacked = [
            (index, site)
            for index, site in enumerate(prepared)
            if site.backend == "batched"
        ]
        return plan_shards(
            sites=[site.request.site for _, site in stacked],
            ranks=[site.state.rank for _, site in stacked],
            stack_bytes=[sweep_stack_nbytes(site.state) for _, site in stacked],
            config=config,
            indices=[index for index, _ in stacked],
        )
