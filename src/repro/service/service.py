"""The batched multi-site update service.

``UpdateService`` is the canonical way to refresh fingerprint databases.  It
accepts any number of :class:`~repro.service.types.UpdateRequest` objects —
sites with heterogeneous matrix shapes and factorisation ranks are fine —
and runs the whole fleet's MIC selection, LRR solve and self-augmented RSVD
through the batched linear-algebra primitives:

* MIC + LRR are per-site by nature (each site has its own baseline) and are
  skipped entirely when the request carries a precomputed ``correlation``;
* every alternating-least-squares sweep concatenates all sites' per-column /
  per-row normal-equation stacks into **one** batched LAPACK solve via
  :func:`~repro.core.stacked.run_stacked_sweeps`, rather than looping a
  Python-level solver over the sites.

Per-site results are bit-identical to independent
:meth:`~repro.core.updater.IUpdater.update` runs (pinned by
``tests/service/test_fleet_parity.py``): batched LU factorises each slice
independently, and heterogeneous ranks are solved per rank group rather than
padded, so no site's floating-point result is perturbed.

Sites configured with the ``"looped"`` reference backend cannot ride the
stacked solve; the service runs them through the same reference path
``IUpdater`` would use, so mixed fleets stay correct.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.lrr import LRRResult, low_rank_representation
from repro.core.mic import MICResult, select_reference_locations
from repro.core.self_augmented import SelfAugmentedResult, SweepState, solve_state
from repro.core.stacked import run_stacked_sweeps
from repro.core.updater import UpdateResult
from repro.fingerprint.matrix import FingerprintMatrix
from repro.service.types import UpdateReport, UpdateRequest

__all__ = ["UpdateService"]


@dataclass
class _PreparedSite:
    """A request after Inherent Correlation Acquisition, ready to solve."""

    request: UpdateRequest
    mic: MICResult
    lrr: LRRResult
    reference_indices: Tuple[int, ...]
    state: SweepState

    @property
    def backend(self) -> str:
        return self.state.cfg.solver_backend

    def report(self, solver_result: SelfAugmentedResult) -> UpdateReport:
        request = self.request
        baseline = request.baseline
        matrix = FingerprintMatrix(
            values=solver_result.estimate,
            locations_per_link=baseline.locations_per_link,
            no_decrease_mask=baseline.no_decrease_mask.copy()
            if baseline.no_decrease_mask is not None
            else None,
        )
        result = UpdateResult(
            matrix=matrix,
            reference_indices=self.reference_indices,
            mic=self.mic,
            lrr=self.lrr,
            solver=solver_result,
        )
        return UpdateReport(
            site=request.site,
            result=result,
            sweeps=solver_result.iterations,
            converged=solver_result.converged,
            solver_backend=self.backend,
        )


class UpdateService:
    """Fleet-first fingerprint update service over the stacked ALS core."""

    def __init__(self) -> None:
        self._last_stacked_sweeps = 0

    @property
    def last_stacked_sweeps(self) -> int:
        """Lockstep sweeps the most recent :meth:`update_fleet` executed."""
        return self._last_stacked_sweeps

    def update(self, request: UpdateRequest) -> UpdateReport:
        """Refresh a single site (a one-request fleet)."""
        return self.update_fleet([request])[0]

    def update_fleet(self, requests: Sequence[UpdateRequest]) -> List[UpdateReport]:
        """Refresh every requested site, stacking their sweeps into one solve.

        Returns the per-site reports in request order.  All sites on the
        (default) batched backend advance in lockstep through
        :func:`~repro.core.stacked.run_stacked_sweeps`; looped-backend sites
        are solved with the per-column reference implementation.
        """
        requests = list(requests)
        if not requests:
            return []
        sites = [request.site for request in requests]
        if len(set(sites)) != len(sites):
            raise ValueError(f"duplicate site identifiers in fleet request: {sites}")

        prepared = [self._prepare(request) for request in requests]
        stacked = [site for site in prepared if site.backend == "batched"]
        self._last_stacked_sweeps = run_stacked_sweeps(
            [site.state for site in stacked]
        )

        reports = []
        for site in prepared:
            if site.backend == "batched":
                reports.append(site.report(site.state.finalize()))
            else:
                reports.append(site.report(solve_state(site.state)))
        return reports

    # ------------------------------------------------------------ preparation
    def _prepare(self, request: UpdateRequest) -> _PreparedSite:
        """Run Inherent Correlation Acquisition and stage the site's solve.

        This is the per-site half of the pipeline ``IUpdater.update`` used to
        own: MIC selection + LRR on the baseline, the Constraint-1 prediction
        ``P = X_R Z``, and the merge of the fresh reference columns into the
        observation mask.
        """
        config = request.config
        if request.correlation is not None:
            mic, lrr = request.correlation
        else:
            mic = select_reference_locations(
                request.baseline.values,
                count=config.reference_count,
                strategy=config.mic_strategy,
            )
            lrr = low_rank_representation(
                request.baseline.values, mic.mic_matrix, config=config.lrr
            )

        reference_indices = request.reference_indices
        if reference_indices is None:
            reference_indices = tuple(int(i) for i in mic.indices)
        if request.reference_matrix.shape[1] != len(reference_indices):
            raise ValueError(
                "reference_matrix must have one column per reference index"
            )

        # Constraint 1 prediction P = X_R Z, valid when the reference columns
        # match the MIC columns the correlation matrix was built from.
        if len(reference_indices) == lrr.correlation.shape[0]:
            prediction: Optional[np.ndarray] = lrr.predict(request.reference_matrix)
        else:
            prediction = None

        observed = request.no_decrease_matrix.copy()
        mask = request.no_decrease_mask.copy()
        if config.include_reference_in_mask:
            for k, j in enumerate(reference_indices):
                observed[:, j] = request.reference_matrix[:, k]
                mask[:, j] = 1.0

        state = SweepState(
            observed,
            mask,
            request.baseline.locations_per_link,
            prediction=prediction,
            config=config.resolved_solver(),
            rng=request.rng,
        )
        return _PreparedSite(
            request=request,
            mic=mic,
            lrr=lrr,
            reference_indices=reference_indices,
            state=state,
        )
