"""The batched multi-site update service: an ingest → plan → execute pipeline.

``UpdateService`` is the canonical way to refresh fingerprint databases.  It
accepts any number of :class:`~repro.service.types.UpdateRequest` objects —
sites with heterogeneous matrix shapes and factorisation ranks are fine —
and runs the whole fleet through a three-stage pipeline:

1. **Ingest / prepare** — per-site Inherent Correlation Acquisition (MIC +
   LRR, skipped when the request carries a precomputed ``correlation``), the
   Constraint-1 prediction and the staged
   :class:`~repro.core.self_augmented.SweepState`.  Requests can come from
   anywhere: built in memory by :class:`~repro.service.fleet.FleetCampaign`,
   or loaded from a serialized payload via :func:`repro.io.load_requests`.
2. **Plan** — :func:`~repro.service.shard.plan_shards` groups the batched
   sites by factorisation rank (equal-rank stacks concatenate without
   padding, preserving the bitwise-parity guarantee; identity-padding is NOT
   bit-exact) and splits each rank group into shards sized by the
   :class:`~repro.service.shard.ShardConfig` byte budget, so one process can
   refresh hundreds of sites without the per-sweep system stack outgrowing
   cache.
3. **Execute** — every shard advances only its own states through
   :func:`~repro.core.stacked.run_stacked_sweeps`; a shard whose stacked run
   dies on a numerical error falls back to re-preparing and solving its
   member sites individually, so co-tenants are never left with the
   abandoned run's partially-advanced sweeps (per-shard singularity
   isolation; a site that fails even in isolation raises a ``RuntimeError``
   naming it, so the caller can exclude it and resubmit).  Reports are
   reassembled in request order, and the executed plan is available as
   :attr:`UpdateService.last_plan` and travels on
   :class:`~repro.service.types.FleetReport`.

Per-site results are bit-identical to independent
:meth:`~repro.core.updater.IUpdater.update` runs for every shard split —
pinned by ``tests/service/test_fleet_parity.py``: batched LU factorises each
slice independently, and heterogeneous ranks are solved per rank group
rather than padded, so no site's floating-point result is perturbed.

Sites configured with the ``"looped"`` reference backend cannot ride the
stacked solve; the service runs them through the same reference path
``IUpdater`` would use, so mixed fleets stay correct.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.lrr import LRRResult, low_rank_representation
from repro.core.mic import MICResult, select_reference_locations
from repro.core.self_augmented import SelfAugmentedResult, SweepState, solve_state
from repro.core.stacked import run_stacked_sweeps, sweep_stack_nbytes
from repro.core.updater import UpdateResult
from repro.fingerprint.matrix import FingerprintMatrix
from repro.service.shard import (
    Shard,
    ShardConfig,
    ShardPlan,
    mark_executed,
    plan_shards,
    resolve_shard_config,
)
from repro.service.types import UpdateReport, UpdateRequest

__all__ = ["UpdateService"]


@dataclass
class _PreparedSite:
    """A request after Inherent Correlation Acquisition, ready to solve."""

    request: UpdateRequest
    mic: MICResult
    lrr: LRRResult
    reference_indices: Tuple[int, ...]
    state: SweepState

    @property
    def backend(self) -> str:
        return self.state.cfg.solver_backend

    def report(self, solver_result: SelfAugmentedResult) -> UpdateReport:
        request = self.request
        baseline = request.baseline
        matrix = FingerprintMatrix(
            values=solver_result.estimate,
            locations_per_link=baseline.locations_per_link,
            no_decrease_mask=baseline.no_decrease_mask.copy()
            if baseline.no_decrease_mask is not None
            else None,
        )
        result = UpdateResult(
            matrix=matrix,
            reference_indices=self.reference_indices,
            mic=self.mic,
            lrr=self.lrr,
            solver=solver_result,
        )
        return UpdateReport(
            site=request.site,
            result=result,
            sweeps=solver_result.iterations,
            converged=solver_result.converged,
            solver_backend=self.backend,
        )


class UpdateService:
    """Fleet-first fingerprint update service over the stacked ALS core."""

    def __init__(self) -> None:
        self._last_stacked_sweeps = 0
        self._last_plan: Optional[ShardPlan] = None

    @property
    def last_stacked_sweeps(self) -> int:
        """Lockstep sweeps the most recent :meth:`update_fleet` executed.

        With a sharded plan this is the maximum over the per-shard sweep
        counts, which equals the maximum over the per-site sweep counts —
        the same fleet-level iteration number the unsharded lockstep
        reported.
        """
        return self._last_stacked_sweeps

    @property
    def last_plan(self) -> Optional[ShardPlan]:
        """The executed shard plan of the most recent :meth:`update_fleet`."""
        return self._last_plan

    def update(self, request: UpdateRequest) -> UpdateReport:
        """Refresh a single site (a one-request fleet)."""
        return self.update_fleet([request])[0]

    def update_fleet(
        self,
        requests: Sequence[UpdateRequest],
        shards: Union[ShardConfig, int, None] = None,
    ) -> List[UpdateReport]:
        """Refresh every requested site through the prepare/plan/execute pipeline.

        Parameters
        ----------
        requests:
            The fleet, one request per site; heterogeneous shapes and ranks
            are fine.
        shards:
            Shard scheduling: ``None`` (default) plans one unbounded shard
            per rank group — the historical all-in-lockstep behaviour; a
            :class:`~repro.service.shard.ShardConfig` (or a plain byte
            budget) additionally splits each rank group so every shard's
            per-sweep system stack fits the budget.

        Returns the per-site reports in request order; any shard split
        yields bit-identical per-site results.  Looped-backend sites are
        solved with the per-column reference implementation as before.
        """
        requests = list(requests)
        if not requests:
            self._last_stacked_sweeps = 0
            self._last_plan = None
            return []
        sites = [request.site for request in requests]
        if len(set(sites)) != len(sites):
            raise ValueError(f"duplicate site identifiers in fleet request: {sites}")

        prepared = [self._prepare(request) for request in requests]
        plan = self._plan(prepared, resolve_shard_config(shards))
        plan = self._execute(prepared, plan)

        self._last_plan = plan
        self._last_stacked_sweeps = max(
            (shard.sweeps for shard in plan.shards), default=0
        )

        reports = []
        for site in prepared:
            if site.backend == "batched":
                reports.append(site.report(site.state.finalize()))
            else:
                reports.append(site.report(solve_state(site.state)))
        return reports

    # ------------------------------------------------------------ preparation
    def _prepare(self, request: UpdateRequest) -> _PreparedSite:
        """Run Inherent Correlation Acquisition and stage the site's solve.

        This is the per-site half of the pipeline ``IUpdater.update`` used to
        own: MIC selection + LRR on the baseline, the Constraint-1 prediction
        ``P = X_R Z``, and the merge of the fresh reference columns into the
        observation mask.
        """
        config = request.config
        if request.correlation is not None:
            mic, lrr = request.correlation
        else:
            mic = select_reference_locations(
                request.baseline.values,
                count=config.reference_count,
                strategy=config.mic_strategy,
            )
            lrr = low_rank_representation(
                request.baseline.values, mic.mic_matrix, config=config.lrr
            )

        reference_indices = request.reference_indices
        if reference_indices is None:
            reference_indices = tuple(int(i) for i in mic.indices)
        if request.reference_matrix.shape[1] != len(reference_indices):
            raise ValueError(
                "reference_matrix must have one column per reference index"
            )

        # Constraint 1 prediction P = X_R Z, valid when the reference columns
        # match the MIC columns the correlation matrix was built from.
        if len(reference_indices) == lrr.correlation.shape[0]:
            prediction: Optional[np.ndarray] = lrr.predict(request.reference_matrix)
        else:
            prediction = None

        observed = request.no_decrease_matrix.copy()
        mask = request.no_decrease_mask.copy()
        if config.include_reference_in_mask:
            for k, j in enumerate(reference_indices):
                observed[:, j] = request.reference_matrix[:, k]
                mask[:, j] = 1.0

        state = SweepState(
            observed,
            mask,
            request.baseline.locations_per_link,
            prediction=prediction,
            config=config.resolved_solver(),
            rng=request.rng,
        )
        return _PreparedSite(
            request=request,
            mic=mic,
            lrr=lrr,
            reference_indices=reference_indices,
            state=state,
        )

    # --------------------------------------------------------------- planning
    def _plan(
        self, prepared: Sequence[_PreparedSite], config: ShardConfig
    ) -> ShardPlan:
        """Build the rank-grouped, byte-budgeted schedule of the batched sites.

        Looped-backend sites never ride the stacked solve, so they stay out
        of the plan and run on the per-column reference path at report time.
        """
        stacked = [
            (index, site)
            for index, site in enumerate(prepared)
            if site.backend == "batched"
        ]
        return plan_shards(
            sites=[site.request.site for _, site in stacked],
            ranks=[site.state.rank for _, site in stacked],
            stack_bytes=[sweep_stack_nbytes(site.state) for _, site in stacked],
            config=config,
            indices=[index for index, _ in stacked],
        )

    # -------------------------------------------------------------- execution
    def _execute(
        self, prepared: List[_PreparedSite], plan: ShardPlan
    ) -> ShardPlan:
        """Advance every shard's states; isolate numerical failures per shard.

        A shard whose stacked run raises a numerical error is re-solved site
        by site from freshly prepared states, so a pathological site cannot
        corrupt its co-tenants' partially-advanced sweeps.  (In practice the
        stacked primitives already absorb singular slices per slice, so this
        path only fires on hard failures such as an LAPACK non-convergence.)
        Returns the plan with per-shard sweep counts (and any fallbacks)
        recorded.
        """
        for shard in plan.shards:
            states = [prepared[index].state for index in shard.members]
            try:
                sweeps = run_stacked_sweeps(states)
            except (np.linalg.LinAlgError, FloatingPointError):
                sweeps = self._execute_fallback(prepared, shard)
                plan = mark_executed(plan, shard.index, sweeps, fallback=True)
            else:
                plan = mark_executed(plan, shard.index, sweeps)
        return plan

    def _execute_fallback(
        self, prepared: List[_PreparedSite], shard: Shard
    ) -> int:
        """Solve a failed shard's sites one by one from clean states.

        Every member is re-prepared and retried solo so healthy co-tenants
        recover from the abandoned stacked run; only after all retries does
        a site that cannot be solved even in isolation raise, naming every
        offender so the caller can exclude them and resubmit.
        """
        sweeps = 0
        failed = []
        for index in shard.members:
            fresh = self._prepare(prepared[index].request)
            try:
                sweeps = max(sweeps, run_stacked_sweeps([fresh.state]))
            except (np.linalg.LinAlgError, FloatingPointError) as exc:
                failed.append((fresh.request.site, exc))
            else:
                prepared[index] = fresh
        if failed:
            sites = ", ".join(repr(site) for site, _ in failed)
            raise RuntimeError(
                f"sites {sites} failed to solve even in isolation "
                f"(shard {shard.index})"
            ) from failed[0][1]
        return sweeps
