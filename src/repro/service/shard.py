"""Shard planning: split a fleet into cache-sized, rank-grouped batches.

The fleet service used to stack *every* batched site into one lockstep
solve, so a 500-site fleet built one enormous ``(Σ columns, r, r)`` system
stack per sweep regardless of cache size.  The scheduler in this module
turns that into an explicit plan:

1. **Rank grouping** — requests are grouped by factorisation rank, never
   mixed.  Equal-rank stacks concatenate without padding, which preserves
   the bitwise-parity guarantee (identity-padding is *not* bit-exact: BLAS
   picks different kernels for different matrix sizes — see
   :func:`~repro.utils.linalg.pad_rank_stack`).
2. **Byte budgeting** — each rank group is split into shards whose summed
   per-sweep system-stack bytes (:func:`~repro.core.stacked.sweep_stack_nbytes`)
   stay under ``ShardConfig.max_stack_bytes``, defaulting to an L3-ish
   32 MiB so one process can refresh hundreds of sites without the stacked
   solve spilling to main memory.

Because batched LU factorises each slice independently, any shard split of
a rank group is bit-identical, per site, to the unsharded solve — pinned by
``tests/service/test_fleet_parity.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "DEFAULT_MAX_STACK_BYTES",
    "ShardConfig",
    "Shard",
    "ShardPlan",
    "plan_shards",
    "mark_executed",
    "resolve_shard_config",
]

DEFAULT_MAX_STACK_BYTES = 32 * 1024 * 1024
"""Default per-shard system-stack budget (L3-ish: 32 MiB)."""


@dataclass(frozen=True)
class ShardConfig:
    """Configuration of the fleet shard planner.

    Attributes
    ----------
    max_stack_bytes:
        Per-shard budget for the concatenated per-sweep system stack, in
        bytes.  ``None`` disables splitting (one shard per rank group — the
        pre-sharding behaviour).  A site whose own stack exceeds the budget
        still gets a (singleton) shard; the budget bounds *grouping*, it
        never refuses work.
    """

    max_stack_bytes: Optional[int] = DEFAULT_MAX_STACK_BYTES

    def __post_init__(self) -> None:
        if self.max_stack_bytes is not None and self.max_stack_bytes <= 0:
            raise ValueError(
                f"max_stack_bytes must be positive or None, got {self.max_stack_bytes}"
            )


@dataclass(frozen=True)
class Shard:
    """One schedulable unit: same-rank sites solved in one lockstep run.

    Attributes
    ----------
    index:
        Position of the shard in the plan's execution order.
    rank:
        Factorisation rank shared by every member site.
    sites:
        Member site identifiers, in request order.
    members:
        Request positions of the member sites (indices into the request
        sequence the plan was built from).
    stack_bytes:
        Estimated peak system-stack bytes one sweep of this shard
        materialises (sum of the members' per-site estimates).
    sweeps:
        Lockstep sweeps the shard executed (0 until executed).
    fallback:
        Whether execution abandoned the stacked run and solved the member
        sites individually (per-shard singularity isolation).
    """

    index: int
    rank: int
    sites: Tuple[str, ...]
    members: Tuple[int, ...]
    stack_bytes: int
    sweeps: int = 0
    fallback: bool = False

    @property
    def site_count(self) -> int:
        """Number of member sites."""
        return len(self.sites)


@dataclass(frozen=True)
class ShardPlan:
    """The executed (or to-be-executed) shard schedule of one fleet refresh."""

    shards: Tuple[Shard, ...]
    max_stack_bytes: Optional[int]

    @property
    def shard_count(self) -> int:
        """Number of shards in the plan."""
        return len(self.shards)

    @property
    def site_count(self) -> int:
        """Total number of sites across all shards."""
        return sum(shard.site_count for shard in self.shards)

    @property
    def peak_stack_bytes(self) -> int:
        """Largest per-shard system-stack estimate — the memory high-water mark."""
        return max((shard.stack_bytes for shard in self.shards), default=0)

    @property
    def ranks(self) -> Tuple[int, ...]:
        """Distinct factorisation ranks, in first-appearance order."""
        seen: Dict[int, None] = {}
        for shard in self.shards:
            seen.setdefault(shard.rank, None)
        return tuple(seen)

    def summary(self) -> Dict[str, float]:
        """Flat scalar summary (for reporting / CLI output)."""
        return {
            "shards": float(self.shard_count),
            "sites": float(self.site_count),
            "rank_groups": float(len(self.ranks)),
            "peak_stack_bytes": float(self.peak_stack_bytes),
            "fallback_shards": float(sum(s.fallback for s in self.shards)),
        }

    # ------------------------------------------------------------------- wire
    def to_json(self) -> dict:
        """Plain-JSON representation (used by the NPZ report wire format)."""
        return {
            "max_stack_bytes": self.max_stack_bytes,
            "shards": [
                {
                    "index": shard.index,
                    "rank": shard.rank,
                    "sites": list(shard.sites),
                    "members": list(shard.members),
                    "stack_bytes": shard.stack_bytes,
                    "sweeps": shard.sweeps,
                    "fallback": shard.fallback,
                }
                for shard in self.shards
            ],
        }

    @classmethod
    def from_json(cls, data: dict) -> "ShardPlan":
        """Rebuild a plan from :meth:`to_json` output; raises ``ValueError`` on corrupt input."""
        try:
            shards = tuple(
                Shard(
                    index=int(entry["index"]),
                    rank=int(entry["rank"]),
                    sites=tuple(str(site) for site in entry["sites"]),
                    members=tuple(int(i) for i in entry["members"]),
                    stack_bytes=int(entry["stack_bytes"]),
                    sweeps=int(entry["sweeps"]),
                    fallback=bool(entry["fallback"]),
                )
                for entry in data["shards"]
            )
            max_bytes = data["max_stack_bytes"]
            return cls(
                shards=shards,
                max_stack_bytes=None if max_bytes is None else int(max_bytes),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"corrupt shard plan payload: {exc}") from exc


def resolve_shard_config(
    shards: Union[ShardConfig, int, None]
) -> ShardConfig:
    """Normalise the ``shards=`` argument of ``UpdateService.update_fleet``.

    ``None`` keeps the pre-sharding behaviour (unbounded shards, one per
    rank group); an integer is shorthand for ``ShardConfig(max_stack_bytes=n)``.
    """
    if shards is None:
        return ShardConfig(max_stack_bytes=None)
    if isinstance(shards, ShardConfig):
        return shards
    if isinstance(shards, int) and not isinstance(shards, bool):
        return ShardConfig(max_stack_bytes=shards)
    raise TypeError(
        f"shards must be a ShardConfig, a byte budget, or None, got {type(shards).__name__}"
    )


def plan_shards(
    sites: Sequence[str],
    ranks: Sequence[int],
    stack_bytes: Sequence[int],
    config: Optional[ShardConfig] = None,
    indices: Optional[Sequence[int]] = None,
) -> ShardPlan:
    """Group sites by rank and split each group into byte-budgeted shards.

    Parameters
    ----------
    sites, ranks, stack_bytes:
        Parallel per-site sequences: identifier, factorisation rank and
        estimated per-sweep system-stack bytes.
    config:
        Shard configuration; defaults to the L3-ish byte budget.
    indices:
        Optional request positions recorded as the shards' ``members``;
        defaults to ``0..len(sites)-1``.

    Rank groups form in first-appearance order and preserve request order
    internally, so reports reassemble deterministically.  Within a group a
    greedy pass accumulates sites until the next one would exceed the byte
    budget; a single oversized site becomes a singleton shard (the budget
    bounds grouping, it never refuses work).
    """
    if not len(sites) == len(ranks) == len(stack_bytes):
        raise ValueError(
            "sites, ranks and stack_bytes must be parallel sequences "
            f"(got lengths {len(sites)}, {len(ranks)}, {len(stack_bytes)})"
        )
    if indices is None:
        indices = range(len(sites))
    elif len(indices) != len(sites):
        raise ValueError("indices must parallel sites when given")
    config = config or ShardConfig()
    budget = config.max_stack_bytes

    by_rank: Dict[int, List[int]] = {}
    for position, rank in enumerate(ranks):
        by_rank.setdefault(int(rank), []).append(position)

    shards: List[Shard] = []
    for rank, positions in by_rank.items():
        group: List[int] = []
        group_bytes = 0
        for position in positions:
            site_bytes = int(stack_bytes[position])
            if group and budget is not None and group_bytes + site_bytes > budget:
                shards.append(
                    _make_shard(len(shards), rank, group, group_bytes, sites, indices)
                )
                group, group_bytes = [], 0
            group.append(position)
            group_bytes += site_bytes
        if group:
            shards.append(
                _make_shard(len(shards), rank, group, group_bytes, sites, indices)
            )
    return ShardPlan(shards=tuple(shards), max_stack_bytes=budget)


def _make_shard(
    index: int,
    rank: int,
    positions: Sequence[int],
    total_bytes: int,
    sites: Sequence[str],
    indices: Sequence[int],
) -> Shard:
    return Shard(
        index=index,
        rank=rank,
        sites=tuple(str(sites[p]) for p in positions),
        members=tuple(int(indices[p]) for p in positions),
        stack_bytes=int(total_bytes),
    )


def mark_executed(plan: ShardPlan, shard_index: int, sweeps: int, fallback: bool = False) -> ShardPlan:
    """Return a plan with one shard's execution outcome recorded."""
    shards = list(plan.shards)
    shards[shard_index] = replace(
        shards[shard_index], sweeps=int(sweeps), fallback=bool(fallback)
    )
    return replace(plan, shards=tuple(shards))
