"""Synthesize fleets of simulated sites as serializable update requests.

The fleet service accepts requests from anywhere; this module manufactures
them at scale from the environment registry, so that wire-format payloads
(``fleet export``), benchmarks and tests can exercise hundreds of
heterogeneous sites without hand-building each deployment.  Every site gets
its own simulated substrate (spec cycled from the registry, per-site seed
offset) and contributes one fully-collected
:class:`~repro.service.types.UpdateRequest` — baseline, fresh no-decrease
and reference measurements, pipeline config, solver seed and the
precomputed MIC/LRR correlation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.core.updater import UpdaterConfig
from repro.environments import ENVIRONMENT_FACTORIES, environment_by_name
from repro.service.types import UpdateRequest
from repro.simulation.campaign import CampaignConfig, SurveyCampaign
from repro.simulation.collector import CollectionConfig

__all__ = ["synthesize_fleet"]


def _cycled(value: Union[int, Sequence[int], None], index: int) -> Optional[int]:
    """Pick the per-site override: scalars apply to all, sequences cycle."""
    if value is None:
        return None
    if isinstance(value, int):
        return value
    if not len(value):
        return None
    return int(value[index % len(value)])


def synthesize_fleet(
    count: int,
    environments: Optional[Sequence[str]] = None,
    elapsed_days: float = 45.0,
    seed: int = 7,
    seed_stride: int = 101,
    link_count: Union[int, Sequence[int], None] = None,
    locations_per_link: Union[int, Sequence[int], None] = None,
    collection: Optional[CollectionConfig] = None,
    updater: Optional[UpdaterConfig] = None,
) -> List[UpdateRequest]:
    """Build ``count`` sites' update requests from the environment registry.

    Parameters
    ----------
    count:
        Number of sites to synthesize.
    environments:
        Registered environment names to cycle through; defaults to the whole
        registry (office, hall, library), which already yields heterogeneous
        shapes and factorisation ranks.
    elapsed_days:
        The refresh stamp the fresh measurements are collected at.
    seed, seed_stride:
        Site ``k`` gets substrate seed ``seed + k * seed_stride`` so every
        deployment has an independent radio substrate.
    link_count, locations_per_link:
        Optional deployment-size overrides.  A scalar applies to every site;
        a sequence is cycled per site (handy for forcing a mixed-rank fleet
        at CI size).
    collection:
        Measurement sampling depths; defaults to a fast CI-sized
        configuration.
    updater:
        Pipeline configuration shared by every site.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    if elapsed_days <= 0:
        raise ValueError(f"elapsed_days must be positive, got {elapsed_days}")
    names = (
        list(environments) if environments is not None else list(ENVIRONMENT_FACTORIES)
    )
    if not names:
        raise ValueError("environments must be non-empty when given")
    collection = collection or CollectionConfig(
        survey_samples=3, reference_samples=2, online_samples=1
    )
    updater = updater or UpdaterConfig()

    requests: List[UpdateRequest] = []
    for k in range(count):
        name = names[k % len(names)]
        overrides = {}
        links = _cycled(link_count, k)
        if links is not None:
            overrides["link_count"] = links
        width = _cycled(locations_per_link, k)
        if width is not None:
            overrides["locations_per_link"] = width
        spec = environment_by_name(name, **overrides)
        site_seed = seed + k * seed_stride
        campaign = SurveyCampaign(
            spec,
            CampaignConfig(
                timestamps_days=(0.0, elapsed_days),
                collection=collection,
                updater=updater,
                seed=site_seed,
            ),
        )
        pipeline = campaign.make_updater()
        mic, lrr = pipeline.acquire_correlation()
        reference_indices = tuple(int(i) for i in mic.indices)
        observed, mask, reference = campaign.collect_update_inputs(
            elapsed_days, reference_indices
        )
        requests.append(
            UpdateRequest(
                site=f"{name}-{k:03d}",
                baseline=pipeline.baseline,
                no_decrease_matrix=observed,
                no_decrease_mask=mask,
                reference_matrix=reference,
                reference_indices=reference_indices,
                config=pipeline.config,
                rng=site_seed,
                correlation=(mic, lrr),
            )
        )
    return requests
