"""Request / response model of the fleet update service.

The service speaks three value types:

* :class:`UpdateRequest` — everything one *site* (one deployed fingerprint
  database) contributes to a refresh: its baseline matrix, the fresh
  no-decrease and reference measurements, the pipeline configuration and the
  solver seed.
* :class:`UpdateReport` — the per-site outcome, wrapping the familiar
  :class:`~repro.core.updater.UpdateResult` with service-level bookkeeping
  (which backend ran, how many sweeps, convergence).
* :class:`FleetReport` — one refresh of a whole fleet: the per-site reports
  plus reconstruction-error summaries against ground truth where the caller
  (typically :class:`~repro.service.fleet.FleetCampaign`) knows it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.lrr import LRRResult
from repro.core.mic import MICResult
from repro.core.updater import UpdaterConfig, UpdateResult
from repro.fingerprint.matrix import FingerprintMatrix
from repro.service.shard import ShardPlan
from repro.utils.random import RngLike
from repro.utils.validation import check_2d, check_matching_shapes

__all__ = ["WarmFactors", "UpdateRequest", "UpdateReport", "FleetReport"]


@dataclass(frozen=True)
class WarmFactors:
    """Previous-generation factors a site's solve resumes from.

    Attributes
    ----------
    left, right:
        The ``L`` (``M x r``) / ``R`` (``N x r``) factors of the previous
        refresh, fed to :meth:`~repro.core.self_augmented.SweepState.warm_start`.
    objective:
        The previous generation's final objective.  When given, a refresh
        whose data has not drifted past the solver tolerance converges with
        zero sweeps and reproduces the factors bit for bit.
    """

    left: np.ndarray
    right: np.ndarray
    objective: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "left", check_2d(self.left, "left"))
        object.__setattr__(self, "right", check_2d(self.right, "right"))
        if self.left.shape[1] != self.right.shape[1]:
            raise ValueError(
                f"warm factors disagree on rank: left is {self.left.shape}, "
                f"right is {self.right.shape}"
            )
        if self.objective is not None:
            object.__setattr__(self, "objective", float(self.objective))


@dataclass
class UpdateRequest:
    """One site's input to a fleet refresh.

    Attributes
    ----------
    site:
        Stable identifier of the site (e.g. the environment name).
    baseline:
        The site's original (or latest-updated) fingerprint matrix, from
        which the MIC reference locations and the correlation matrix are
        derived.
    no_decrease_matrix, no_decrease_mask:
        Fresh ``X_B`` measurements and their index matrix ``B``.
    reference_matrix:
        Fresh ``X_R`` measurements, one column per reference location.
    reference_indices:
        Column indices the reference measurements correspond to; ``None``
        defers to the site's own MIC selection.
    config:
        Pipeline configuration (MIC strategy, LRR, solver, backend).
    rng:
        Seed or generator for the solver's random initialisation.
    correlation:
        Optional precomputed ``(MICResult, LRRResult)`` pair, so callers that
        already ran Inherent Correlation Acquisition (e.g. the
        :class:`~repro.core.updater.IUpdater` shim or a repeated campaign)
        do not pay for it again.
    warm_start:
        Optional :class:`WarmFactors` from the site's previous refresh.
        Carried on the request (rather than service state) so the factors
        ride the scatter wire and every executor backend — including worker
        processes that rehydrate the request from bytes — warm-starts
        identically.
    """

    site: str
    baseline: FingerprintMatrix
    no_decrease_matrix: np.ndarray
    no_decrease_mask: np.ndarray
    reference_matrix: np.ndarray
    reference_indices: Optional[Tuple[int, ...]] = None
    config: UpdaterConfig = field(default_factory=UpdaterConfig)
    rng: RngLike = None
    correlation: Optional[Tuple[MICResult, LRRResult]] = None
    warm_start: Optional[WarmFactors] = None

    def __post_init__(self) -> None:
        if not self.site:
            raise ValueError("site must be a non-empty identifier")
        if not isinstance(self.baseline, FingerprintMatrix):
            raise TypeError("baseline must be a FingerprintMatrix")
        self.no_decrease_matrix = check_2d(self.no_decrease_matrix, "no_decrease_matrix")
        self.no_decrease_mask = check_2d(self.no_decrease_mask, "no_decrease_mask")
        self.reference_matrix = check_2d(self.reference_matrix, "reference_matrix")
        check_matching_shapes(
            self.no_decrease_matrix,
            self.no_decrease_mask,
            "no_decrease_matrix",
            "no_decrease_mask",
        )
        if self.no_decrease_matrix.shape != self.baseline.shape:
            raise ValueError(
                f"no_decrease_matrix shape {self.no_decrease_matrix.shape} does not "
                f"match the baseline {self.baseline.shape}"
            )
        if not np.all(np.isin(self.no_decrease_mask, (0.0, 1.0))):
            raise ValueError("no_decrease_mask must contain only 0 and 1")
        if self.reference_matrix.shape[0] != self.baseline.link_count:
            raise ValueError(
                "reference_matrix must have one row per link "
                f"({self.baseline.link_count}), got {self.reference_matrix.shape[0]}"
            )
        if self.reference_indices is not None:
            self.reference_indices = tuple(int(i) for i in self.reference_indices)
            if self.reference_matrix.shape[1] != len(self.reference_indices):
                raise ValueError(
                    "reference_matrix must have one column per reference index"
                )
        if self.warm_start is not None:
            m, n = self.baseline.shape
            if (
                self.warm_start.left.shape[0] != m
                or self.warm_start.right.shape[0] != n
            ):
                raise ValueError(
                    f"warm_start factors {self.warm_start.left.shape} / "
                    f"{self.warm_start.right.shape} do not match the "
                    f"baseline {self.baseline.shape}"
                )


@dataclass(frozen=True)
class UpdateReport:
    """The service's per-site response to an :class:`UpdateRequest`.

    Attributes
    ----------
    site:
        The identifier echoed back from the request.
    result:
        The full :class:`~repro.core.updater.UpdateResult` (matrix, MIC, LRR,
        solver outcome), identical to what ``IUpdater.update`` returns.
    sweeps:
        Alternating sweeps this site consumed.
    converged:
        Whether the site's solve met its tolerance within budget.
    solver_backend:
        Which ALS backend produced the result (``"batched"`` sites ride the
        fleet-stacked solve; ``"looped"`` sites run the reference path).
    warm_started:
        Whether this site's solve resumed from a previous generation's
        factors instead of a cold init.
    """

    site: str
    result: UpdateResult
    sweeps: int
    converged: bool
    solver_backend: str
    warm_started: bool = False

    @property
    def matrix(self) -> FingerprintMatrix:
        """The reconstructed fingerprint matrix."""
        return self.result.matrix

    @property
    def estimate(self) -> np.ndarray:
        """Raw reconstructed matrix values."""
        return self.result.estimate

    @property
    def objective(self) -> float:
        """Final solver objective value."""
        return self.result.solver.objective


@dataclass(frozen=True)
class FleetReport:
    """One fleet-wide refresh: per-site reports plus aggregate summaries.

    Attributes
    ----------
    elapsed_days:
        The time stamp the refresh was run at.
    reports:
        Per-site :class:`UpdateReport` objects, in request order.
    errors_db:
        Per-site mean absolute reconstruction error (dB) of the refreshed
        matrix against ground truth, where ground truth is known.
    stale_errors_db:
        Per-site error (dB) of the *unrefreshed* baseline against the same
        ground truth — the "do nothing" comparison.
    stacked_sweeps:
        Number of lockstep sweeps the stacked solve executed (the maximum
        over the per-site sweep counts).
    plan:
        The executed :class:`~repro.service.shard.ShardPlan` — which sites
        rode which rank-grouped, byte-budgeted shard, per-shard sweep counts
        and any singularity fallbacks.  ``None`` when the producer did not
        record one.
    executor:
        Name of the :class:`~repro.service.executor.ShardExecutor` backend
        that ran the plan (``"serial"`` or ``"process"``); ``None`` when the
        producer did not record one.
    workers:
        Worker processes the executor fanned shards out to (0 for
        in-process execution).  Purely bookkeeping: results are
        bit-identical for any worker count.
    sweeps_saved:
        Per-site sweeps the warm start saved versus the previous
        generation's cold count (``prev sweeps - this refresh's sweeps``),
        recorded only for warm-started sites.
    """

    elapsed_days: float
    reports: Tuple[UpdateReport, ...]
    errors_db: Dict[str, float] = field(default_factory=dict)
    stale_errors_db: Dict[str, float] = field(default_factory=dict)
    stacked_sweeps: int = 0
    plan: Optional[ShardPlan] = None
    executor: Optional[str] = None
    workers: int = 0
    sweeps_saved: Dict[str, int] = field(default_factory=dict)

    @property
    def sites(self) -> Tuple[str, ...]:
        """Site identifiers in report order."""
        return tuple(report.site for report in self.reports)

    def report_for(self, site: str) -> UpdateReport:
        """The per-site report for ``site``."""
        for report in self.reports:
            if report.site == site:
                return report
        raise KeyError(f"no report for site {site!r}; have {list(self.sites)}")

    @property
    def mean_error_db(self) -> float:
        """Mean of the per-site reconstruction errors."""
        if not self.errors_db:
            return float("nan")
        return float(np.mean(list(self.errors_db.values())))

    @property
    def worst_site(self) -> Optional[str]:
        """Site with the largest reconstruction error (``None`` if unknown)."""
        if not self.errors_db:
            return None
        return max(self.errors_db, key=self.errors_db.get)

    def aggregate(self) -> Dict[str, float]:
        """Flat scalar summary of the refresh (for reporting / CLI output)."""
        summary: Dict[str, float] = {
            "sites": float(len(self.reports)),
            "stacked_sweeps": float(self.stacked_sweeps),
            "converged_sites": float(sum(r.converged for r in self.reports)),
        }
        warm_sites = sum(r.warm_started for r in self.reports)
        if warm_sites:
            summary["warm_sites"] = float(warm_sites)
        if self.sweeps_saved:
            summary["sweeps_saved"] = float(sum(self.sweeps_saved.values()))
        if self.plan is not None:
            summary["shards"] = float(self.plan.shard_count)
            summary["peak_stack_bytes"] = float(self.plan.peak_stack_bytes)
        if self.executor is not None:
            summary["workers"] = float(self.workers)
        if self.errors_db:
            errors = np.asarray(list(self.errors_db.values()), dtype=float)
            summary["mean_error_db"] = float(errors.mean())
            summary["max_error_db"] = float(errors.max())
        if self.stale_errors_db:
            stale = np.asarray(list(self.stale_errors_db.values()), dtype=float)
            summary["mean_stale_error_db"] = float(stale.mean())
        return summary
