"""Survey campaigns, measurement collection and the labor-cost model."""

from repro.simulation.campaign import CampaignConfig, SurveyCampaign
from repro.simulation.collector import MeasurementCollector, CollectionConfig
from repro.simulation.labor import LaborCostModel, LaborCostConfig

__all__ = [
    "SurveyCampaign",
    "CampaignConfig",
    "MeasurementCollector",
    "CollectionConfig",
    "LaborCostModel",
    "LaborCostConfig",
]
