"""Multi-timestamp survey campaigns.

The paper's evaluation spans six surveys over three months in each
environment.  ``SurveyCampaign`` reproduces that protocol against the
simulated substrate: it builds a deployment, surveys the ground-truth
fingerprint matrix at each requested time stamp, and exposes helpers for
running iUpdater updates and localization trials at any of those stamps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.updater import IUpdater, UpdaterConfig, UpdateResult
from repro.environments.base import Deployment, EnvironmentSpec
from repro.environments.builder import build_deployment
from repro.fingerprint.database import PAPER_TIMESTAMPS_DAYS, FingerprintDatabase
from repro.fingerprint.matrix import FingerprintMatrix
from repro.simulation.collector import CollectionConfig, MeasurementCollector
from repro.utils.random import make_rng

__all__ = ["CampaignConfig", "SurveyCampaign"]


@dataclass(frozen=True)
class CampaignConfig:
    """Configuration of a survey campaign.

    Attributes
    ----------
    timestamps_days:
        Elapsed-day stamps at which ground-truth surveys are taken; defaults
        to the paper's six stamps (0, 3, 5, 15, 45, 90 days).
    collection:
        Sampling configuration of the measurement collector.
    updater:
        Configuration of the iUpdater pipeline runs.
    seed:
        Master seed controlling the radio substrate and all sampling.
    """

    timestamps_days: Tuple[float, ...] = PAPER_TIMESTAMPS_DAYS
    collection: CollectionConfig = field(default_factory=CollectionConfig)
    updater: UpdaterConfig = field(default_factory=UpdaterConfig)
    seed: int = 7

    def __post_init__(self) -> None:
        if not self.timestamps_days:
            raise ValueError("timestamps_days must be non-empty")
        if any(t < 0 for t in self.timestamps_days):
            raise ValueError("timestamps must be non-negative")
        if 0.0 not in self.timestamps_days:
            raise ValueError("the campaign must include the original time (day 0)")


class SurveyCampaign:
    """A full simulated measurement campaign in one environment."""

    def __init__(self, spec: EnvironmentSpec, config: Optional[CampaignConfig] = None) -> None:
        self.spec = spec
        self.config = config or CampaignConfig()
        self.deployment: Deployment = build_deployment(spec, seed=self.config.seed)
        self.collector = MeasurementCollector(self.deployment, self.config.collection)
        self._database: Optional[FingerprintDatabase] = None
        self._rng = make_rng(self.config.seed)

    # ------------------------------------------------------------ ground truth
    @property
    def database(self) -> FingerprintDatabase:
        """Ground-truth fingerprint snapshots at every campaign time stamp."""
        if self._database is None:
            original = self.collector.survey_fingerprint(elapsed_days=0.0)
            database = FingerprintDatabase(original)
            for days in self.config.timestamps_days:
                if days == 0.0:
                    continue
                snapshot = self.collector.survey_fingerprint(elapsed_days=days)
                database.add_snapshot(days, snapshot, mark_as_current=False)
            self._database = database
        return self._database

    def ground_truth(self, elapsed_days: float) -> FingerprintMatrix:
        """The ground-truth fingerprint matrix surveyed at ``elapsed_days``."""
        return self.database.get(elapsed_days)

    # ------------------------------------------------------------------ updates
    def make_updater(self, config: Optional[UpdaterConfig] = None) -> IUpdater:
        """Create an iUpdater pipeline seeded with the original matrix."""
        return IUpdater(
            baseline=self.database.original,
            config=config or self.config.updater,
            rng=self.config.seed,
        )

    def collect_update_inputs(
        self, elapsed_days: float, reference_indices: Sequence[int]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Collect the raw inputs of one update at ``elapsed_days``.

        Returns the no-decrease matrix ``X_B``, its index matrix ``B`` and
        the fresh reference matrix ``X_R`` — exactly what an
        :class:`~repro.service.types.UpdateRequest` needs, so the fleet
        service can gather many sites' measurements without running the
        per-site pipeline.
        """
        observed, mask = self.collector.collect_no_decrease(elapsed_days=elapsed_days)
        reference = self.collector.collect_reference(
            reference_indices, elapsed_days=elapsed_days
        )
        return observed, mask, reference

    def run_update(
        self,
        elapsed_days: float,
        updater: Optional[IUpdater] = None,
        reference_indices: Optional[Sequence[int]] = None,
    ) -> UpdateResult:
        """Run a fingerprint update at ``elapsed_days``.

        Collects the no-decrease matrix (nobody present) and fresh reference
        measurements at the MIC locations (or a caller-supplied set), then
        reconstructs the matrix with the self-augmented RSVD.
        """
        updater = updater or self.make_updater()
        if reference_indices is None:
            reference_indices = updater.reference_indices
        observed, mask, reference = self.collect_update_inputs(
            elapsed_days, reference_indices
        )
        return updater.update(
            no_decrease_matrix=observed,
            no_decrease_mask=mask,
            reference_matrix=reference,
            reference_indices=reference_indices,
        )

    # ----------------------------------------------------------- localization
    def sample_test_locations(self, count: int) -> np.ndarray:
        """Draw ``count`` random true target locations (grid indices)."""
        if count <= 0:
            raise ValueError("count must be positive")
        n = self.deployment.location_count
        return self._rng.choice(n, size=min(count, n), replace=False)

    def online_measurements(
        self, location_indices: Sequence[int], elapsed_days: float
    ) -> np.ndarray:
        """Online RSS vectors for a set of true locations at a time stamp."""
        return self.collector.online_batch(location_indices, elapsed_days=elapsed_days)

    def localization_errors(
        self,
        fingerprint: FingerprintMatrix,
        location_indices: Sequence[int],
        elapsed_days: float,
        localizer_factory=None,
    ) -> np.ndarray:
        """Per-trial localization errors (metres) using a fingerprint matrix.

        Parameters
        ----------
        fingerprint:
            The matrix the localizer matches against (ground truth,
            reconstructed, or stale).
        location_indices:
            True target grid indices for the trials.
        elapsed_days:
            Time stamp at which the online measurements are simulated.
        localizer_factory:
            Callable ``(fingerprint, locations) -> localizer`` with a
            ``localize_point`` method.  Defaults to the OMP localizer.
        """
        from repro.localization.omp import OMPLocalizer

        locations = self.deployment.location_array()
        if localizer_factory is None:
            localizer = OMPLocalizer(fingerprint, locations)
        else:
            localizer = localizer_factory(fingerprint, locations)
        measurements = self.online_measurements(location_indices, elapsed_days)
        errors = []
        for row, true_index in zip(measurements, location_indices):
            estimate = localizer.localize_point(row)
            truth = locations[int(true_index)]
            errors.append(float(np.linalg.norm(estimate - truth)))
        return np.asarray(errors, dtype=float)
