"""Measurement collection against the simulated radio substrate.

``MeasurementCollector`` plays the role of the paper's "Reconstruction Data
Collection Module" plus the ground-truth survey crew: it walks the simulated
deployment and produces

* full ground-truth surveys (every location, with a target present) — what a
  traditional fingerprint system collects,
* the no-decrease matrix ``X_B`` (measured with nobody in the area),
* the reference matrix ``X_R`` (fresh measurements at a handful of reference
  locations), and
* online RSS vectors for localization trials.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.environments.base import Deployment
from repro.fingerprint.masks import DecreaseClassification, classify_elements
from repro.fingerprint.matrix import FingerprintMatrix
from repro.utils.validation import check_indices

__all__ = ["CollectionConfig", "MeasurementCollector"]


@dataclass(frozen=True)
class CollectionConfig:
    """Sampling parameters of the measurement collector.

    Attributes
    ----------
    survey_samples:
        Number of RSS samples averaged per location during a ground-truth
        survey (traditional systems use ~50).
    reference_samples:
        Number of samples averaged at a reference location (iUpdater uses 5).
    online_samples:
        Number of samples averaged for an online localization measurement
        (iUpdater's low-latency operating point is a single beacon).
    with_noise:
        Whether short-term noise is applied to the simulated readings.
    """

    survey_samples: int = 50
    reference_samples: int = 5
    online_samples: int = 2
    with_noise: bool = True

    def __post_init__(self) -> None:
        for name in ("survey_samples", "reference_samples", "online_samples"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")


class MeasurementCollector:
    """Collects RSS measurements from a simulated deployment."""

    def __init__(
        self,
        deployment: Deployment,
        config: Optional[CollectionConfig] = None,
    ) -> None:
        self.deployment = deployment
        self.config = config or CollectionConfig()
        self._classification: Optional[DecreaseClassification] = None

    @property
    def classification(self) -> DecreaseClassification:
        """Element classification (large / small / no decrease) of the deployment."""
        if self._classification is None:
            self._classification = classify_elements(self.deployment)
        return self._classification

    # ----------------------------------------------------------- full surveys
    def survey_fingerprint(
        self,
        elapsed_days: float = 0.0,
        samples: Optional[int] = None,
    ) -> FingerprintMatrix:
        """Collect a full ground-truth fingerprint matrix (target at every grid)."""
        samples = samples or self.config.survey_samples
        channel = self.deployment.channel
        m = self.deployment.link_count
        n = self.deployment.location_count
        values = np.zeros((m, n), dtype=float)
        for j in range(n):
            location = self.deployment.location_point(j)
            values[:, j] = channel.measure_vector(
                target_location=location,
                elapsed_days=elapsed_days,
                samples=samples,
                with_noise=self.config.with_noise,
            )
        return FingerprintMatrix(
            values=values,
            locations_per_link=self.deployment.locations_per_link,
            no_decrease_mask=self.classification.no_decrease_mask,
        )

    # ------------------------------------------------------- partial surveys
    def collect_no_decrease(
        self, elapsed_days: float = 0.0, samples: Optional[int] = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Collect the no-decrease matrix ``X_B`` and its index matrix ``B``.

        The no-decrease elements barely change when a person is present, so
        they are measured without a target: every link's target-free RSS is
        recorded and written into the columns whose classification says "no
        decrease".
        """
        samples = samples or self.config.reference_samples
        channel = self.deployment.channel
        m = self.deployment.link_count
        n = self.deployment.location_count
        mask = self.classification.no_decrease_mask
        baseline = np.zeros(m, dtype=float)
        for i in range(m):
            readings = [
                channel.measure_rss_dbm(
                    i, None, elapsed_days, with_noise=self.config.with_noise
                )
                for _ in range(samples)
            ]
            baseline[i] = float(np.mean(readings))
        observed = np.tile(baseline[:, None], (1, n)) * mask
        return observed, mask.copy()

    def collect_reference(
        self,
        reference_indices: Sequence[int],
        elapsed_days: float = 0.0,
        samples: Optional[int] = None,
    ) -> np.ndarray:
        """Collect the reference matrix ``X_R`` (target at each reference grid)."""
        indices = check_indices(
            reference_indices, self.deployment.location_count, "reference_indices"
        )
        samples = samples or self.config.reference_samples
        channel = self.deployment.channel
        columns = []
        for j in indices:
            location = self.deployment.location_point(int(j))
            columns.append(
                channel.measure_vector(
                    target_location=location,
                    elapsed_days=elapsed_days,
                    samples=samples,
                    with_noise=self.config.with_noise,
                )
            )
        return np.stack(columns, axis=1)

    def collect_partial_survey(
        self,
        fraction: float,
        elapsed_days: float = 0.0,
        samples: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Survey a random ``fraction`` of the locations (Claim-3 experiments).

        Returns an observed matrix and a mask marking the surveyed columns
        (all rows of a surveyed column are observed).
        """
        if not 0 < fraction <= 1:
            raise ValueError("fraction must lie in (0, 1]")
        rng = rng or np.random.default_rng(0)
        n = self.deployment.location_count
        count = max(1, int(round(fraction * n)))
        chosen = rng.choice(n, size=count, replace=False)
        samples = samples or self.config.reference_samples
        channel = self.deployment.channel
        m = self.deployment.link_count
        observed = np.zeros((m, n), dtype=float)
        mask = np.zeros((m, n), dtype=float)
        for j in chosen:
            location = self.deployment.location_point(int(j))
            observed[:, j] = channel.measure_vector(
                target_location=location,
                elapsed_days=elapsed_days,
                samples=samples,
                with_noise=self.config.with_noise,
            )
            mask[:, j] = 1.0
        return observed, mask

    # --------------------------------------------------------------- online
    def online_measurement(
        self,
        location_index: int,
        elapsed_days: float = 0.0,
        samples: Optional[int] = None,
    ) -> np.ndarray:
        """One online RSS vector with the target at ``location_index``."""
        if not 0 <= location_index < self.deployment.location_count:
            raise ValueError("location_index out of range")
        samples = samples or self.config.online_samples
        location = self.deployment.location_point(location_index)
        return self.deployment.channel.measure_vector(
            target_location=location,
            elapsed_days=elapsed_days,
            samples=samples,
            with_noise=self.config.with_noise,
        )

    def online_batch(
        self,
        location_indices: Sequence[int],
        elapsed_days: float = 0.0,
        samples: Optional[int] = None,
    ) -> np.ndarray:
        """Online RSS vectors (rows) for a list of true target locations."""
        return np.vstack(
            [
                self.online_measurement(int(j), elapsed_days, samples)
                for j in location_indices
            ]
        )
