"""Human labor-cost model (Section VI-C and Fig. 20).

The paper quantifies the cost of updating the fingerprint database as::

    time = (locations_visited - 1) * moving_time + samples_per_location
           * collection_interval * locations_visited

Traditional systems re-survey every grid location (94 in the office) with
~50 samples each; iUpdater only visits the handful of MIC reference
locations (8 in the office) with 5 samples each.  With the paper's constants
(5 s to move between locations, 0.5 s per sample) this yields the reported
55 s vs 46.9 min update times and the 97.9 % / 92.1 % savings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

__all__ = ["LaborCostConfig", "LaborCostModel", "UpdateCost"]


@dataclass(frozen=True)
class LaborCostConfig:
    """Constants of the labor-cost model.

    Attributes
    ----------
    moving_time_s:
        Average time to walk between two survey locations (Δt_m, 5 s).
    collection_interval_s:
        Time per RSS sample (Δt_c, 0.5 s — the beacon interval).
    traditional_samples:
        Samples collected per location by a traditional survey (50).
    iupdater_samples:
        Samples collected per reference location by iUpdater (5).
    """

    moving_time_s: float = 5.0
    collection_interval_s: float = 0.5
    traditional_samples: int = 50
    iupdater_samples: int = 5

    def __post_init__(self) -> None:
        if self.moving_time_s < 0 or self.collection_interval_s <= 0:
            raise ValueError("times must be positive (moving time may be zero)")
        if self.traditional_samples <= 0 or self.iupdater_samples <= 0:
            raise ValueError("sample counts must be positive")


@dataclass(frozen=True)
class UpdateCost:
    """Time cost of one database update."""

    locations_visited: int
    samples_per_location: int
    seconds: float

    @property
    def minutes(self) -> float:
        """Cost in minutes."""
        return self.seconds / 60.0

    @property
    def hours(self) -> float:
        """Cost in hours."""
        return self.seconds / 3600.0


class LaborCostModel:
    """Computes update time costs and savings."""

    def __init__(self, config: LaborCostConfig | None = None) -> None:
        self.config = config or LaborCostConfig()

    def update_cost(self, locations: int, samples_per_location: int) -> UpdateCost:
        """Cost of visiting ``locations`` grids with a given sample count."""
        if locations <= 0 or samples_per_location <= 0:
            raise ValueError("locations and samples_per_location must be positive")
        cfg = self.config
        seconds = (locations - 1) * cfg.moving_time_s + (
            samples_per_location * cfg.collection_interval_s * locations
        )
        return UpdateCost(
            locations_visited=locations,
            samples_per_location=samples_per_location,
            seconds=float(seconds),
        )

    def traditional_cost(self, total_locations: int, samples: int | None = None) -> UpdateCost:
        """Cost of a traditional full re-survey of ``total_locations`` grids."""
        samples = samples or self.config.traditional_samples
        return self.update_cost(total_locations, samples)

    def iupdater_cost(self, reference_locations: int, samples: int | None = None) -> UpdateCost:
        """Cost of an iUpdater update visiting only the reference locations."""
        samples = samples or self.config.iupdater_samples
        return self.update_cost(reference_locations, samples)

    def saving_fraction(
        self,
        total_locations: int,
        reference_locations: int,
        traditional_samples: int | None = None,
        iupdater_samples: int | None = None,
    ) -> float:
        """Relative time saving of iUpdater over the traditional survey."""
        traditional = self.traditional_cost(total_locations, traditional_samples)
        iupdater = self.iupdater_cost(reference_locations, iupdater_samples)
        if traditional.seconds <= 0:
            raise ValueError("traditional cost must be positive")
        return float(1.0 - iupdater.seconds / traditional.seconds)

    def cost_versus_area(
        self,
        base_edge_locations: int,
        base_reference_locations: int,
        scale_factors: Sequence[float],
        traditional_samples: int | None = None,
        iupdater_samples: int | None = None,
    ) -> dict:
        """Update time cost as the deployment area grows (Fig. 20).

        The monitoring area is scaled by ``k`` times the edge length, so the
        number of grid locations grows as ``k^2`` while the number of
        reference locations grows only linearly with the number of links
        (which scales with one edge, i.e. ``k``).
        """
        if base_edge_locations <= 0 or base_reference_locations <= 0:
            raise ValueError("base counts must be positive")
        scales: List[float] = [float(s) for s in scale_factors]
        if any(s <= 0 for s in scales):
            raise ValueError("scale factors must be positive")
        traditional_hours = []
        iupdater_hours = []
        for k in scales:
            total = int(round(base_edge_locations * k * k))
            references = max(1, int(round(base_reference_locations * k)))
            traditional_hours.append(
                self.traditional_cost(total, traditional_samples).hours
            )
            iupdater_hours.append(self.iupdater_cost(references, iupdater_samples).hours)
        return {
            "scale_factors": np.asarray(scales),
            "traditional_hours": np.asarray(traditional_hours),
            "iupdater_hours": np.asarray(iupdater_hours),
        }
