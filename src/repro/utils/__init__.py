"""Shared utilities: linear algebra helpers, CDF tools, RNG management."""

from repro.utils.cdf import empirical_cdf, percentile, median
from repro.utils.linalg import (
    frobenius_norm,
    masked_frobenius_error,
    normalized_singular_values,
    relative_energy,
    safe_solve,
)
from repro.utils.random import make_rng, spawn_rngs
from repro.utils.validation import (
    check_2d,
    check_matching_shapes,
    check_positive,
    check_probability,
)

__all__ = [
    "empirical_cdf",
    "percentile",
    "median",
    "frobenius_norm",
    "masked_frobenius_error",
    "normalized_singular_values",
    "relative_energy",
    "safe_solve",
    "make_rng",
    "spawn_rngs",
    "check_2d",
    "check_matching_shapes",
    "check_positive",
    "check_probability",
]
