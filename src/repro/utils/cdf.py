"""Empirical CDF and percentile utilities used by the evaluation harness."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = ["EmpiricalCDF", "empirical_cdf", "percentile", "median", "cdf_at"]


@dataclass(frozen=True)
class EmpiricalCDF:
    """An empirical cumulative distribution function.

    Attributes
    ----------
    values:
        Sorted sample values.
    probabilities:
        Cumulative probabilities aligned with ``values``; the last entry is 1.
    """

    values: np.ndarray
    probabilities: np.ndarray

    def percentile(self, q: float) -> float:
        """Return the ``q``-quantile (``q`` in [0, 1]) of the samples."""
        if not 0 <= q <= 1:
            raise ValueError(f"q must lie in [0, 1], got {q}")
        return float(np.quantile(self.values, q))

    @property
    def median(self) -> float:
        """The 50th percentile of the samples."""
        return self.percentile(0.5)

    def probability_below(self, threshold: float) -> float:
        """Fraction of samples that are <= ``threshold``."""
        return float(np.mean(self.values <= threshold))

    def as_series(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(values, probabilities)`` suitable for plotting."""
        return self.values.copy(), self.probabilities.copy()


def empirical_cdf(samples: Sequence[float]) -> EmpiricalCDF:
    """Build an :class:`EmpiricalCDF` from raw samples."""
    values = np.sort(np.asarray(list(samples), dtype=float).ravel())
    if values.size == 0:
        raise ValueError("samples must be non-empty")
    probabilities = np.arange(1, values.size + 1, dtype=float) / values.size
    return EmpiricalCDF(values=values, probabilities=probabilities)


def percentile(samples: Sequence[float], q: float) -> float:
    """Quantile helper mirroring the paper's "50-percentile error" phrasing."""
    return empirical_cdf(samples).percentile(q)


def median(samples: Sequence[float]) -> float:
    """Median of a collection of samples."""
    return percentile(samples, 0.5)


def cdf_at(samples: Sequence[float], threshold: float) -> float:
    """Fraction of ``samples`` that do not exceed ``threshold``."""
    return empirical_cdf(samples).probability_below(threshold)
