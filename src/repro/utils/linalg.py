"""Small linear-algebra helpers used across the core solvers."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.utils.validation import check_2d

__all__ = [
    "frobenius_norm",
    "masked_frobenius_error",
    "normalized_singular_values",
    "relative_energy",
    "effective_rank",
    "safe_solve",
    "batched_safe_solve",
    "masked_gram_stack",
    "pad_rank_stack",
    "stacked_rank_solve",
    "system_stack_nbytes",
    "column_normalize",
    "soft_threshold",
    "singular_value_threshold",
    "l21_column_shrink",
    "mean_absolute_error",
    "root_mean_square_error",
]


def frobenius_norm(matrix: np.ndarray) -> float:
    """Return the Frobenius norm of a matrix (or the 2-norm of a vector)."""
    return float(np.linalg.norm(np.asarray(matrix, dtype=float)))


def masked_frobenius_error(
    estimate: np.ndarray, target: np.ndarray, mask: Optional[np.ndarray] = None
) -> float:
    """Frobenius error between two matrices, optionally restricted to a mask.

    Parameters
    ----------
    estimate, target:
        Matrices of identical shape.
    mask:
        Optional boolean / 0-1 matrix; only entries where the mask is nonzero
        contribute to the error.
    """
    estimate = np.asarray(estimate, dtype=float)
    target = np.asarray(target, dtype=float)
    if estimate.shape != target.shape:
        raise ValueError(
            f"estimate shape {estimate.shape} does not match target {target.shape}"
        )
    difference = estimate - target
    if mask is not None:
        mask = np.asarray(mask, dtype=float)
        if mask.shape != estimate.shape:
            raise ValueError("mask shape does not match the matrices")
        difference = difference * mask
    return float(np.linalg.norm(difference))


def normalized_singular_values(matrix: np.ndarray) -> np.ndarray:
    """Singular values of ``matrix`` normalised so the largest equals one."""
    matrix = check_2d(matrix, "matrix")
    values = np.linalg.svd(matrix, compute_uv=False)
    top = values[0] if values[0] > 0 else 1.0
    return values / top


def relative_energy(matrix: np.ndarray, count: int) -> float:
    """Fraction of the singular-value energy captured by the ``count`` largest.

    The paper's low-rank diagnostics (Fig. 5) use the ratio
    ``sum(sigma_1..sigma_count) / sum(sigma_i)``.
    """
    matrix = check_2d(matrix, "matrix")
    values = np.linalg.svd(matrix, compute_uv=False)
    total = float(values.sum())
    if total == 0:
        return 1.0
    count = max(1, min(int(count), values.size))
    return float(values[:count].sum() / total)


def effective_rank(matrix: np.ndarray, energy: float = 0.99) -> int:
    """Smallest number of singular values capturing ``energy`` of the total."""
    matrix = check_2d(matrix, "matrix")
    values = np.linalg.svd(matrix, compute_uv=False)
    total = float(values.sum())
    if total == 0:
        return 0
    cumulative = np.cumsum(values) / total
    return int(np.searchsorted(cumulative, energy) + 1)


def safe_solve(lhs: np.ndarray, rhs: np.ndarray, ridge: float = 1e-10) -> np.ndarray:
    """Solve ``lhs @ x = rhs`` robustly.

    Falls back to a ridge-regularised least-squares solution when the system
    is singular or badly conditioned, which happens routinely in the early
    alternating-least-squares iterations when a factor is still rank
    deficient.
    """
    lhs = np.asarray(lhs, dtype=float)
    rhs = np.asarray(rhs, dtype=float)
    try:
        return np.linalg.solve(lhs, rhs)
    except np.linalg.LinAlgError:
        regularised = lhs + ridge * np.eye(lhs.shape[0])
        return np.linalg.lstsq(regularised, rhs, rcond=None)[0]


def _check_stack(lhs: np.ndarray, rhs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Validate and coerce one ``(batch, r, r)`` / ``(batch, r)`` system stack."""
    lhs = np.asarray(lhs, dtype=float)
    rhs = np.asarray(rhs, dtype=float)
    if lhs.ndim != 3 or lhs.shape[1] != lhs.shape[2]:
        raise ValueError(f"lhs must be a (batch, r, r) stack, got {lhs.shape}")
    if rhs.shape != lhs.shape[:2]:
        raise ValueError(
            f"rhs shape {rhs.shape} does not match lhs batch {lhs.shape[:2]}"
        )
    return lhs, rhs


def batched_safe_solve(
    lhs: np.ndarray, rhs: np.ndarray, ridge: float = 1e-10
) -> np.ndarray:
    """Solve a stack of small linear systems ``lhs[k] @ x[k] = rhs[k]``.

    Parameters
    ----------
    lhs:
        Stacked coefficient matrices of shape ``(batch, r, r)``.
    rhs:
        Stacked right-hand sides of shape ``(batch, r)``.
    ridge:
        Regularisation used by the singular-system fallback.

    The happy path dispatches a single batched ``np.linalg.solve`` over the
    ``(batch, r, r)`` tensor, which is how the alternating-least-squares
    sweeps turn ``n`` tiny per-column ridge solves into one LAPACK call.
    NumPy raises ``LinAlgError`` if *any* slice is singular, in which case we
    fall back to :func:`safe_solve` per slice so only the offending systems
    pay for the regularised least-squares retry — mirroring the looped
    reference path exactly.
    """
    lhs, rhs = _check_stack(lhs, rhs)
    try:
        return np.linalg.solve(lhs, rhs[..., None])[..., 0]
    except np.linalg.LinAlgError:
        solutions = np.empty_like(rhs)
        for k in range(lhs.shape[0]):
            solutions[k] = safe_solve(lhs[k], rhs[k], ridge=ridge)
        return solutions


def system_stack_nbytes(batch: int, rank: int, itemsize: int = 8) -> int:
    """Bytes one ``(batch, rank, rank)`` + ``(batch, rank)`` system stack holds.

    This is the unit the fleet scheduler budgets against: every
    alternating-least-squares sweep materialises one such stack per solve
    direction, so keeping the concatenated stack of a shard under the L3-ish
    cache budget keeps the batched LAPACK calls resident.
    """
    if batch < 0 or rank < 0:
        raise ValueError(f"batch and rank must be non-negative, got {batch}, {rank}")
    return int(itemsize) * int(batch) * int(rank) * (int(rank) + 1)


def pad_rank_stack(
    lhs: np.ndarray, rhs: np.ndarray, rank: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Embed a ``(batch, r, r)`` system stack into a larger target ``rank``.

    The real systems occupy the leading ``r x r`` block of each padded slice;
    the trailing diagonal is filled with ones and the padded right-hand-side
    entries with zeros, so the padded solutions carry exact zeros in the
    padding coordinates.  Because the padding rows/columns are zero off the
    diagonal, LU elimination never pivots them into the real block and, in
    exact arithmetic, the leading ``r`` solution entries equal the unpadded
    solutions.  In floating point they can differ by last-ulp rounding noise:
    BLAS picks different kernels for different matrix sizes, so the padded
    ``rank x rank`` elimination may sum in a different order than the
    ``r x r`` one.  :func:`stacked_rank_solve` therefore only pads when asked
    (``strategy="pad"``) and groups equal ranks by default, which is exact.
    """
    lhs, rhs = _check_stack(lhs, rhs)
    batch, r = lhs.shape[:2]
    if rank < r:
        raise ValueError(f"target rank {rank} is smaller than the stack rank {r}")
    if rank == r:
        return lhs, rhs
    padded_lhs = np.zeros((batch, rank, rank), dtype=float)
    padded_lhs[:, :r, :r] = lhs
    pad = np.arange(r, rank)
    padded_lhs[:, pad, pad] = 1.0
    padded_rhs = np.zeros((batch, rank), dtype=float)
    padded_rhs[:, :r] = rhs
    return padded_lhs, padded_rhs


def stacked_rank_solve(systems, ridge: float = 1e-10, strategy: str = "group") -> list:
    """Solve several ``(batch_k, r_k, r_k)`` system stacks together.

    Parameters
    ----------
    systems:
        Sequence of ``(lhs, rhs)`` pairs, each a stack accepted by
        :func:`batched_safe_solve`.  The stacks may have different batch sizes
        *and* different ranks ``r_k``.
    ridge:
        Regularisation forwarded to the singular-system fallback.
    strategy:
        ``"group"`` (default) concatenates stacks of equal rank along the
        batch axis and issues one batched solve per distinct rank.  Each
        slice is factorised independently by LAPACK, so every stack's
        solutions are **bit-identical** to solving it alone — the property
        the fleet parity guarantee rests on — while a fleet with one shared
        rank still collapses to a single LAPACK call per sweep.  A singular
        slice anywhere triggers a per-stack retry, so a clean stack keeps
        its exact float path even when a co-tenant needs the regularised
        fallback.
        ``"pad"`` embeds all stacks into the largest rank with
        :func:`pad_rank_stack` and issues exactly one call regardless of
        rank mix, at the cost of last-ulp rounding differences (BLAS kernel
        selection depends on the matrix size) and of cubically more work on
        the padded slices.

    Returns the per-stack solutions (``(batch_k, r_k)`` arrays) in input
    order.  This is how a fleet of heterogeneous sites turns every per-site
    sweep solve into stacked batched solves instead of a Python loop.
    """
    if strategy not in ("group", "pad"):
        raise ValueError(f"unknown strategy {strategy!r}; expected 'group' or 'pad'")
    systems = list(systems)
    if not systems:
        return []
    if len(systems) == 1:
        lhs, rhs = systems[0]
        return [batched_safe_solve(lhs, rhs, ridge=ridge)]
    shaped = [_check_stack(lhs, rhs) for lhs, rhs in systems]

    results: list = [None] * len(shaped)
    if strategy == "pad":
        rank = max(lhs.shape[1] for lhs, _ in shaped)
        padded = [pad_rank_stack(lhs, rhs, rank) for lhs, rhs in shaped]
        stacked_lhs = np.concatenate([lhs for lhs, _ in padded], axis=0)
        stacked_rhs = np.concatenate([rhs for _, rhs in padded], axis=0)
        try:
            solutions = np.linalg.solve(stacked_lhs, stacked_rhs[..., None])[..., 0]
        except np.linalg.LinAlgError:
            # A singular slice in one stack must not drag the other stacks
            # through the regularised fallback: retry each stack alone so
            # only the owner pays for it.
            return [batched_safe_solve(lhs, rhs, ridge=ridge) for lhs, rhs in shaped]
        offset = 0
        for index, (lhs, rhs) in enumerate(shaped):
            batch, r = rhs.shape
            results[index] = solutions[offset : offset + batch, :r].copy()
            offset += batch
        return results

    by_rank: dict = {}
    for index, (lhs, rhs) in enumerate(shaped):
        by_rank.setdefault(lhs.shape[1], []).append(index)
    for indices in by_rank.values():
        if len(indices) == 1:
            index = indices[0]
            lhs, rhs = shaped[index]
            results[index] = batched_safe_solve(lhs, rhs, ridge=ridge)
            continue
        stacked_lhs = np.concatenate([shaped[i][0] for i in indices], axis=0)
        stacked_rhs = np.concatenate([shaped[i][1] for i in indices], axis=0)
        try:
            solutions = np.linalg.solve(stacked_lhs, stacked_rhs[..., None])[..., 0]
        except np.linalg.LinAlgError:
            # Keep stacks independent under singularity (see the pad branch):
            # a clean co-tenant keeps its exact batched-solve float path.
            for index in indices:
                results[index] = batched_safe_solve(*shaped[index], ridge=ridge)
            continue
        offset = 0
        for index in indices:
            batch = shaped[index][1].shape[0]
            results[index] = solutions[offset : offset + batch].copy()
            offset += batch
    return results


def masked_gram_stack(factor: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Stack of weighted Gram matrices ``sum_i weights[i, k] * f_i f_i^T``.

    Parameters
    ----------
    factor:
        Factor matrix of shape ``(m, r)`` whose rows ``f_i`` are combined.
    weights:
        Weight matrix of shape ``(m, batch)``; column ``k`` selects/weights
        the rows contributing to the ``k``-th Gram matrix.

    Returns the ``(batch, r, r)`` tensor whose ``k``-th slice is
    ``factor.T @ diag(weights[:, k]) @ factor``.  This is the left-hand-side
    bulk of every masked ridge system in an alternating-least-squares sweep;
    building all of them with one ``(batch, m) @ (m, r*r)`` matmul replaces
    ``batch`` tiny per-column Gram products.
    """
    factor = np.asarray(factor, dtype=float)
    weights = np.asarray(weights, dtype=float)
    if factor.ndim != 2 or weights.ndim != 2:
        raise ValueError("factor and weights must be 2-D")
    if weights.shape[0] != factor.shape[0]:
        raise ValueError(
            f"weights rows {weights.shape[0]} must match factor rows {factor.shape[0]}"
        )
    m, rank = factor.shape
    pairs = (factor[:, :, None] * factor[:, None, :]).reshape(m, rank * rank)
    return (weights.T @ pairs).reshape(weights.shape[1], rank, rank)


def column_normalize(matrix: np.ndarray) -> np.ndarray:
    """Normalise each column of ``matrix`` by the sum of absolute values.

    Columns whose absolute sum is zero are left untouched.  Used to build the
    continuity matrix ``G`` from ``T + G_diag`` as described in Section IV-C.
    """
    matrix = np.asarray(matrix, dtype=float).copy()
    scale = np.abs(matrix).sum(axis=0)
    nonzero = scale > 0
    matrix[:, nonzero] = matrix[:, nonzero] / scale[nonzero]
    return matrix


def soft_threshold(values: np.ndarray, threshold: float) -> np.ndarray:
    """Elementwise soft-thresholding operator used in ALM iterations."""
    values = np.asarray(values, dtype=float)
    return np.sign(values) * np.maximum(np.abs(values) - threshold, 0.0)


def singular_value_threshold(matrix: np.ndarray, threshold: float) -> np.ndarray:
    """Singular-value soft thresholding (proximal operator of the nuclear norm)."""
    matrix = np.asarray(matrix, dtype=float)
    left, values, right_t = np.linalg.svd(matrix, full_matrices=False)
    shrunk = np.maximum(values - threshold, 0.0)
    return (left * shrunk) @ right_t


def l21_column_shrink(matrix: np.ndarray, threshold: float) -> np.ndarray:
    """Proximal operator of the column-wise ``l2,1`` norm.

    Each column is shrunk towards zero by ``threshold`` in Euclidean norm;
    columns whose norm is below the threshold become exactly zero.  This is
    the error-term update of the LRR solver (Section IV-B, Eq. 12).
    """
    matrix = np.asarray(matrix, dtype=float)
    result = np.zeros_like(matrix)
    norms = np.linalg.norm(matrix, axis=0)
    keep = norms > threshold
    if np.any(keep):
        scale = (norms[keep] - threshold) / norms[keep]
        result[:, keep] = matrix[:, keep] * scale
    return result


def mean_absolute_error(estimate: np.ndarray, target: np.ndarray) -> float:
    """Mean absolute elementwise error between two equal-shape arrays."""
    estimate = np.asarray(estimate, dtype=float)
    target = np.asarray(target, dtype=float)
    if estimate.shape != target.shape:
        raise ValueError("shapes do not match")
    return float(np.mean(np.abs(estimate - target)))


def root_mean_square_error(estimate: np.ndarray, target: np.ndarray) -> float:
    """Root-mean-square elementwise error between two equal-shape arrays."""
    estimate = np.asarray(estimate, dtype=float)
    target = np.asarray(target, dtype=float)
    if estimate.shape != target.shape:
        raise ValueError("shapes do not match")
    return float(np.sqrt(np.mean((estimate - target) ** 2)))


def reconstruction_error_per_element(
    estimate: np.ndarray, target: np.ndarray
) -> np.ndarray:
    """Absolute per-element reconstruction error (in dB for RSS matrices)."""
    estimate = np.asarray(estimate, dtype=float)
    target = np.asarray(target, dtype=float)
    if estimate.shape != target.shape:
        raise ValueError("shapes do not match")
    return np.abs(estimate - target)


def pairwise_euclidean(points_a: np.ndarray, points_b: np.ndarray) -> np.ndarray:
    """Pairwise Euclidean distances between two sets of 2-D points."""
    points_a = np.atleast_2d(np.asarray(points_a, dtype=float))
    points_b = np.atleast_2d(np.asarray(points_b, dtype=float))
    diff = points_a[:, None, :] - points_b[None, :, :]
    return np.sqrt((diff**2).sum(axis=-1))
