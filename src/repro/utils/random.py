"""Seeded random-number-generator helpers.

Every stochastic component of the simulator takes an explicit
``numpy.random.Generator`` so that experiments are reproducible end-to-end
from a single integer seed.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

__all__ = ["make_rng", "spawn_rngs", "derive_rng"]

RngLike = Union[int, np.random.Generator, None]


def make_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh entropy), an integer seed, or an existing
    generator (returned unchanged so callers can thread one generator through
    a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: RngLike, count: int) -> List[np.random.Generator]:
    """Create ``count`` statistically independent child generators."""
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    parent = make_rng(seed)
    seeds = parent.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]


def derive_rng(seed: RngLike, *keys: int) -> np.random.Generator:
    """Derive a deterministic child generator from a seed and integer keys.

    Used by the temporal-variation models so that the drift realised at a
    given time stamp does not depend on how many other time stamps were
    sampled before it.
    """
    if isinstance(seed, np.random.Generator):
        # Generators cannot be re-keyed deterministically; draw a seed once.
        base = int(seed.integers(0, 2**31 - 1))
    elif seed is None:
        base = 0
    else:
        base = int(seed)
    mixed = base & 0xFFFFFFFFFFFFFFFF
    for key in keys:
        mixed = (mixed * 6364136223846793005 + int(key) + 1442695040888963407) & 0xFFFFFFFFFFFFFFFF
    return np.random.default_rng(mixed)
