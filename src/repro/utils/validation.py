"""Input-validation helpers shared by the numerical modules.

All public solvers in :mod:`repro.core` and :mod:`repro.localization` accept
plain numpy arrays.  These helpers keep the argument checking explicit and
uniform so that misuse fails fast with a clear message instead of producing a
shape error deep inside an alternating-least-squares loop.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "check_2d",
    "check_1d",
    "check_matching_shapes",
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_index",
    "as_float_array",
]


def as_float_array(value, name: str = "array") -> np.ndarray:
    """Convert ``value`` to a float64 numpy array.

    Raises
    ------
    TypeError
        If the value cannot be converted to a numeric array.
    """
    try:
        array = np.asarray(value, dtype=float)
    except (TypeError, ValueError) as exc:
        raise TypeError(f"{name} must be convertible to a float array") from exc
    if not np.all(np.isfinite(array)):
        raise ValueError(f"{name} contains NaN or infinite entries")
    return array


def check_2d(array: np.ndarray, name: str = "matrix") -> np.ndarray:
    """Validate that ``array`` is a finite 2-D float matrix and return it."""
    array = as_float_array(array, name)
    if array.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {array.shape}")
    if array.size == 0:
        raise ValueError(f"{name} must be non-empty")
    return array


def check_1d(array: np.ndarray, name: str = "vector") -> np.ndarray:
    """Validate that ``array`` is a finite 1-D float vector and return it."""
    array = as_float_array(array, name)
    if array.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {array.shape}")
    if array.size == 0:
        raise ValueError(f"{name} must be non-empty")
    return array


def check_matching_shapes(
    first: np.ndarray,
    second: np.ndarray,
    first_name: str = "first",
    second_name: str = "second",
) -> None:
    """Raise ``ValueError`` when two arrays do not share the same shape."""
    if first.shape != second.shape:
        raise ValueError(
            f"{first_name} shape {first.shape} does not match "
            f"{second_name} shape {second.shape}"
        )


def check_positive(value: float, name: str = "value") -> float:
    """Validate that ``value`` is a finite, strictly positive scalar."""
    value = float(value)
    if not np.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a positive finite number, got {value}")
    return value


def check_non_negative(value: float, name: str = "value") -> float:
    """Validate that ``value`` is a finite, non-negative scalar."""
    value = float(value)
    if not np.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be a non-negative finite number, got {value}")
    return value


def check_probability(value: float, name: str = "value") -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    value = float(value)
    if not np.isfinite(value) or value < 0 or value > 1:
        raise ValueError(f"{name} must lie in [0, 1], got {value}")
    return value


def check_index(index: int, size: int, name: str = "index") -> int:
    """Validate that ``index`` addresses an element of a length-``size`` axis."""
    index = int(index)
    if index < 0 or index >= size:
        raise ValueError(f"{name} must lie in [0, {size - 1}], got {index}")
    return index


def check_indices(indices: Sequence[int], size: int, name: str = "indices") -> np.ndarray:
    """Validate a sequence of indices against an axis of length ``size``."""
    array = np.asarray(list(indices), dtype=int)
    if array.ndim != 1 or array.size == 0:
        raise ValueError(f"{name} must be a non-empty 1-D sequence of integers")
    if array.min() < 0 or array.max() >= size:
        raise ValueError(f"{name} must lie in [0, {size - 1}]")
    if len(set(array.tolist())) != array.size:
        raise ValueError(f"{name} must not contain duplicates")
    return array
