"""Shared fixtures for the test suite.

The fixtures build small deployments and campaigns (fewer links, shorter
stripes, few survey samples) so the full suite stays fast while still
exercising the real code paths end to end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.environments.base import EnvironmentSpec
from repro.environments.builder import build_deployment
from repro.fingerprint.matrix import FingerprintMatrix
from repro.simulation.campaign import CampaignConfig, SurveyCampaign
from repro.simulation.collector import CollectionConfig


@pytest.fixture(scope="session")
def small_spec() -> EnvironmentSpec:
    """A small office-like environment: 4 links, 6 locations per link."""
    return EnvironmentSpec(
        name="test-office",
        width_m=8.0,
        height_m=6.0,
        link_count=4,
        locations_per_link=6,
        multipath_level="medium",
    )


@pytest.fixture(scope="session")
def small_deployment(small_spec):
    """Deterministic deployment built from the small spec."""
    return build_deployment(small_spec, seed=11)


@pytest.fixture(scope="session")
def small_campaign(small_spec) -> SurveyCampaign:
    """A two-stamp campaign (day 0 and day 45) on the small deployment."""
    config = CampaignConfig(
        timestamps_days=(0.0, 45.0),
        collection=CollectionConfig(survey_samples=4, reference_samples=3, online_samples=2),
        seed=11,
    )
    return SurveyCampaign(small_spec, config)


@pytest.fixture(scope="session")
def small_database(small_campaign):
    """Ground-truth fingerprint database of the small campaign."""
    return small_campaign.database


@pytest.fixture()
def rng() -> np.random.Generator:
    """Fresh deterministic RNG per test."""
    return np.random.default_rng(123)


@pytest.fixture()
def synthetic_low_rank_matrix(rng) -> np.ndarray:
    """An exactly rank-3 8x24 matrix with a dominant mean component."""
    left = rng.normal(size=(8, 3))
    right = rng.normal(size=(24, 3))
    return -60.0 + left @ right.T


@pytest.fixture()
def striped_fingerprint(rng) -> FingerprintMatrix:
    """A synthetic fingerprint matrix with realistic stripe structure."""
    links, width = 4, 6
    n = links * width
    values = np.full((links, n), -60.0)
    for j in range(n):
        own = j // width
        offset = j % width
        # Large decrease on the own link, shaped along the stripe.
        values[own, j] -= 6.0 + 3.0 * abs(2.0 * (offset + 0.5) / width - 1.0)
        # Small decrease on adjacent links.
        if own - 1 >= 0:
            values[own - 1, j] -= 1.5
        if own + 1 < links:
            values[own + 1, j] -= 1.5
    values += rng.normal(0.0, 0.2, size=values.shape)
    return FingerprintMatrix(values=values, locations_per_link=width)
