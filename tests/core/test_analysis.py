"""Unit tests for :mod:`repro.core.analysis` (Section II diagnostics)."""

import numpy as np
import pytest

from repro.core.analysis import (
    als_values,
    difference_stability,
    low_rank_report,
    nlc_values,
    singular_value_profile,
)


class TestSingularValueProfile:
    def test_first_value_is_one(self, synthetic_low_rank_matrix):
        profile = singular_value_profile(synthetic_low_rank_matrix)
        assert profile[0] == pytest.approx(1.0)

    def test_length_equals_min_dimension(self, synthetic_low_rank_matrix):
        profile = singular_value_profile(synthetic_low_rank_matrix)
        assert profile.size == min(synthetic_low_rank_matrix.shape)


class TestLowRankReport:
    def test_fingerprint_matrix_is_approximately_low_rank(self, small_database):
        report = low_rank_report(small_database.original.values)
        assert report.approximately_low_rank
        assert not report.exactly_low_rank
        assert report.leading_energy_fraction > 0.5

    def test_exactly_low_rank_detection(self, rng):
        # A rank-1 matrix with many rows: r=1 << M and the energy condition holds.
        matrix = np.outer(rng.normal(size=20), rng.normal(size=30))
        report = low_rank_report(matrix, rank=1)
        assert report.exactly_low_rank

    def test_rank_defaults_to_row_count(self, small_database):
        matrix = small_database.original.values
        report = low_rank_report(matrix)
        assert report.rank == matrix.shape[0]

    def test_rank_energy_at_least_leading_energy(self, small_database):
        report = low_rank_report(small_database.original.values)
        assert report.rank_energy_fraction >= report.leading_energy_fraction


class TestNLC:
    def test_length(self, striped_fingerprint):
        xd = striped_fingerprint.largely_decrease_matrix()
        assert nlc_values(xd).size == xd.size

    def test_values_in_unit_interval(self, striped_fingerprint):
        values = nlc_values(striped_fingerprint.largely_decrease_matrix())
        assert np.all(values >= 0.0)
        assert np.all(values <= 1.0)

    def test_constant_matrix_gives_zeros(self):
        xd = np.full((3, 5), -65.0)
        np.testing.assert_allclose(nlc_values(xd), np.zeros(15))

    def test_smooth_stripes_have_small_nlc(self, small_database):
        # Observation 2: most NLC values of a real fingerprint matrix are small.
        xd = small_database.original.largely_decrease_matrix()
        values = nlc_values(xd)
        assert np.mean(values < 0.3) > 0.7

    def test_outlier_increases_nlc(self, striped_fingerprint):
        xd = striped_fingerprint.largely_decrease_matrix()
        baseline_max = nlc_values(xd).max()
        xd_outlier = xd.copy()
        xd_outlier[1, 2] += 20.0
        assert nlc_values(xd_outlier).max() > baseline_max


class TestALS:
    def test_length(self, striped_fingerprint):
        xd = striped_fingerprint.largely_decrease_matrix()
        assert als_values(xd).size == (xd.shape[0] - 1) * xd.shape[1]

    def test_values_in_unit_interval(self, striped_fingerprint):
        values = als_values(striped_fingerprint.largely_decrease_matrix())
        assert np.all(values >= 0.0)
        assert np.all(values <= 1.0)

    def test_identical_links_give_zeros(self):
        xd = np.tile(np.linspace(-70, -60, 5)[None, :], (4, 1))
        np.testing.assert_allclose(als_values(xd), np.zeros(15))

    def test_single_link_rejected(self):
        with pytest.raises(ValueError):
            als_values(np.zeros((1, 5)))

    def test_adjacent_links_mostly_similar(self, small_database):
        # Observation 3: a majority of ALS values are well below the maximum
        # difference.  The small 4-link test deployment has stronger per-link
        # shadowing differences than the paper's calibrated testbed, so the
        # threshold is looser here; the office-scale check lives in the
        # Fig. 9 benchmark.
        values = als_values(small_database.original.largely_decrease_matrix())
        assert np.mean(values < 0.7) >= 0.5


class TestDifferenceStability:
    def test_stable_differences_detected(self, rng):
        base = rng.normal(0.0, 2.0, size=200)
        neighbour_diff = rng.normal(0.0, 0.3, size=200)
        adjacent_diff = rng.normal(0.0, 0.4, size=200)
        stats = difference_stability(base, neighbour_diff, adjacent_diff)
        assert stats["neighbour_stability_ratio"] < 1.0
        assert stats["adjacent_stability_ratio"] < 1.0
        assert stats["rss_span_db"] > stats["neighbour_span_db"]

    def test_keys_present(self, rng):
        stats = difference_stability(rng.normal(size=10), rng.normal(size=10), rng.normal(size=10))
        for key in (
            "rss_span_db",
            "neighbour_span_db",
            "adjacent_span_db",
            "rss_std_db",
            "neighbour_std_db",
            "adjacent_std_db",
        ):
            assert key in stats

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            difference_stability([], [1.0], [1.0])
