"""Parity regression tests between the ``looped`` and ``batched`` ALS backends.

The batched backend must reproduce the looped reference path to floating-point
noise (≤ 1e-10 on the final estimates) across the solver matrix: basic RSVD
and the self-augmented solver, with and without Constraints 1/2, on masked and
fully-observed matrices.  The parity configurations use a moderate rank and
regularisation so the per-sweep normal equations are well conditioned —
with near-singular systems (rank = M, tiny lambda) both backends remain valid
ALS iterates but BLAS summation-order noise is amplified beyond any sensible
bitwise-comparison threshold.
"""

import numpy as np
import pytest

from repro.core.rsvd import RSVDConfig, rsvd_complete
from repro.core.self_augmented import SelfAugmentedConfig, self_augmented_rsvd
from repro.utils.linalg import batched_safe_solve, masked_gram_stack, safe_solve

PARITY_TOL = 1e-10

LINKS = 8
STRIPE_WIDTH = 9
LOCATIONS = LINKS * STRIPE_WIDTH


def make_problem(seed=0, observe_fraction=0.6):
    rng = np.random.default_rng(seed)
    truth = -60.0 + rng.normal(size=(LINKS, 4)) @ rng.normal(size=(4, LOCATIONS))
    masked = (rng.random(truth.shape) < observe_fraction).astype(float)
    full = np.ones_like(truth)
    prediction = truth + rng.normal(scale=0.1, size=truth.shape)
    return truth, masked, full, prediction


@pytest.fixture(params=["masked", "full"])
def observation(request):
    truth, masked, full, prediction = make_problem()
    mask = masked if request.param == "masked" else full
    return truth * mask, mask, prediction


class TestBatchedSolvePrimitives:
    def test_batched_matches_sequential_safe_solve(self):
        rng = np.random.default_rng(1)
        lhs = rng.normal(size=(12, 5, 5))
        lhs = lhs @ np.transpose(lhs, (0, 2, 1)) + 0.1 * np.eye(5)
        rhs = rng.normal(size=(12, 5))
        batched = batched_safe_solve(lhs, rhs)
        for k in range(lhs.shape[0]):
            np.testing.assert_allclose(batched[k], safe_solve(lhs[k], rhs[k]), atol=1e-12)

    def test_batched_falls_back_on_singular_slice(self):
        lhs = np.stack([np.eye(3), np.zeros((3, 3))])
        rhs = np.ones((2, 3))
        result = batched_safe_solve(lhs, rhs)
        np.testing.assert_allclose(result[0], np.ones(3), atol=1e-12)
        assert np.all(np.isfinite(result[1]))

    def test_batched_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            batched_safe_solve(np.zeros((2, 3, 4)), np.zeros((2, 3)))
        with pytest.raises(ValueError):
            batched_safe_solve(np.zeros((2, 3, 3)), np.zeros((3, 3)))

    def test_masked_gram_stack_matches_per_column_grams(self):
        rng = np.random.default_rng(2)
        factor = rng.normal(size=(10, 4))
        weights = (rng.random((10, 7)) < 0.5).astype(float)
        stack = masked_gram_stack(factor, weights)
        assert stack.shape == (7, 4, 4)
        for k in range(7):
            expected = (factor * weights[:, k][:, None]).T @ factor
            np.testing.assert_allclose(stack[k], expected, atol=1e-12)


class TestRSVDBackendParity:
    def test_estimates_agree(self, observation):
        observed, mask, _ = observation
        results = {}
        for backend in ("looped", "batched"):
            config = RSVDConfig(
                rank=5, regularization=0.5, max_iterations=10, solver_backend=backend
            )
            results[backend] = rsvd_complete(observed, mask, config, rng=7)
        np.testing.assert_allclose(
            results["batched"].estimate,
            results["looped"].estimate,
            atol=PARITY_TOL,
            rtol=0.0,
        )
        np.testing.assert_allclose(
            results["batched"].objective,
            results["looped"].objective,
            rtol=1e-10,
        )
        assert results["batched"].iterations == results["looped"].iterations

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            RSVDConfig(solver_backend="vectorised")


class TestSelfAugmentedBackendParity:
    @pytest.mark.parametrize(
        "use_reference, use_structure",
        [(True, True), (True, False), (False, True), (False, False)],
    )
    def test_estimates_agree(self, observation, use_reference, use_structure):
        observed, mask, prediction = observation
        results = {}
        for backend in ("looped", "batched"):
            config = SelfAugmentedConfig(
                rank=5,
                regularization=0.5,
                max_iterations=8,
                use_reference_constraint=use_reference,
                use_structure_constraint=use_structure,
                solver_backend=backend,
            )
            results[backend] = self_augmented_rsvd(
                observed,
                mask,
                STRIPE_WIDTH,
                prediction=prediction,
                config=config,
                rng=7,
            )
        np.testing.assert_allclose(
            results["batched"].estimate,
            results["looped"].estimate,
            atol=PARITY_TOL,
            rtol=0.0,
        )
        assert results["batched"].iterations == results["looped"].iterations
        assert results["batched"].reference_weight == results["looped"].reference_weight
        assert results["batched"].structure_weight == results["looped"].structure_weight

    def test_no_prediction_parity(self, observation):
        observed, mask, _ = observation
        results = {}
        for backend in ("looped", "batched"):
            config = SelfAugmentedConfig(
                rank=5, regularization=0.5, max_iterations=8, solver_backend=backend
            )
            results[backend] = self_augmented_rsvd(
                observed, mask, STRIPE_WIDTH, prediction=None, config=config, rng=7
            )
        np.testing.assert_allclose(
            results["batched"].estimate,
            results["looped"].estimate,
            atol=PARITY_TOL,
            rtol=0.0,
        )

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            SelfAugmentedConfig(solver_backend="vectorised")
