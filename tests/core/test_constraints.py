"""Unit tests for :mod:`repro.core.constraints` (matrices T, G, H)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.constraints import (
    continuity_matrix,
    continuity_penalty,
    degree_matrix,
    relationship_matrix,
    similarity_matrix,
    similarity_penalty,
)


class TestRelationshipMatrix:
    def test_3x3_matches_paper_example(self):
        expected = np.array([[0.0, 1.0, 0.0], [1.0, 0.0, 1.0], [0.0, 1.0, 0.0]])
        np.testing.assert_allclose(relationship_matrix(3), expected)

    def test_symmetric(self):
        t = relationship_matrix(7)
        np.testing.assert_allclose(t, t.T)

    def test_row_sums_are_neighbour_counts(self):
        t = relationship_matrix(5)
        np.testing.assert_allclose(t.sum(axis=0), [1.0, 2.0, 2.0, 2.0, 1.0])

    def test_rejects_small_width(self):
        with pytest.raises(ValueError):
            relationship_matrix(1)


class TestDegreeMatrix:
    def test_3x3_matches_paper_example(self):
        expected = np.diag([-1.0, -2.0, -1.0])
        np.testing.assert_allclose(degree_matrix(3), expected)

    def test_diagonal_only(self):
        d = degree_matrix(6)
        np.testing.assert_allclose(d, np.diag(np.diag(d)))


class TestContinuityMatrix:
    def test_without_midpoint_adjustment_matches_paper_example(self):
        # Eq. (14) in the paper: the column-normalised (T + D) for N/M = 3.
        expected = np.array(
            [[1.0, -0.5, 0.0], [-1.0, 1.0, -1.0], [0.0, -0.5, 1.0]]
        )
        g = continuity_matrix(3, midpoint_adjustment=False)
        np.testing.assert_allclose(np.abs(g), np.abs(expected))
        np.testing.assert_allclose(np.abs(g).sum(axis=0), [2.0, 2.0, 2.0])

    def test_midpoint_adjustment_integer_case(self):
        # N/M = 3 gives an integer midpoint p = 2 (1-based), i.e. column 1.
        g = continuity_matrix(3, midpoint_adjustment=True)
        assert g[1, 1] == 0.0
        assert g[2, 1] == 1.0
        assert g[0, 1] == -1.0

    def test_midpoint_adjustment_non_integer_case(self):
        # N/M = 4 gives a non-integer midpoint: columns 1 and 2 get stencils.
        g = continuity_matrix(4, midpoint_adjustment=True)
        assert g[1, 1] == 0.0
        assert g[2, 2] == 0.0

    def test_constant_row_annihilated_off_midpoint(self):
        # A perfectly smooth (constant) stripe should produce near-zero
        # penalty in the non-midpoint columns of X_D G.
        g = continuity_matrix(5, midpoint_adjustment=False)
        row = np.full((1, 5), 7.0)
        product = row @ g
        np.testing.assert_allclose(product, np.zeros_like(product), atol=1e-9)

    def test_rejects_small_width(self):
        with pytest.raises(ValueError):
            continuity_matrix(1)


class TestSimilarityMatrix:
    def test_structure(self):
        h = similarity_matrix(4)
        np.testing.assert_allclose(np.diag(h), np.ones(4))
        np.testing.assert_allclose(np.diag(h, -1), -np.ones(3))
        assert h[0, 1] == 0.0

    def test_identical_rows_give_zero_differences(self):
        h = similarity_matrix(3)
        xd = np.tile(np.array([[1.0, 2.0, 3.0]]), (3, 1))
        differences = h @ xd
        np.testing.assert_allclose(differences[1:], np.zeros((2, 3)))

    def test_rejects_single_link(self):
        with pytest.raises(ValueError):
            similarity_matrix(1)


class TestPenalties:
    def test_smooth_matrix_low_continuity_penalty(self):
        smooth = np.tile(np.linspace(-70, -60, 6)[None, :], (4, 1))
        rough = smooth.copy()
        rough[2, 3] += 15.0
        assert continuity_penalty(smooth) < continuity_penalty(rough)

    def test_similar_links_low_similarity_penalty(self):
        base = np.tile(np.linspace(-70, -60, 6)[None, :], (4, 1))
        dissimilar = base + np.arange(4)[:, None] * 5.0
        assert similarity_penalty(base) < similarity_penalty(dissimilar)

    def test_penalties_non_negative(self):
        xd = np.random.default_rng(0).normal(size=(4, 6))
        assert continuity_penalty(xd) >= 0.0
        assert similarity_penalty(xd) >= 0.0

    @given(
        hnp.arrays(
            dtype=float,
            shape=st.tuples(st.integers(2, 6), st.integers(2, 8)),
            elements=st.floats(-80, -40, allow_nan=False),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_penalties_scale_quadratically(self, xd):
        assert continuity_penalty(2.0 * xd) == pytest.approx(
            4.0 * continuity_penalty(xd), rel=1e-6, abs=1e-6
        )
        assert similarity_penalty(2.0 * xd) == pytest.approx(
            4.0 * similarity_penalty(xd), rel=1e-6, abs=1e-6
        )
