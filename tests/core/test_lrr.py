"""Unit tests for :mod:`repro.core.lrr` (low-rank representation solver)."""

import numpy as np
import pytest

from repro.core.lrr import LRRConfig, low_rank_representation
from repro.core.mic import select_reference_locations


class TestLRRConfig:
    def test_defaults_valid(self):
        LRRConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"epsilon": 0.0},
            {"max_iterations": 0},
            {"tolerance": 0.0},
            {"mu_initial": 0.0},
            {"mu_initial": 10.0, "mu_max": 1.0},
            {"rho": 1.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            LRRConfig(**kwargs)


class TestLowRankRepresentation:
    def test_exact_representation_of_low_rank_matrix(self, rng):
        left = rng.normal(size=(8, 3))
        right = rng.normal(size=(24, 3))
        matrix = left @ right.T
        mic = select_reference_locations(matrix)
        result = low_rank_representation(matrix, mic.mic_matrix)
        prediction = mic.mic_matrix @ result.correlation
        assert np.abs(prediction - matrix).mean() < 0.15

    def test_correlation_shape(self, rng):
        matrix = rng.normal(size=(6, 18))
        dictionary = matrix[:, :5]
        result = low_rank_representation(matrix, dictionary)
        assert result.correlation.shape == (5, 18)
        assert result.error.shape == matrix.shape

    def test_predict_applies_fresh_reference(self, rng):
        left = rng.normal(size=(6, 3))
        right = rng.normal(size=(20, 3))
        matrix = left @ right.T
        mic = select_reference_locations(matrix)
        result = low_rank_representation(matrix, mic.mic_matrix)
        # A global scaling of the matrix scales its reference columns the
        # same way, so prediction from scaled references recovers the scaled
        # matrix under the original correlation.
        scaled_reference = 1.5 * matrix[:, list(mic.indices)]
        prediction = result.predict(scaled_reference)
        assert np.abs(prediction - 1.5 * matrix).mean() < 0.3

    def test_predict_rejects_wrong_width(self, rng):
        matrix = rng.normal(size=(6, 18))
        result = low_rank_representation(matrix, matrix[:, :5])
        with pytest.raises(ValueError):
            result.predict(np.zeros((6, 4)))

    def test_row_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            low_rank_representation(rng.normal(size=(6, 18)), rng.normal(size=(5, 4)))

    def test_column_outliers_absorbed_by_error_term(self, rng):
        left = rng.normal(size=(8, 3))
        right = rng.normal(size=(24, 3))
        matrix = left @ right.T
        corrupted = matrix.copy()
        corrupted[:, 7] += 25.0  # one grossly corrupted column
        mic = select_reference_locations(matrix)
        result = low_rank_representation(corrupted, mic.mic_matrix, LRRConfig(epsilon=0.05))
        column_error_norms = np.linalg.norm(result.error, axis=0)
        assert np.argmax(column_error_norms) == 7

    def test_converges_on_fingerprint_matrix(self, small_database):
        matrix = small_database.original.values
        mic = select_reference_locations(matrix)
        result = low_rank_representation(matrix, mic.mic_matrix)
        assert result.iterations <= LRRConfig().max_iterations
        prediction = mic.mic_matrix @ result.correlation
        assert np.abs(prediction - matrix).mean() < 1.5
