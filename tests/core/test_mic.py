"""Unit tests for :mod:`repro.core.mic` (reference-location selection)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mic import MICResult, numerical_rank, select_reference_locations


@pytest.fixture()
def rank3_matrix(rng):
    left = rng.normal(size=(8, 3))
    right = rng.normal(size=(30, 3))
    return left @ right.T


class TestNumericalRank:
    def test_exact_low_rank(self, rank3_matrix):
        assert numerical_rank(rank3_matrix) == 3

    def test_full_rank(self, rng):
        assert numerical_rank(rng.normal(size=(5, 20))) == 5


class TestSelection:
    def test_default_count_equals_rank(self, rank3_matrix):
        result = select_reference_locations(rank3_matrix)
        assert result.count == result.rank == 3

    def test_indices_unique_and_in_range(self, rank3_matrix):
        result = select_reference_locations(rank3_matrix, count=5)
        assert len(set(result.indices)) == 5
        assert all(0 <= j < rank3_matrix.shape[1] for j in result.indices)

    def test_mic_matrix_matches_indices(self, rank3_matrix):
        result = select_reference_locations(rank3_matrix, count=4)
        np.testing.assert_allclose(result.mic_matrix, rank3_matrix[:, list(result.indices)])

    def test_selected_columns_span_the_matrix(self, rank3_matrix):
        result = select_reference_locations(rank3_matrix)
        # Every column of the matrix must be a linear combination of the MIC
        # columns (that is the defining property the paper relies on).
        coefficients, residuals, *_ = np.linalg.lstsq(
            result.mic_matrix, rank3_matrix, rcond=None
        )
        reconstruction = result.mic_matrix @ coefficients
        np.testing.assert_allclose(reconstruction, rank3_matrix, atol=1e-8)

    def test_gauss_strategy_also_spans(self, rank3_matrix):
        result = select_reference_locations(rank3_matrix, strategy="gauss")
        coefficients, *_ = np.linalg.lstsq(result.mic_matrix, rank3_matrix, rcond=None)
        np.testing.assert_allclose(result.mic_matrix @ coefficients, rank3_matrix, atol=1e-8)

    def test_gauss_selects_leftmost_independent_columns(self):
        # Columns 0 and 1 are independent; column 2 is their sum.
        matrix = np.array(
            [[1.0, 0.0, 1.0, 2.0], [0.0, 1.0, 1.0, 0.0], [0.0, 0.0, 0.0, 0.0]]
        )
        result = select_reference_locations(matrix, strategy="gauss")
        assert result.indices == (0, 1)

    def test_count_above_rank_pads_with_extra_columns(self, rank3_matrix):
        result = select_reference_locations(rank3_matrix, count=6, strategy="gauss")
        assert result.count == 6

    def test_count_above_columns_rejected(self, rank3_matrix):
        with pytest.raises(ValueError):
            select_reference_locations(rank3_matrix, count=99)

    def test_non_positive_count_rejected(self, rank3_matrix):
        with pytest.raises(ValueError):
            select_reference_locations(rank3_matrix, count=0)

    def test_unknown_strategy_rejected(self, rank3_matrix):
        with pytest.raises(ValueError):
            select_reference_locations(rank3_matrix, strategy="magic")

    def test_reference_count_small_compared_to_locations(self, small_database):
        # The paper's Claim 1: the number of reference locations equals the
        # rank (= link count), which is far smaller than the location count.
        original = small_database.original
        result = select_reference_locations(original.values)
        assert result.count <= original.link_count
        assert result.count < original.location_count

    @given(st.integers(2, 6), st.integers(8, 20), st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_random_low_rank_matrices(self, rows, columns, rank):
        rng = np.random.default_rng(rows * 100 + columns * 10 + rank)
        rank = min(rank, rows, columns)
        matrix = rng.normal(size=(rows, rank)) @ rng.normal(size=(columns, rank)).T
        result = select_reference_locations(matrix)
        assert result.count == numerical_rank(matrix)
        coefficients, *_ = np.linalg.lstsq(result.mic_matrix, matrix, rcond=None)
        assert np.allclose(result.mic_matrix @ coefficients, matrix, atol=1e-6)
