"""Unit tests for :mod:`repro.core.rsvd` (basic regularized SVD completion)."""

import numpy as np
import pytest

from repro.core.rsvd import RSVDConfig, rsvd_complete


def make_low_rank(rng, rows=8, columns=24, rank=3, offset=-60.0):
    left = rng.normal(size=(rows, rank))
    right = rng.normal(size=(columns, rank))
    return offset + left @ right.T


class TestRSVDConfig:
    def test_defaults_valid(self):
        RSVDConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rank": 0},
            {"regularization": -1.0},
            {"max_iterations": 0},
            {"tolerance": 0.0},
            {"init_scale": 0.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RSVDConfig(**kwargs)


class TestRSVDCompletion:
    def test_fits_observed_entries(self, rng):
        matrix = make_low_rank(rng)
        mask = (rng.random(matrix.shape) < 0.7).astype(float)
        observed = matrix * mask
        result = rsvd_complete(observed, mask, RSVDConfig(regularization=0.01), rng=1)
        observed_error = np.abs((result.estimate - matrix) * mask).sum() / mask.sum()
        assert observed_error < 0.5

    def test_completes_missing_entries_of_low_rank_matrix(self, rng):
        matrix = make_low_rank(rng, rank=2)
        mask = (rng.random(matrix.shape) < 0.8).astype(float)
        observed = matrix * mask
        result = rsvd_complete(
            observed, mask, RSVDConfig(rank=3, regularization=0.5, max_iterations=200), rng=1
        )
        missing = mask == 0
        missing_error = np.abs(result.estimate - matrix)[missing].mean()
        assert missing_error < 2.0

    def test_factor_shapes(self, rng):
        matrix = make_low_rank(rng)
        mask = np.ones_like(matrix)
        result = rsvd_complete(matrix, mask, RSVDConfig(rank=5), rng=0)
        assert result.left.shape == (8, 5)
        assert result.right.shape == (24, 5)
        assert result.estimate.shape == matrix.shape

    def test_default_rank_is_row_count(self, rng):
        matrix = make_low_rank(rng)
        result = rsvd_complete(matrix, np.ones_like(matrix), rng=0)
        assert result.left.shape[1] == matrix.shape[0]

    def test_objective_finite_and_positive(self, rng):
        matrix = make_low_rank(rng)
        mask = np.ones_like(matrix)
        result = rsvd_complete(matrix, mask, rng=0)
        assert np.isfinite(result.objective)
        assert result.objective >= 0.0

    def test_deterministic_given_seed(self, rng):
        matrix = make_low_rank(rng)
        mask = (np.arange(matrix.size).reshape(matrix.shape) % 3 != 0).astype(float)
        a = rsvd_complete(matrix * mask, mask, rng=7)
        b = rsvd_complete(matrix * mask, mask, rng=7)
        np.testing.assert_allclose(a.estimate, b.estimate)

    def test_regularization_shrinks_factors(self, rng):
        matrix = make_low_rank(rng)
        mask = np.ones_like(matrix)
        weak = rsvd_complete(matrix, mask, RSVDConfig(regularization=1e-3), rng=1)
        strong = rsvd_complete(matrix, mask, RSVDConfig(regularization=100.0), rng=1)
        weak_norm = np.linalg.norm(weak.left) + np.linalg.norm(weak.right)
        strong_norm = np.linalg.norm(strong.left) + np.linalg.norm(strong.right)
        assert strong_norm < weak_norm

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            rsvd_complete(np.zeros((3, 4)), np.zeros((4, 4)))

    def test_non_binary_mask_rejected(self):
        with pytest.raises(ValueError):
            rsvd_complete(np.zeros((3, 4)), np.full((3, 4), 0.5))
