"""Unit tests for :mod:`repro.core.self_augmented` (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.self_augmented import (
    SelfAugmentedConfig,
    SweepState,
    self_augmented_rsvd,
    solve_state,
)


def make_problem(rng, links=4, width=6, drift=2.0):
    """A synthetic fingerprint-update problem with known ground truth."""
    n = links * width
    truth = np.full((links, n), -60.0)
    for j in range(n):
        own = j // width
        offset = j % width
        truth[own, j] -= 6.0 + 2.0 * abs(2.0 * (offset + 0.5) / width - 1.0)
        if own - 1 >= 0:
            truth[own - 1, j] -= 1.5
        if own + 1 < links:
            truth[own + 1, j] -= 1.5
    truth += drift * rng.normal(size=(links, 1))  # per-link drift
    mask = np.zeros((links, n))
    for j in range(n):
        own = j // width
        for i in range(links):
            if abs(i - own) >= 2:
                mask[i, j] = 1.0
    observed = truth * mask
    return truth, observed, mask


class TestConfigValidation:
    def test_defaults_valid(self):
        SelfAugmentedConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rank": 0},
            {"regularization": -0.1},
            {"max_iterations": 0},
            {"tolerance": 0.0},
            {"reference_weight": -1.0},
            {"structure_weight": -1.0},
            {"init_scale": 0.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SelfAugmentedConfig(**kwargs)


class TestSolver:
    def test_prediction_constraint_pins_solution(self, rng):
        truth, observed, mask = make_problem(rng)
        prediction = truth + rng.normal(0.0, 0.3, size=truth.shape)
        result = self_augmented_rsvd(
            observed, mask, locations_per_link=6, prediction=prediction, rng=1
        )
        assert np.abs(result.estimate - truth).mean() < 1.0

    def test_without_constraints_solution_is_ambiguous(self, rng):
        truth, observed, mask = make_problem(rng)
        config = SelfAugmentedConfig(
            use_reference_constraint=False, use_structure_constraint=False
        )
        result = self_augmented_rsvd(
            observed, mask, locations_per_link=6, prediction=None, config=config, rng=1
        )
        unconstrained_error = np.abs(result.estimate - truth).mean()
        constrained = self_augmented_rsvd(
            observed,
            mask,
            locations_per_link=6,
            prediction=truth + rng.normal(0.0, 0.3, size=truth.shape),
            rng=1,
        )
        constrained_error = np.abs(constrained.estimate - truth).mean()
        assert constrained_error < unconstrained_error

    def test_structure_constraint_suppresses_outliers(self, rng):
        truth, observed, mask = make_problem(rng, drift=0.0)
        # Corrupt the prediction with a single large outlier on a stripe entry.
        prediction = truth.copy()
        prediction[1, 1 * 6 + 2] += 12.0
        with_structure = self_augmented_rsvd(
            observed, mask, 6, prediction=prediction, rng=1
        )
        without_structure = self_augmented_rsvd(
            observed,
            mask,
            6,
            prediction=prediction,
            config=SelfAugmentedConfig(use_structure_constraint=False),
            rng=1,
        )
        err_with = np.abs(with_structure.estimate - truth)[1, 8]
        err_without = np.abs(without_structure.estimate - truth)[1, 8]
        assert err_with <= err_without + 1e-6

    def test_result_metadata(self, rng):
        truth, observed, mask = make_problem(rng)
        result = self_augmented_rsvd(observed, mask, 6, prediction=truth, rng=1)
        assert result.left.shape[0] == truth.shape[0]
        assert result.right.shape[0] == truth.shape[1]
        assert result.iterations >= 1
        assert result.reference_weight > 0.0
        assert result.structure_weight > 0.0
        assert np.isfinite(result.objective)

    def test_weights_zero_when_constraints_disabled(self, rng):
        truth, observed, mask = make_problem(rng)
        config = SelfAugmentedConfig(
            use_reference_constraint=False, use_structure_constraint=False
        )
        result = self_augmented_rsvd(observed, mask, 6, config=config, rng=1)
        assert result.reference_weight == 0.0
        assert result.structure_weight == 0.0

    def test_deterministic_given_seed(self, rng):
        truth, observed, mask = make_problem(rng)
        a = self_augmented_rsvd(observed, mask, 6, prediction=truth, rng=5)
        b = self_augmented_rsvd(observed, mask, 6, prediction=truth, rng=5)
        np.testing.assert_allclose(a.estimate, b.estimate)

    def test_explicit_weights_respected(self, rng):
        truth, observed, mask = make_problem(rng)
        config = SelfAugmentedConfig(reference_weight=2.5, structure_weight=0.7)
        result = self_augmented_rsvd(observed, mask, 6, prediction=truth, config=config, rng=1)
        assert result.reference_weight == 2.5
        assert result.structure_weight == 0.7

    def test_invalid_stripe_width_rejected(self, rng):
        truth, observed, mask = make_problem(rng)
        with pytest.raises(ValueError):
            self_augmented_rsvd(observed, mask, 5, prediction=truth)

    def test_shape_mismatch_rejected(self, rng):
        truth, observed, mask = make_problem(rng)
        with pytest.raises(ValueError):
            self_augmented_rsvd(observed, mask[:, :-1], 6)

    def test_non_binary_mask_rejected(self, rng):
        truth, observed, mask = make_problem(rng)
        with pytest.raises(ValueError):
            self_augmented_rsvd(observed, mask * 0.5, 6)

    def test_all_zero_observed_rejected(self, rng):
        truth, observed, mask = make_problem(rng)
        with pytest.raises(ValueError, match="entirely zero"):
            SweepState(np.zeros_like(observed), mask, 6)


class TestWarmStart:
    def solve(self, observed, mask, prediction, **kwargs):
        state = SweepState(observed, mask, 6, prediction=prediction, **kwargs)
        return state, solve_state(state)

    def test_unchanged_data_converges_in_zero_sweeps_bit_identical(self, rng):
        truth, observed, mask = make_problem(rng)
        prediction = truth + rng.normal(0.0, 0.3, size=truth.shape)
        cold_state, cold = self.solve(observed, mask, prediction, rng=7)
        left, right, objective = cold_state.export_factors()

        warm_state = SweepState(observed, mask, 6, prediction=prediction, rng=7)
        converged = warm_state.warm_start(left, right, objective)
        assert converged and warm_state.converged
        assert warm_state.warm_started
        warm = solve_state(warm_state)
        assert warm.iterations == 0
        np.testing.assert_array_equal(warm.estimate, cold.estimate)
        np.testing.assert_array_equal(warm.left, cold.left)
        np.testing.assert_array_equal(warm.right, cold.right)

    def test_small_drift_converges_in_fewer_sweeps(self, rng):
        truth, observed, mask = make_problem(rng)
        prediction = truth + rng.normal(0.0, 0.3, size=truth.shape)
        config = SelfAugmentedConfig(tolerance=1e-4)
        cold_state, cold = self.solve(
            observed, mask, prediction, config=config, rng=7
        )
        left, right, objective = cold_state.export_factors()

        drifted = observed + 1e-4 * mask * rng.normal(size=observed.shape)
        recold = self_augmented_rsvd(
            drifted, mask, 6, prediction=prediction, config=config, rng=7
        )
        warm_state = SweepState(
            drifted, mask, 6, prediction=prediction, config=config, rng=7
        )
        warm_state.warm_start(left, right, objective)
        warm = solve_state(warm_state)
        assert warm.iterations <= 1
        assert warm.iterations < recold.iterations

    def test_without_objective_needs_at_least_one_sweep(self, rng):
        truth, observed, mask = make_problem(rng)
        prediction = truth + rng.normal(0.0, 0.3, size=truth.shape)
        config = SelfAugmentedConfig(tolerance=1e-3, max_iterations=200)
        state, result = self.solve(
            observed, mask, prediction, config=config, rng=7
        )
        assert result.converged
        left, right, _ = state.export_factors()
        warm_state = SweepState(
            observed, mask, 6, prediction=prediction, config=config, rng=7
        )
        converged = warm_state.warm_start(left, right)
        assert not converged
        warm = solve_state(warm_state)
        # The warm objective seeds previous_objective, so the first sweep's
        # relative change is already below tolerance.
        assert warm.iterations == 1

    def test_factors_are_copied_in_and_out(self, rng):
        truth, observed, mask = make_problem(rng)
        state, _ = self.solve(observed, mask, None, rng=7)
        left, right, objective = state.export_factors()
        assert left is not state.left and right is not state.right
        other = SweepState(observed, mask, 6, rng=7)
        other.warm_start(left, right, objective)
        left[:] = 0.0
        assert np.any(other.left)

    def test_shape_mismatch_rejected(self, rng):
        truth, observed, mask = make_problem(rng)
        state = SweepState(observed, mask, 6, rng=7)
        good_left = np.zeros((state.m, state.rank))
        good_right = np.zeros((state.n, state.rank))
        with pytest.raises(ValueError, match="left factor"):
            state.warm_start(good_left[:-1], good_right)
        with pytest.raises(ValueError, match="right factor"):
            state.warm_start(good_left, good_right[:, :-1])

    def test_mismatched_objective_does_not_converge(self, rng):
        truth, observed, mask = make_problem(rng)
        state, _ = self.solve(observed, mask, None, rng=7)
        left, right, objective = state.export_factors()
        drifted = observed + mask * rng.normal(size=observed.shape)
        warm_state = SweepState(drifted, mask, 6, rng=7)
        assert not warm_state.warm_start(left, right, objective)
        assert not warm_state.converged


class TestSvdInit:
    def test_invalid_init_rejected(self):
        with pytest.raises(ValueError, match="init must be"):
            SelfAugmentedConfig(init="qr")

    def test_svd_init_deterministic_truncated(self, rng):
        truth, observed, mask = make_problem(rng)
        config = SelfAugmentedConfig(init="svd", rank=2)  # k < min(m, n): svds path
        a = self_augmented_rsvd(observed, mask, 6, prediction=truth, config=config, rng=3)
        b = self_augmented_rsvd(observed, mask, 6, prediction=truth, config=config, rng=3)
        np.testing.assert_array_equal(a.estimate, b.estimate)

    def test_svd_init_deterministic_full_rank(self, rng):
        truth, observed, mask = make_problem(rng)
        config = SelfAugmentedConfig(init="svd")  # full rank: dense LAPACK path
        a = self_augmented_rsvd(observed, mask, 6, prediction=truth, config=config, rng=3)
        b = self_augmented_rsvd(observed, mask, 6, prediction=truth, config=config, rng=3)
        np.testing.assert_array_equal(a.estimate, b.estimate)

    def test_svd_init_factors_on_data_scale(self, rng):
        truth, observed, mask = make_problem(rng)
        state = SweepState(
            observed,
            mask,
            6,
            config=SelfAugmentedConfig(init="svd", rank=2),
            rng=3,
        )
        # L0 = U sqrt(S): its Gram recovers the leading singular values.
        gram = state.left.T @ state.left
        s = np.linalg.svd(mask * observed, compute_uv=False)
        np.testing.assert_allclose(np.sort(np.diag(gram))[::-1], s[:2], rtol=1e-6)

    def test_svd_init_reaches_same_quality_as_random(self, rng):
        truth, observed, mask = make_problem(rng)
        prediction = truth + rng.normal(0.0, 0.3, size=truth.shape)
        random_result = self_augmented_rsvd(
            observed, mask, 6, prediction=prediction, rng=3
        )
        svd_result = self_augmented_rsvd(
            observed,
            mask,
            6,
            prediction=prediction,
            config=SelfAugmentedConfig(init="svd"),
            rng=3,
        )
        random_error = np.abs(random_result.estimate - truth).mean()
        svd_error = np.abs(svd_result.estimate - truth).mean()
        assert abs(svd_error - random_error) < 0.5

    def test_random_init_unchanged_by_default(self, rng):
        # The cold random path must stay bit-pinned: explicit init="random"
        # and the default are the same code path.
        truth, observed, mask = make_problem(rng)
        default = self_augmented_rsvd(observed, mask, 6, prediction=truth, rng=3)
        explicit = self_augmented_rsvd(
            observed,
            mask,
            6,
            prediction=truth,
            config=SelfAugmentedConfig(init="random"),
            rng=3,
        )
        np.testing.assert_array_equal(default.estimate, explicit.estimate)
