"""Unit tests for :mod:`repro.core.self_augmented` (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.self_augmented import SelfAugmentedConfig, self_augmented_rsvd


def make_problem(rng, links=4, width=6, drift=2.0):
    """A synthetic fingerprint-update problem with known ground truth."""
    n = links * width
    truth = np.full((links, n), -60.0)
    for j in range(n):
        own = j // width
        offset = j % width
        truth[own, j] -= 6.0 + 2.0 * abs(2.0 * (offset + 0.5) / width - 1.0)
        if own - 1 >= 0:
            truth[own - 1, j] -= 1.5
        if own + 1 < links:
            truth[own + 1, j] -= 1.5
    truth += drift * rng.normal(size=(links, 1))  # per-link drift
    mask = np.zeros((links, n))
    for j in range(n):
        own = j // width
        for i in range(links):
            if abs(i - own) >= 2:
                mask[i, j] = 1.0
    observed = truth * mask
    return truth, observed, mask


class TestConfigValidation:
    def test_defaults_valid(self):
        SelfAugmentedConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rank": 0},
            {"regularization": -0.1},
            {"max_iterations": 0},
            {"tolerance": 0.0},
            {"reference_weight": -1.0},
            {"structure_weight": -1.0},
            {"init_scale": 0.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SelfAugmentedConfig(**kwargs)


class TestSolver:
    def test_prediction_constraint_pins_solution(self, rng):
        truth, observed, mask = make_problem(rng)
        prediction = truth + rng.normal(0.0, 0.3, size=truth.shape)
        result = self_augmented_rsvd(
            observed, mask, locations_per_link=6, prediction=prediction, rng=1
        )
        assert np.abs(result.estimate - truth).mean() < 1.0

    def test_without_constraints_solution_is_ambiguous(self, rng):
        truth, observed, mask = make_problem(rng)
        config = SelfAugmentedConfig(
            use_reference_constraint=False, use_structure_constraint=False
        )
        result = self_augmented_rsvd(
            observed, mask, locations_per_link=6, prediction=None, config=config, rng=1
        )
        unconstrained_error = np.abs(result.estimate - truth).mean()
        constrained = self_augmented_rsvd(
            observed,
            mask,
            locations_per_link=6,
            prediction=truth + rng.normal(0.0, 0.3, size=truth.shape),
            rng=1,
        )
        constrained_error = np.abs(constrained.estimate - truth).mean()
        assert constrained_error < unconstrained_error

    def test_structure_constraint_suppresses_outliers(self, rng):
        truth, observed, mask = make_problem(rng, drift=0.0)
        # Corrupt the prediction with a single large outlier on a stripe entry.
        prediction = truth.copy()
        prediction[1, 1 * 6 + 2] += 12.0
        with_structure = self_augmented_rsvd(
            observed, mask, 6, prediction=prediction, rng=1
        )
        without_structure = self_augmented_rsvd(
            observed,
            mask,
            6,
            prediction=prediction,
            config=SelfAugmentedConfig(use_structure_constraint=False),
            rng=1,
        )
        err_with = np.abs(with_structure.estimate - truth)[1, 8]
        err_without = np.abs(without_structure.estimate - truth)[1, 8]
        assert err_with <= err_without + 1e-6

    def test_result_metadata(self, rng):
        truth, observed, mask = make_problem(rng)
        result = self_augmented_rsvd(observed, mask, 6, prediction=truth, rng=1)
        assert result.left.shape[0] == truth.shape[0]
        assert result.right.shape[0] == truth.shape[1]
        assert result.iterations >= 1
        assert result.reference_weight > 0.0
        assert result.structure_weight > 0.0
        assert np.isfinite(result.objective)

    def test_weights_zero_when_constraints_disabled(self, rng):
        truth, observed, mask = make_problem(rng)
        config = SelfAugmentedConfig(
            use_reference_constraint=False, use_structure_constraint=False
        )
        result = self_augmented_rsvd(observed, mask, 6, config=config, rng=1)
        assert result.reference_weight == 0.0
        assert result.structure_weight == 0.0

    def test_deterministic_given_seed(self, rng):
        truth, observed, mask = make_problem(rng)
        a = self_augmented_rsvd(observed, mask, 6, prediction=truth, rng=5)
        b = self_augmented_rsvd(observed, mask, 6, prediction=truth, rng=5)
        np.testing.assert_allclose(a.estimate, b.estimate)

    def test_explicit_weights_respected(self, rng):
        truth, observed, mask = make_problem(rng)
        config = SelfAugmentedConfig(reference_weight=2.5, structure_weight=0.7)
        result = self_augmented_rsvd(observed, mask, 6, prediction=truth, config=config, rng=1)
        assert result.reference_weight == 2.5
        assert result.structure_weight == 0.7

    def test_invalid_stripe_width_rejected(self, rng):
        truth, observed, mask = make_problem(rng)
        with pytest.raises(ValueError):
            self_augmented_rsvd(observed, mask, 5, prediction=truth)

    def test_shape_mismatch_rejected(self, rng):
        truth, observed, mask = make_problem(rng)
        with pytest.raises(ValueError):
            self_augmented_rsvd(observed, mask[:, :-1], 6)

    def test_non_binary_mask_rejected(self, rng):
        truth, observed, mask = make_problem(rng)
        with pytest.raises(ValueError):
            self_augmented_rsvd(observed, mask * 0.5, 6)
