"""Unit / integration tests for :mod:`repro.core.updater` (the iUpdater pipeline)."""

import numpy as np
import pytest

from repro.core.self_augmented import SelfAugmentedConfig
from repro.core.updater import IUpdater, UpdaterConfig


class TestCorrelationAcquisition:
    def test_reference_indices_at_most_link_count(self, small_database):
        updater = IUpdater(small_database.original, rng=1)
        assert len(updater.reference_indices) <= small_database.original.link_count

    def test_correlation_cached(self, small_database):
        updater = IUpdater(small_database.original, rng=1)
        mic_a, lrr_a = updater.acquire_correlation()
        mic_b, lrr_b = updater.acquire_correlation()
        assert mic_a is mic_b
        assert lrr_a is lrr_b

    def test_reset_correlation(self, small_database):
        updater = IUpdater(small_database.original, rng=1)
        mic_a, _ = updater.acquire_correlation()
        updater.reset_correlation()
        mic_b, _ = updater.acquire_correlation()
        assert mic_a is not mic_b
        assert mic_a.indices == mic_b.indices  # deterministic selection

    def test_reference_count_override(self, small_database):
        updater = IUpdater(
            small_database.original, config=UpdaterConfig(reference_count=3), rng=1
        )
        assert len(updater.reference_indices) == 3


class TestUpdate:
    def _run(self, campaign, database, elapsed_days=45.0, config=None):
        updater = IUpdater(database.original, config=config, rng=1)
        observed, mask = campaign.collector.collect_no_decrease(elapsed_days=elapsed_days)
        reference = campaign.collector.collect_reference(
            updater.reference_indices, elapsed_days=elapsed_days
        )
        return updater.update(
            no_decrease_matrix=observed,
            no_decrease_mask=mask,
            reference_matrix=reference,
        )

    def test_update_beats_stale_database(self, small_campaign, small_database):
        result = self._run(small_campaign, small_database)
        ground_truth = small_database.get(45.0)
        updated_error = result.matrix.reconstruction_error_db(ground_truth)
        stale_error = small_database.original.reconstruction_error_db(ground_truth)
        assert updated_error < stale_error

    def test_update_result_metadata(self, small_campaign, small_database):
        result = self._run(small_campaign, small_database)
        assert result.matrix.shape == small_database.original.shape
        assert len(result.reference_indices) == result.mic.count
        assert result.lrr is not None
        assert result.estimate.shape == small_database.original.shape

    def test_update_with_explicit_reference_indices(self, small_campaign, small_database):
        updater = IUpdater(small_database.original, rng=1)
        indices = list(updater.reference_indices)[:3]
        observed, mask = small_campaign.collector.collect_no_decrease(elapsed_days=45.0)
        reference = small_campaign.collector.collect_reference(indices, elapsed_days=45.0)
        result = updater.update(
            no_decrease_matrix=observed,
            no_decrease_mask=mask,
            reference_matrix=reference,
            reference_indices=indices,
        )
        # With fewer columns than the correlation matrix expects, the
        # Constraint-1 prediction is skipped but the update still runs.
        assert result.matrix.shape == small_database.original.shape

    def test_reference_column_count_mismatch_rejected(self, small_campaign, small_database):
        updater = IUpdater(small_database.original, rng=1)
        observed, mask = small_campaign.collector.collect_no_decrease(elapsed_days=45.0)
        reference = small_campaign.collector.collect_reference(
            updater.reference_indices, elapsed_days=45.0
        )
        with pytest.raises(ValueError):
            updater.update(
                no_decrease_matrix=observed,
                no_decrease_mask=mask,
                reference_matrix=reference[:, :-1],
                reference_indices=updater.reference_indices,
            )

    def test_constraint_ablation_ordering(self, small_campaign, small_database):
        """Fig. 16's qualitative result: RSVD >> RSVD+C1 >= RSVD+C1+C2."""
        ground_truth = small_database.get(45.0)
        errors = {}
        configs = {
            "rsvd": UpdaterConfig(
                solver=SelfAugmentedConfig(
                    use_reference_constraint=False, use_structure_constraint=False
                )
            ),
            "c1": UpdaterConfig(solver=SelfAugmentedConfig(use_structure_constraint=False)),
            "c1c2": UpdaterConfig(),
        }
        for name, config in configs.items():
            result = self._run(small_campaign, small_database, config=config)
            errors[name] = result.matrix.reconstruction_error_db(ground_truth)
        assert errors["c1"] < errors["rsvd"]
        assert errors["c1c2"] <= errors["c1"] * 1.25  # C2 must not hurt materially

    def test_reference_not_in_mask_option(self, small_campaign, small_database):
        config = UpdaterConfig(include_reference_in_mask=False)
        result = self._run(small_campaign, small_database, config=config)
        ground_truth = small_database.get(45.0)
        stale_error = small_database.original.reconstruction_error_db(ground_truth)
        assert result.matrix.reconstruction_error_db(ground_truth) < stale_error

    def test_solver_backend_override(self, small_campaign, small_database):
        config = UpdaterConfig(solver_backend="looped")
        assert config.resolved_solver().solver_backend == "looped"
        assert config.solver.solver_backend == "batched"  # nested config untouched
        result = self._run(small_campaign, small_database, config=config)
        ground_truth = small_database.get(45.0)
        stale_error = small_database.original.reconstruction_error_db(ground_truth)
        assert result.matrix.reconstruction_error_db(ground_truth) < stale_error

    def test_solver_backend_default_passthrough(self):
        config = UpdaterConfig(solver=SelfAugmentedConfig(solver_backend="looped"))
        assert config.resolved_solver() is config.solver

    def test_invalid_solver_backend_rejected(self):
        with pytest.raises(ValueError):
            UpdaterConfig(solver_backend="vectorised")
