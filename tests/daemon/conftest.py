"""Shared fixtures for the daemon tests: a small fleet payload on disk.

The daemon runs whole fleet refreshes per job, so these tests use a
deliberately tiny synthetic fleet (8 sites, few links, few solver
iterations) to keep each refresh well under a second while still
exercising the real solve → report → publish path.
"""

from __future__ import annotations

import pytest

from repro.core.self_augmented import SelfAugmentedConfig
from repro.core.updater import UpdaterConfig
from repro.io import save_requests
from repro.service.synthetic import synthesize_fleet

FLEET_SITES = 8
ELAPSED_DAYS = 30.0


@pytest.fixture(scope="session")
def daemon_fleet_requests():
    """An 8-site synthetic fleet sized for per-job refreshes."""
    return synthesize_fleet(
        FLEET_SITES,
        elapsed_days=ELAPSED_DAYS,
        seed=23,
        link_count=(2, 3),
        locations_per_link=3,
        updater=UpdaterConfig(solver=SelfAugmentedConfig(max_iterations=4)),
    )


@pytest.fixture(scope="session")
def fleet_payload(daemon_fleet_requests, tmp_path_factory):
    """The fleet as an on-disk request payload jobs can reference."""
    path = tmp_path_factory.mktemp("payload") / "fleet.npz"
    save_requests(path, daemon_fleet_requests, elapsed_days=ELAPSED_DAYS)
    return path


@pytest.fixture(scope="session")
def fleet_payload_bytes(fleet_payload):
    """The same payload as wire bytes (the upload path)."""
    return fleet_payload.read_bytes()
