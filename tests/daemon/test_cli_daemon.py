"""The ``daemon`` CLI: parsing, and the real-process SIGTERM drain.

The subprocess test is the one place the SIGTERM path runs for real — a
``daemon start`` child process receives the signal mid-serve, drains,
and must exit 0 with its queued work journaled.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiments.cli import build_parser, main

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestParser:
    def test_start_defaults(self):
        args = build_parser().parse_args(
            ["daemon", "start", "--spool", "/tmp/spool"]
        )
        assert args.command == "daemon"
        assert args.daemon_command == "start"
        assert args.host == "127.0.0.1"
        assert args.port == 8753
        assert args.job_workers == 2
        assert args.pool_workers is None
        assert args.matcher == "knn"
        assert args.cache == 0

    def test_start_requires_spool(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["daemon", "start"])

    def test_submit_flags(self):
        args = build_parser().parse_args(
            [
                "daemon", "submit", "--url", "http://127.0.0.1:1",
                "--in", "fleet.npz", "--kind", "serve_publish",
                "--priority", "4", "--workers", "2",
                "--max-stack-bytes", "65536", "--max-attempts", "5",
                "--backoff", "0.1", "--label", "nightly",
                "--upload", "--wait",
            ]
        )
        assert args.daemon_command == "submit"
        assert args.input == "fleet.npz"
        assert args.kind == "serve_publish"
        assert args.priority == 4
        assert args.workers == 2
        assert args.max_stack_bytes == 65536
        assert args.max_attempts == 5
        assert args.backoff == 0.1
        assert args.label == "nightly"
        assert args.upload and args.wait

    def test_status_result_stop_parse(self):
        status = build_parser().parse_args(
            ["daemon", "status", "--url", "http://h:1", "--job", "j000001"]
        )
        assert status.daemon_command == "status"
        assert status.job == "j000001"
        result = build_parser().parse_args(
            ["daemon", "result", "--url", "http://h:1", "--job", "j0",
             "--out", "r.npz"]
        )
        assert result.daemon_command == "result"
        stop = build_parser().parse_args(
            ["daemon", "stop", "--url", "http://h:1"]
        )
        assert stop.daemon_command == "stop"
        assert stop.timeout == 120.0

    def test_daemon_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["daemon"])


class TestUnreachableDaemon:
    """Client-side subcommands fail cleanly when nothing is listening."""

    def test_status_against_dead_daemon_fails(self, capsys):
        assert main(
            ["daemon", "status", "--url", "http://127.0.0.1:9"]
        ) == 1
        assert "cannot reach daemon" in capsys.readouterr().err

    def test_submit_against_dead_daemon_fails(
        self, capsys, fleet_payload
    ):
        assert main(
            ["daemon", "submit", "--url", "http://127.0.0.1:9",
             "--in", str(fleet_payload)]
        ) == 1
        assert "cannot reach daemon" in capsys.readouterr().err


class TestSigtermDrain:
    def _spawn_daemon(self, spool):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.experiments.cli",
                "daemon", "start", "--spool", str(spool),
                "--port", "0", "--pool-workers", "0", "--job-workers", "1",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        line = process.stdout.readline()
        assert "daemon listening on" in line, line
        url = line.split()[3]
        return process, url

    def test_sigterm_drains_and_exits_zero(self, tmp_path, fleet_payload):
        from repro.daemon import DaemonClient, JobQueue

        spool = tmp_path / "spool"
        process, url = self._spawn_daemon(spool)
        try:
            client = DaemonClient(url, timeout=30.0)
            client.wait_until_ready(timeout=30.0)
            record = client.submit(fleet_payload, label="under-sigterm")
            done = client.wait(record["id"], timeout=120.0)
            assert done["state"] == "done"

            process.send_signal(signal.SIGTERM)
            output, _ = process.communicate(timeout=60.0)
        except BaseException:
            process.kill()
            process.communicate(timeout=30.0)
            raise
        assert process.returncode == 0, output
        assert "daemon drained" in output
        # The journal survives for the next start with nothing mid-flight.
        queue = JobQueue(spool)
        assert queue.recovered_jobs == []
        assert queue.get(record["id"]).state == "done"

    def test_sigterm_mid_job_finishes_it_first(self, tmp_path, fleet_payload):
        """SIGTERM while a refresh runs: the job completes, then exit 0."""
        from repro.daemon import DaemonClient, JobQueue

        spool = tmp_path / "spool"
        process, url = self._spawn_daemon(spool)
        try:
            client = DaemonClient(url, timeout=30.0)
            client.wait_until_ready(timeout=30.0)
            record = client.submit(fleet_payload, label="race-the-signal")
            # Fire the signal immediately — usually mid-claim or mid-solve.
            deadline = time.monotonic() + 30.0
            while client.status(record["id"])["state"] == "queued":
                if time.monotonic() >= deadline:
                    break
                time.sleep(0.01)
            process.send_signal(signal.SIGTERM)
            output, _ = process.communicate(timeout=120.0)
        except BaseException:
            process.kill()
            process.communicate(timeout=30.0)
            raise
        assert process.returncode == 0, output
        queue = JobQueue(spool)
        job = queue.get(record["id"])
        # Either it finished before the drain or it was still queued and
        # stays journaled; a graceful drain never abandons a running job.
        assert job.state in ("done", "queued")
        assert queue.recovered_jobs == []
