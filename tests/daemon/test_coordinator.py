"""Coordinator contracts: scheduling, auto-publish, recovery, draining.

The acceptance scenario of ISSUE 8 lives here: prioritized jobs with an
injected worker failure retry with backoff and still publish generations
whose answers match an offline :class:`~repro.query.engine.QueryEngine`
bit for bit, and a drain leaves nothing pending in the journal.
"""

import threading

import numpy as np
import pytest

from repro.daemon import Coordinator, DaemonConfig, JobQueue
from repro.daemon.coordinator import REFRESH_FLEET, SERVE_PUBLISH
from repro.io import load_report, save_report
from repro.query import QueryConfig, QueryEngine
from repro.service.service import UpdateService
from repro.service.shard import ShardConfig
from repro.service.types import FleetReport


@pytest.fixture(scope="module")
def offline_report(daemon_fleet_requests):
    """The reference: a serial in-process refresh of the same payload."""
    service = UpdateService()
    reports = service.update_fleet(daemon_fleet_requests, shards=ShardConfig())
    return FleetReport(
        elapsed_days=30.0,
        reports=tuple(reports),
        stacked_sweeps=service.last_stacked_sweeps,
        plan=service.last_plan,
        executor="serial",
        workers=0,
    )


@pytest.fixture(scope="module")
def offline_engine(offline_report):
    engine = QueryEngine(QueryConfig())
    engine.publish_report(offline_report, label="offline")
    return engine


def serial_config(**overrides):
    """In-process config: one job at a time, no process pool, fast polls."""
    defaults = dict(job_workers=1, pool_workers=0, poll_interval=0.01)
    defaults.update(overrides)
    return DaemonConfig(**defaults)


def make_queries(engine, site, count=5, seed=0):
    """Noisy probe measurements for ``site`` from the engine's own index."""
    index = engine.store.current().sites[site].index
    rng = np.random.default_rng(seed)
    probes = index.values[:, :count].T
    return probes + rng.normal(0.0, 0.5, probes.shape)


class TestRefreshLifecycle:
    def test_refresh_job_publishes_and_matches_serial(
        self, tmp_path, fleet_payload, offline_report, offline_engine
    ):
        coordinator = Coordinator(tmp_path / "spool", config=serial_config())
        coordinator.start()
        try:
            job = coordinator.submit(REFRESH_FLEET, fleet_payload, label="first")
            done = coordinator.wait(job.id, timeout=120.0)
            assert done.state == "done"
            assert done.attempts == 1
            assert done.generation == 0

            # The spooled report is bit-identical to the offline refresh.
            report = load_report(coordinator.result_path(job.id))
            assert report.elapsed_days == offline_report.elapsed_days
            for ours, theirs in zip(report.reports, offline_report.reports):
                assert ours.site == theirs.site
                np.testing.assert_array_equal(ours.estimate, theirs.estimate)

            # ... and so are the served answers (lifecycle unification).
            assert coordinator.generations == [(0, "first")]
            site = offline_report.sites[0]
            queries = make_queries(offline_engine, site)
            served = coordinator.localize(site, queries)
            offline = offline_engine.localize_batch(site, queries)
            np.testing.assert_array_equal(served.indices, offline.indices)
            if offline.points is not None:
                np.testing.assert_array_equal(served.points, offline.points)
        finally:
            coordinator.drain(timeout=30.0)

    def test_serve_publish_job_hot_swaps_report(
        self, tmp_path, offline_report
    ):
        report_path = tmp_path / "report.npz"
        save_report(report_path, offline_report)
        coordinator = Coordinator(tmp_path / "spool", config=serial_config())
        coordinator.start()
        try:
            job = coordinator.submit(
                SERVE_PUBLISH, report_path, label="prebuilt"
            )
            done = coordinator.wait(job.id, timeout=30.0)
            assert done.state == "done"
            assert done.generation == 0
            assert done.result is None  # nothing solved, nothing spooled
            assert coordinator.generations == [(0, "prebuilt")]
            assert coordinator.health()["sites"] == sorted(offline_report.sites)
        finally:
            coordinator.drain(timeout=30.0)

    def test_unknown_kind_rejected_at_submit(self, tmp_path, fleet_payload):
        coordinator = Coordinator(tmp_path / "spool", config=serial_config())
        with pytest.raises(ValueError, match="unknown job kind"):
            coordinator.submit("compact_fleet", fleet_payload)

    def test_result_before_completion_rejected(self, tmp_path, fleet_payload):
        coordinator = Coordinator(tmp_path / "spool", config=serial_config())
        job = coordinator.submit(REFRESH_FLEET, fleet_payload)
        with pytest.raises(ValueError, match="no result payload"):
            coordinator.result_path(job.id)


class TestRunnersSeam:
    def test_injected_failure_retries_with_backoff_then_succeeds(
        self, tmp_path, fleet_payload
    ):
        attempts = []

        def flaky(job):
            attempts.append(job.attempts)
            if len(attempts) == 1:
                raise RuntimeError("injected worker failure")
            return None, None

        coordinator = Coordinator(
            tmp_path / "spool",
            config=serial_config(),
            runners={REFRESH_FLEET: flaky},
        )
        coordinator.start()
        try:
            job = coordinator.submit(
                REFRESH_FLEET, fleet_payload, backoff_seconds=0.05
            )
            done = coordinator.wait(job.id, timeout=30.0)
            assert done.state == "done"
            assert done.attempts == 2
            assert attempts == [1, 2]
            # The terminal record clears the error but the failed attempt
            # was journaled with it in between (exercised by the queue
            # tests); here the retry observably backed off.
            assert done.error is None
        finally:
            coordinator.drain(timeout=30.0)

    def test_exhausted_retries_park_failed_with_error(
        self, tmp_path, fleet_payload
    ):
        def always_broken(job):
            raise RuntimeError("payload rot")

        coordinator = Coordinator(
            tmp_path / "spool",
            config=serial_config(),
            runners={REFRESH_FLEET: always_broken},
        )
        coordinator.start()
        try:
            job = coordinator.submit(
                REFRESH_FLEET,
                fleet_payload,
                max_attempts=2,
                backoff_seconds=0.01,
            )
            done = coordinator.wait(job.id, timeout=30.0)
            assert done.state == "failed"
            assert done.attempts == 2
            assert "payload rot" in done.error
        finally:
            coordinator.drain(timeout=30.0)

    def test_priority_orders_execution(self, tmp_path, fleet_payload):
        order = []
        release = threading.Event()

        def recording(job):
            # The first-claimed job blocks until both are enqueued, so the
            # dispatcher must pick the second by priority, not arrival.
            order.append(job.label)
            release.wait(timeout=10.0)
            return None, None

        coordinator = Coordinator(
            tmp_path / "spool",
            config=serial_config(),
            runners={REFRESH_FLEET: recording},
        )
        low = coordinator.submit(
            REFRESH_FLEET, fleet_payload, priority=0, label="low"
        )
        high = coordinator.submit(
            REFRESH_FLEET, fleet_payload, priority=5, label="high"
        )
        release.set()
        coordinator.start()
        try:
            assert coordinator.wait(high.id, timeout=30.0).state == "done"
            assert coordinator.wait(low.id, timeout=30.0).state == "done"
            assert order == ["high", "low"]
        finally:
            coordinator.drain(timeout=30.0)


class TestWarmRefresh:
    """ISSUE 9: consecutive refreshes of the same fleet warm-start
    automatically from the coordinator's last published report."""

    def test_second_refresh_warm_starts_from_first(
        self, tmp_path, fleet_payload
    ):
        coordinator = Coordinator(tmp_path / "spool", config=serial_config())
        coordinator.start()
        try:
            first = coordinator.submit(REFRESH_FLEET, fleet_payload)
            assert coordinator.wait(first.id, timeout=120.0).state == "done"
            second = coordinator.submit(REFRESH_FLEET, fleet_payload)
            assert coordinator.wait(second.id, timeout=120.0).state == "done"

            cold = load_report(coordinator.result_path(first.id))
            warm = load_report(coordinator.result_path(second.id))
            assert not any(r.warm_started for r in cold.reports)
            assert all(r.warm_started for r in warm.reports)
            assert sum(r.sweeps for r in warm.reports) == 0
            assert warm.sweeps_saved == {
                r.site: r.sweeps for r in cold.reports
            }
            # Identical data: the warm generation is the cold one, bit
            # for bit.
            for ours, theirs in zip(warm.reports, cold.reports):
                np.testing.assert_array_equal(ours.estimate, theirs.estimate)
        finally:
            coordinator.drain(timeout=30.0)

    def test_warm_refresh_disabled_stays_cold(self, tmp_path, fleet_payload):
        coordinator = Coordinator(
            tmp_path / "spool", config=serial_config(warm_refresh=False)
        )
        coordinator.start()
        try:
            first = coordinator.submit(REFRESH_FLEET, fleet_payload)
            assert coordinator.wait(first.id, timeout=120.0).state == "done"
            second = coordinator.submit(REFRESH_FLEET, fleet_payload)
            assert coordinator.wait(second.id, timeout=120.0).state == "done"
            warm = load_report(coordinator.result_path(second.id))
            assert not any(r.warm_started for r in warm.reports)
            assert warm.sweeps_saved == {}
        finally:
            coordinator.drain(timeout=30.0)

    def test_warm_cache_survives_for_matching_fleets_only(
        self, tmp_path, fleet_payload, daemon_fleet_requests
    ):
        from repro.io import save_requests

        # A different fleet (subset of sites) must not inherit the cache.
        subset_path = tmp_path / "subset.npz"
        save_requests(subset_path, daemon_fleet_requests[:3], elapsed_days=30.0)
        coordinator = Coordinator(tmp_path / "spool", config=serial_config())
        coordinator.start()
        try:
            first = coordinator.submit(REFRESH_FLEET, fleet_payload)
            assert coordinator.wait(first.id, timeout=120.0).state == "done"
            subset = coordinator.submit(REFRESH_FLEET, subset_path)
            assert coordinator.wait(subset.id, timeout=120.0).state == "done"
            report = load_report(coordinator.result_path(subset.id))
            assert not any(r.warm_started for r in report.reports)
        finally:
            coordinator.drain(timeout=30.0)


class TestCrashRecovery:
    """ISSUE 8 satellite: kill mid-queue, restart, run exactly once."""

    def test_interrupted_jobs_resume_exactly_once_bit_identical(
        self, tmp_path, fleet_payload, offline_report
    ):
        spool = tmp_path / "spool"
        # A coordinator accepted two jobs and died mid-execution: the
        # first job had been claimed (journaled ``running``), the second
        # was still queued.  No coordinator thread ever ran — exactly the
        # on-disk state a SIGKILL leaves.
        dead = JobQueue(spool)
        first = dead.submit(REFRESH_FLEET, fleet_payload, label="interrupted")
        second = dead.submit(REFRESH_FLEET, fleet_payload, label="queued")
        claimed = dead.claim()
        assert claimed.id == first.id
        del dead

        runs = []

        class CountingCoordinator(Coordinator):
            def _run_refresh(self, job):
                runs.append(job.id)
                return super()._run_refresh(job)

        coordinator = CountingCoordinator(spool, config=serial_config())
        assert coordinator.queue.recovered_jobs == [first.id]
        coordinator.start()
        try:
            done_first = coordinator.wait(first.id, timeout=120.0)
            done_second = coordinator.wait(second.id, timeout=120.0)
            # Exactly once each after restart; the interrupted claim still
            # counts, so the resumed job reports two attempts.
            assert runs == [first.id, second.id]
            assert done_first.state == "done"
            assert done_first.attempts == 2
            assert done_second.state == "done"
            assert done_second.attempts == 1

            # Results are bit-identical to the serial in-process refresh.
            for job_id in (first.id, second.id):
                report = load_report(coordinator.result_path(job_id))
                for ours, theirs in zip(report.reports, offline_report.reports):
                    np.testing.assert_array_equal(
                        ours.estimate, theirs.estimate
                    )
        finally:
            coordinator.drain(timeout=30.0)


class TestDrain:
    def test_drain_rejects_submissions_and_keeps_queued_jobs(
        self, tmp_path, fleet_payload
    ):
        started = threading.Event()
        release = threading.Event()

        def slow(job):
            started.set()
            release.wait(timeout=10.0)
            return None, None

        coordinator = Coordinator(
            tmp_path / "spool",
            config=serial_config(),
            runners={REFRESH_FLEET: slow},
        )
        coordinator.start()
        running = coordinator.submit(REFRESH_FLEET, fleet_payload)
        queued = coordinator.submit(REFRESH_FLEET, fleet_payload)
        assert started.wait(timeout=10.0)

        drained = threading.Event()

        def drain():
            coordinator.drain(timeout=30.0)
            drained.set()

        thread = threading.Thread(target=drain)
        thread.start()
        try:
            # Draining: new work is rejected while the running job finishes.
            with pytest.raises(RuntimeError, match="draining"):
                coordinator.submit(REFRESH_FLEET, fleet_payload)
            assert not drained.is_set()
            release.set()
            thread.join(timeout=30.0)
            assert drained.is_set()
        finally:
            release.set()
            thread.join(timeout=30.0)

        # The running job completed; the queued one is journaled for the
        # next start, untouched.
        assert coordinator.status(running.id).state == "done"
        assert coordinator.status(queued.id).state == "queued"
        restarted = JobQueue(tmp_path / "spool")
        assert restarted.recovered_jobs == []
        assert restarted.get(queued.id).state == "queued"

    def test_drained_coordinator_cannot_restart(self, tmp_path):
        coordinator = Coordinator(tmp_path / "spool", config=serial_config())
        coordinator.start()
        assert coordinator.drain(timeout=30.0)
        with pytest.raises(RuntimeError, match="drained"):
            coordinator.start()


class TestAcceptanceScenario:
    """The issue's end-to-end bar, in-process (the HTTP variant rides in
    ``test_http.py``): two prioritized refreshes, one injected failure."""

    def test_prioritized_jobs_with_injected_failure(
        self, tmp_path, fleet_payload, offline_report, offline_engine
    ):
        failures = {"remaining": 1}
        order = []

        def flaky_refresh(coordinator, job):
            order.append(job.label)
            if job.label == "low" and failures["remaining"]:
                failures["remaining"] -= 1
                raise RuntimeError("injected worker failure")
            return Coordinator._run_refresh(coordinator, job)

        coordinator = Coordinator(
            tmp_path / "spool", config=serial_config()
        )
        coordinator._runners[REFRESH_FLEET] = (
            lambda job: flaky_refresh(coordinator, job)
        )
        low = coordinator.submit(
            REFRESH_FLEET,
            fleet_payload,
            priority=0,
            label="low",
            backoff_seconds=0.05,
        )
        high = coordinator.submit(
            REFRESH_FLEET, fleet_payload, priority=5, label="high"
        )
        coordinator.start()
        try:
            done_high = coordinator.wait(high.id, timeout=120.0)
            done_low = coordinator.wait(low.id, timeout=120.0)

            # High priority ran first despite being submitted second; the
            # failed low-priority attempt retried after backoff.
            assert order[0] == "high"
            assert order.count("low") == 2
            assert done_high.state == "done"
            assert done_high.attempts == 1
            assert done_low.state == "done"
            assert done_low.attempts == 2

            # Both reports auto-published: generation ordinal advanced.
            assert done_high.generation == 0
            assert done_low.generation == 1
            assert coordinator.generations == [(0, "high"), (1, "low")]

            # Served answers match the offline engine bit for bit.
            for site in offline_report.sites[:3]:
                queries = make_queries(offline_engine, site, seed=7)
                served = coordinator.localize(site, queries)
                offline = offline_engine.localize_batch(site, queries)
                np.testing.assert_array_equal(served.indices, offline.indices)
                if offline.points is not None:
                    np.testing.assert_array_equal(served.points, offline.points)
        finally:
            assert coordinator.drain(timeout=30.0)
        # Graceful drain left nothing pending in the journal.
        assert coordinator.queue.pending_count == 0
