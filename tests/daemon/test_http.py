"""The HTTP surface serves the coordinator's API faithfully.

One live :class:`~repro.daemon.http.DaemonServer` per module (on an
ephemeral port), driven through :class:`~repro.daemon.client.DaemonClient`
— the same pairing the CLI and CI use.  Submissions ride both transports
(path reference and base64 upload), results download bit-exactly, and
errors map to the documented status codes.
"""

import numpy as np
import pytest

from repro.daemon import (
    Coordinator,
    DaemonClient,
    DaemonConfig,
    DaemonError,
    DaemonServer,
)
from repro.io import load_report
from repro.query import QueryConfig, QueryEngine
from repro.service.service import UpdateService
from repro.service.shard import ShardConfig
from repro.service.types import FleetReport


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    coordinator = Coordinator(
        tmp_path_factory.mktemp("daemon") / "spool",
        config=DaemonConfig(job_workers=1, pool_workers=0, poll_interval=0.01),
    )
    server = DaemonServer(coordinator)
    server.start()
    yield server
    server.stop(timeout=30.0)


@pytest.fixture(scope="module")
def client(server):
    client = DaemonClient(server.url, timeout=30.0)
    client.wait_until_ready(timeout=30.0)
    return client


@pytest.fixture(scope="module")
def offline_report(daemon_fleet_requests):
    service = UpdateService()
    reports = service.update_fleet(daemon_fleet_requests, shards=ShardConfig())
    return FleetReport(
        elapsed_days=30.0,
        reports=tuple(reports),
        stacked_sweeps=service.last_stacked_sweeps,
        plan=service.last_plan,
        executor="serial",
        workers=0,
    )


class TestHealth:
    def test_health_reports_serving(self, client):
        health = client.health()
        assert health["status"] == "serving"
        assert health["draining"] is False
        assert set(health["jobs"]) == {
            "queued", "running", "done", "failed", "cancelled",
        }


class TestSubmitAndResult:
    def test_submit_by_path_runs_to_done(
        self, client, fleet_payload, offline_report, tmp_path
    ):
        record = client.submit(fleet_payload, label="by-path")
        assert record["state"] == "queued"
        done = client.wait(record["id"], timeout=120.0)
        assert done["state"] == "done"
        assert done["generation"] is not None

        # The downloaded result is the spooled report, byte for byte, and
        # its estimates match the offline serial refresh bit for bit.
        raw = client.result(done["id"])
        out = tmp_path / "fetched.npz"
        assert client.fetch_result(done["id"], out) == out
        assert out.read_bytes() == raw
        report = load_report(out)
        for ours, theirs in zip(report.reports, offline_report.reports):
            np.testing.assert_array_equal(ours.estimate, theirs.estimate)

    def test_submit_bytes_uploads_payload(self, client, fleet_payload_bytes):
        record = client.submit(
            fleet_payload_bytes, priority=1, label="uploaded"
        )
        done = client.wait(record["id"], timeout=120.0)
        assert done["state"] == "done"
        assert done["payload"].startswith("payloads/")

    def test_upload_flag_ships_file_contents(self, client, fleet_payload):
        record = client.submit(fleet_payload, upload=True, label="shipped")
        assert record["payload"].startswith("payloads/")
        assert client.wait(record["id"], timeout=120.0)["state"] == "done"

    def test_jobs_listing_contains_submissions(self, client):
        jobs = client.jobs()
        assert [job["sequence"] for job in jobs] == sorted(
            job["sequence"] for job in jobs
        )
        assert {job["state"] for job in jobs} <= {
            "queued", "running", "done", "failed", "cancelled",
        }


class TestLocalizeParity:
    def test_answers_match_offline_engine_bit_for_bit(
        self, client, fleet_payload, offline_report
    ):
        record = client.submit(fleet_payload, label="serve-me")
        assert client.wait(record["id"], timeout=120.0)["state"] == "done"

        offline = QueryEngine(QueryConfig())
        offline.publish_report(offline_report, label="offline")
        site = offline_report.sites[0]
        index = offline.store.current().sites[site].index
        rng = np.random.default_rng(3)
        queries = index.values[:, :6].T + rng.normal(0.0, 0.5, (6, index.values.shape[0]))

        served = client.localize(site, queries)
        expected = offline.localize_batch(site, queries)
        np.testing.assert_array_equal(served["indices"], expected.indices)
        if expected.points is not None:
            np.testing.assert_array_equal(served["points"], expected.points)
        assert served["matcher"] == expected.matcher

    def test_unknown_site_is_client_error(self, client):
        with pytest.raises(DaemonError) as excinfo:
            client.localize("atlantis", np.zeros((1, 3)))
        assert excinfo.value.status in (400, 404)


class TestErrorMapping:
    def test_unknown_job_is_404(self, client):
        with pytest.raises(DaemonError) as excinfo:
            client.status("j999999")
        assert excinfo.value.status == 404

    def test_unknown_route_is_404(self, client):
        with pytest.raises(DaemonError) as excinfo:
            client._request_json("GET", "/api/nope")
        assert excinfo.value.status == 404

    def test_result_of_unfinished_job_is_409(self, client, fleet_payload):
        # A cancelled job exists but has no result payload.
        record = client.submit(fleet_payload, priority=-100, label="doomed")
        try:
            client.cancel(record["id"])
        except DaemonError:
            # Raced to running/done on a fast machine — result then exists;
            # fall through and let the terminal state decide.
            client.wait(record["id"], timeout=120.0)
            return
        with pytest.raises(DaemonError) as excinfo:
            client.result(record["id"])
        assert excinfo.value.status == 409

    def test_submit_without_payload_is_400(self, client):
        with pytest.raises(DaemonError) as excinfo:
            client._request_json("POST", "/api/jobs", {"kind": "refresh_fleet"})
        assert excinfo.value.status == 400
        assert "payload_path" in str(excinfo.value)

    def test_submit_with_both_payloads_is_400(self, client, fleet_payload):
        with pytest.raises(DaemonError) as excinfo:
            client._request_json(
                "POST",
                "/api/jobs",
                {
                    "kind": "refresh_fleet",
                    "payload_path": str(fleet_payload),
                    "payload_b64": "QUJD",
                },
            )
        assert excinfo.value.status == 400

    def test_invalid_base64_is_400(self, client):
        with pytest.raises(DaemonError) as excinfo:
            client._request_json(
                "POST",
                "/api/jobs",
                {"kind": "refresh_fleet", "payload_b64": "!!!not-base64!!!"},
            )
        assert excinfo.value.status == 400

    def test_unknown_kind_is_400(self, client, fleet_payload):
        with pytest.raises(DaemonError) as excinfo:
            client.submit(fleet_payload, kind="compact_fleet")
        assert excinfo.value.status == 400

    def test_malformed_json_body_is_400(self, client):
        import urllib.request

        request = urllib.request.Request(
            client.url + "/api/jobs",
            data=b"{ not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30.0)
        assert excinfo.value.code == 400


class TestDrainOverHttp:
    """Separate server: draining is terminal for the fixture coordinator."""

    def test_drain_stops_submissions_then_closes_socket(
        self, tmp_path, fleet_payload
    ):
        coordinator = Coordinator(
            tmp_path / "spool",
            config=DaemonConfig(
                job_workers=1, pool_workers=0, poll_interval=0.01
            ),
        )
        server = DaemonServer(coordinator)
        server.start()
        client = DaemonClient(server.url, timeout=30.0)
        client.wait_until_ready(timeout=30.0)

        record = client.submit(fleet_payload, label="before-drain")
        assert client.wait(record["id"], timeout=120.0)["state"] == "done"

        assert client.drain() == {"draining": True}
        # While the socket is still up, submissions are rejected with 503
        # (the daemon may close it at any moment, which is also a refusal).
        try:
            client.submit(fleet_payload, label="too-late")
        except DaemonError as exc:
            assert exc.status in (None, 503)
        else:
            pytest.fail("submit after drain must be rejected")

        assert server.wait(timeout=30.0)
        assert coordinator.queue.pending_count == 0
        with pytest.raises(DaemonError):
            client.health()
