"""The persistent queue's scheduling and durability contracts.

These tests drive :class:`repro.daemon.queue.JobQueue` directly with an
injected clock, so priority ordering, backoff windows and crash recovery
are all exercised without sleeping or spawning threads.
"""

import pytest

from repro.daemon import JobQueue
from repro.io.jobs import load_journal


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def queue(tmp_path, fleet_payload, clock):
    return JobQueue(tmp_path / "spool", clock=clock)


class TestSubmit:
    def test_path_payload_referenced_in_place(self, queue, fleet_payload):
        job = queue.submit("refresh_fleet", fleet_payload)
        assert job.payload == str(fleet_payload.resolve())
        assert queue.payload_path(job) == fleet_payload.resolve()

    def test_bytes_payload_spooled(self, queue, fleet_payload_bytes):
        job = queue.submit("refresh_fleet", fleet_payload_bytes)
        assert job.payload == f"payloads/{job.id}.npz"
        assert queue.payload_path(job).read_bytes() == fleet_payload_bytes

    def test_missing_path_rejected(self, queue, tmp_path):
        with pytest.raises(ValueError, match="does not exist"):
            queue.submit("refresh_fleet", tmp_path / "absent.npz")

    def test_ids_are_sequential(self, queue, fleet_payload):
        ids = [queue.submit("refresh_fleet", fleet_payload).id for _ in range(3)]
        assert ids == ["j000000", "j000001", "j000002"]

    def test_every_submit_journaled(self, queue, fleet_payload):
        queue.submit("refresh_fleet", fleet_payload, priority=7, label="x")
        jobs = load_journal(queue.journal_path)
        assert [(j.id, j.priority, j.label) for j in jobs] == [("j000000", 7, "x")]


class TestClaimOrdering:
    def test_priority_first(self, queue, fleet_payload):
        queue.submit("refresh_fleet", fleet_payload, priority=0)
        high = queue.submit("refresh_fleet", fleet_payload, priority=5)
        assert queue.claim().id == high.id

    def test_fifo_within_priority(self, queue, fleet_payload):
        first = queue.submit("refresh_fleet", fleet_payload, priority=2)
        queue.submit("refresh_fleet", fleet_payload, priority=2)
        assert queue.claim().id == first.id

    def test_claim_marks_running_and_counts_attempt(self, queue, fleet_payload):
        queue.submit("refresh_fleet", fleet_payload)
        job = queue.claim()
        assert job.state == "running"
        assert job.attempts == 1
        assert queue.get(job.id).state == "running"

    def test_empty_queue_claims_none(self, queue):
        assert queue.claim() is None

    def test_running_jobs_not_reclaimed(self, queue, fleet_payload):
        queue.submit("refresh_fleet", fleet_payload)
        assert queue.claim() is not None
        assert queue.claim() is None


class TestRetryBackoff:
    def test_failed_job_requeues_with_backoff(self, queue, clock, fleet_payload):
        queue.submit("refresh_fleet", fleet_payload, backoff_seconds=2.0)
        job = queue.claim()
        failed = queue.fail(job.id, "boom")
        assert failed.state == "queued"
        assert failed.error == "boom"
        assert failed.not_before == clock.now + 2.0
        # Inside the backoff window nothing is claimable ...
        assert queue.claim() is None
        assert queue.next_eta() == clock.now + 2.0
        # ... and once it opens the job runs again.
        clock.advance(2.0)
        assert queue.claim().id == job.id

    def test_backoff_doubles_per_attempt(self, queue, clock, fleet_payload):
        queue.submit(
            "refresh_fleet", fleet_payload, backoff_seconds=1.0, max_attempts=4
        )
        delays = []
        for _ in range(3):
            job = queue.claim()
            failed = queue.fail(job.id, "boom")
            delays.append(failed.not_before - clock.now)
            clock.advance(delays[-1])
        assert delays == [1.0, 2.0, 4.0]

    def test_exhausted_attempts_park_failed(self, queue, clock, fleet_payload):
        queue.submit(
            "refresh_fleet", fleet_payload, max_attempts=2, backoff_seconds=0.0
        )
        queue.fail(queue.claim().id, "first")
        job = queue.fail(queue.claim().id, "second")
        assert job.state == "failed"
        assert job.error == "second"
        assert job.is_terminal
        assert queue.claim() is None

    def test_complete_clears_error(self, queue, clock, fleet_payload):
        queue.submit("refresh_fleet", fleet_payload, backoff_seconds=0.0)
        queue.fail(queue.claim().id, "transient")
        job = queue.complete(queue.claim().id, result="results/j000000.npz",
                             generation=3)
        assert job.state == "done"
        assert job.error is None
        assert job.generation == 3
        assert queue.result_path(job) == queue.spool / "results/j000000.npz"


class TestTransitions:
    def test_only_running_jobs_complete(self, queue, fleet_payload):
        job = queue.submit("refresh_fleet", fleet_payload)
        with pytest.raises(ValueError, match="not running"):
            queue.complete(job.id)

    def test_only_running_jobs_fail(self, queue, fleet_payload):
        job = queue.submit("refresh_fleet", fleet_payload)
        with pytest.raises(ValueError, match="not running"):
            queue.fail(job.id, "boom")

    def test_cancel_queued_job(self, queue, fleet_payload):
        job = queue.submit("refresh_fleet", fleet_payload)
        assert queue.cancel(job.id).state == "cancelled"
        assert queue.claim() is None

    def test_cancel_running_job_rejected(self, queue, fleet_payload):
        queue.submit("refresh_fleet", fleet_payload)
        job = queue.claim()
        with pytest.raises(ValueError, match="only queued jobs"):
            queue.cancel(job.id)

    def test_unknown_ids_raise_key_error(self, queue):
        with pytest.raises(KeyError):
            queue.get("j999999")
        with pytest.raises(KeyError):
            queue.cancel("j999999")

    def test_returned_copies_do_not_leak_state(self, queue, fleet_payload):
        job = queue.submit("refresh_fleet", fleet_payload)
        job.state = "done"
        assert queue.get(job.id).state == "queued"


class TestRecovery:
    def test_restart_requeues_running_jobs(self, tmp_path, fleet_payload, clock):
        spool = tmp_path / "spool"
        queue = JobQueue(spool, clock=clock)
        queue.submit("refresh_fleet", fleet_payload)
        claimed = queue.claim()
        # Coordinator dies here.  A fresh queue over the same spool must
        # resume the interrupted job with its attempt already counted.
        restarted = JobQueue(spool, clock=clock)
        assert restarted.recovered_jobs == [claimed.id]
        job = restarted.get(claimed.id)
        assert job.state == "queued"
        assert job.attempts == 1
        assert restarted.claim().id == claimed.id

    def test_restart_preserves_terminal_states_and_sequence(
        self, tmp_path, fleet_payload, clock
    ):
        spool = tmp_path / "spool"
        queue = JobQueue(spool, clock=clock)
        done = queue.submit("refresh_fleet", fleet_payload)
        queue.complete(queue.claim().id, result="results/x.npz", generation=0)
        queued = queue.submit("refresh_fleet", fleet_payload, priority=1)

        restarted = JobQueue(spool, clock=clock)
        assert restarted.recovered_jobs == []
        assert restarted.get(done.id).state == "done"
        assert restarted.get(queued.id).state == "queued"
        # New submissions continue the id sequence instead of reusing ids.
        assert restarted.submit("refresh_fleet", fleet_payload).id == "j000002"

    def test_corrupt_journal_refuses_to_load(self, tmp_path, fleet_payload):
        spool = tmp_path / "spool"
        queue = JobQueue(spool)
        queue.submit("refresh_fleet", fleet_payload)
        queue.journal_path.write_text("{ not json")
        with pytest.raises(ValueError, match="corrupt job journal"):
            JobQueue(spool)


class TestInspection:
    def test_counts_cover_every_state(self, queue, clock, fleet_payload):
        queue.submit("refresh_fleet", fleet_payload)  # stays queued
        queue.submit("refresh_fleet", fleet_payload, priority=9)
        running = queue.claim()
        assert running is not None
        done_id = queue.submit("refresh_fleet", fleet_payload, priority=-1).id
        cancelled = queue.submit("refresh_fleet", fleet_payload)
        queue.cancel(cancelled.id)
        counts = queue.counts()
        assert counts == {
            "queued": 2, "running": 1, "done": 0, "failed": 0, "cancelled": 1,
        }
        assert queue.pending_count == 3
        assert {j.id for j in queue.jobs()} >= {running.id, done_id}
