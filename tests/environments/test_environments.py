"""Unit tests for :mod:`repro.environments` (specs, builder, deployments)."""

import numpy as np
import pytest

from repro.environments import (
    build_deployment,
    hall_environment,
    library_environment,
    office_environment,
)
from repro.environments.base import EnvironmentSpec
from repro.environments.builder import multipath_config_for_level


class TestEnvironmentSpecs:
    def test_office_matches_paper(self):
        spec = office_environment()
        assert spec.link_count == 8
        assert spec.total_locations == 96  # closest stripe-aligned value to 94
        assert spec.multipath_level == "medium"
        assert (spec.width_m, spec.height_m) == (12.0, 9.0)

    def test_library_matches_paper(self):
        spec = library_environment()
        assert spec.link_count == 6
        assert spec.total_locations == 72
        assert spec.multipath_level == "high"

    def test_hall_matches_paper(self):
        spec = hall_environment()
        assert spec.link_count == 8
        assert spec.total_locations == 120
        assert spec.multipath_level == "low"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"width_m": 0.0},
            {"link_count": 1},
            {"locations_per_link": 1},
            {"grid_spacing_m": 0.0},
            {"multipath_level": "extreme"},
        ],
    )
    def test_invalid_spec_rejected(self, kwargs):
        base = dict(
            name="x", width_m=10.0, height_m=8.0, link_count=4, locations_per_link=6
        )
        base.update(kwargs)
        with pytest.raises(ValueError):
            EnvironmentSpec(**base)

    def test_multipath_level_lookup(self):
        assert multipath_config_for_level("high").scatterer_count > multipath_config_for_level(
            "low"
        ).scatterer_count
        with pytest.raises(ValueError):
            multipath_config_for_level("unknown")


class TestBuildDeployment:
    def test_counts_match_spec(self, small_spec):
        deployment = build_deployment(small_spec, seed=1)
        assert deployment.link_count == small_spec.link_count
        assert deployment.location_count == small_spec.total_locations

    def test_links_inside_area(self, small_spec):
        deployment = build_deployment(small_spec, seed=1)
        for link in deployment.links:
            for point in (link.transmitter, link.receiver):
                assert 0.0 <= point.x <= small_spec.width_m
                assert 0.0 <= point.y <= small_spec.height_m

    def test_stripe_locations_lie_on_their_link(self, small_spec):
        deployment = build_deployment(small_spec, seed=1)
        for j in range(deployment.location_count):
            link = deployment.links[deployment.link_of_location(j)]
            assert link.distance_from(deployment.location_point(j)) < 1e-9

    def test_deterministic_given_seed(self, small_spec):
        a = build_deployment(small_spec, seed=3)
        b = build_deployment(small_spec, seed=3)
        assert a.channel.baseline_rss_dbm(0) == b.channel.baseline_rss_dbm(0)

    def test_seed_changes_channel(self, small_spec):
        a = build_deployment(small_spec, seed=3)
        b = build_deployment(small_spec, seed=4)
        assert a.channel.baseline_rss_dbm(0) != b.channel.baseline_rss_dbm(0)

    def test_too_small_area_rejected(self):
        spec = EnvironmentSpec(
            name="tiny", width_m=2.0, height_m=0.8, link_count=2, locations_per_link=2
        )
        with pytest.raises(ValueError):
            build_deployment(spec)


class TestDeploymentHelpers:
    def test_stripe_indices_partition_locations(self, small_deployment):
        seen = []
        for i in range(small_deployment.link_count):
            seen.extend(small_deployment.stripe_indices(i))
        assert sorted(seen) == list(range(small_deployment.location_count))

    def test_link_of_location_consistent_with_stripes(self, small_deployment):
        for i in range(small_deployment.link_count):
            for j in small_deployment.stripe_indices(i):
                assert small_deployment.link_of_location(j) == i

    def test_stripe_offset_in_range(self, small_deployment):
        for j in range(small_deployment.location_count):
            assert 0 <= small_deployment.stripe_offset(j) < small_deployment.locations_per_link

    def test_neighbours_along_link(self, small_deployment):
        width = small_deployment.locations_per_link
        assert small_deployment.neighbours_along_link(0) == [1]
        assert small_deployment.neighbours_along_link(1) == [0, 2]
        assert small_deployment.neighbours_along_link(width - 1) == [width - 2]

    def test_location_array_shape(self, small_deployment):
        array = small_deployment.location_array()
        assert array.shape == (small_deployment.location_count, 2)

    def test_localization_error_metric(self, small_deployment):
        assert small_deployment.localization_error_m(0, 0) == 0.0
        assert small_deployment.localization_error_m(0, 1) > 0.0

    def test_invalid_indices_rejected(self, small_deployment):
        with pytest.raises(ValueError):
            small_deployment.stripe_indices(99)
        with pytest.raises(ValueError):
            small_deployment.link_of_location(-1)
