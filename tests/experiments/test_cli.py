"""Unit tests for the experiment CLI."""

import numpy as np
import pytest

from repro.experiments.cli import build_parser, main, render_result


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_defaults(self):
        args = build_parser().parse_args(["run", "labor_cost_savings"])
        assert args.command == "run"
        assert args.preset == "quick"
        assert args.names == ["labor_cost_savings"]

    def test_run_command_full_preset(self):
        args = build_parser().parse_args(
            ["run", "fig20_labor_cost", "--preset", "full", "--seed", "3"]
        )
        assert args.preset == "full"
        assert args.seed == 3


class TestRenderResult:
    def test_scalars_rendered(self):
        text = render_result("exp", {"value": 1.5, "flag": True})
        assert "exp" in text
        assert "value" in text

    def test_scalar_mapping_rendered(self):
        text = render_result("exp", {"medians": {"a": 1.0, "b": 2.0}})
        assert "medians" in text
        assert "a" in text

    def test_series_mapping_rendered(self):
        text = render_result("exp", {"series": {"row": {1.0: 2.0}}})
        assert "row" in text

    def test_sample_mapping_rendered(self):
        text = render_result("exp", {"errors": {"x": [1.0, 2.0, 3.0]}})
        assert "median" in text

    def test_large_arrays_omitted(self):
        text = render_result("exp", {"big": np.zeros(1000)})
        assert "big" not in text


class TestMain:
    def test_list_exit_code(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "labor_cost_savings" in output
        assert "fig21_localization_cdf" in output

    def test_unknown_experiment_rejected(self, capsys):
        assert main(["run", "fig99_not_real"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_run_cheap_experiment(self, capsys):
        assert main(["run", "labor_cost_savings", "fig20_labor_cost"]) == 0
        output = capsys.readouterr().out
        assert "labor_cost_savings" in output
        assert "fig20_labor_cost" in output
        assert "saving_vs_50_samples" in output
