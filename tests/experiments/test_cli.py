"""Unit tests for the experiment CLI."""

import numpy as np
import pytest

from repro.experiments.cli import build_parser, main, render_result


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_defaults(self):
        args = build_parser().parse_args(["run", "labor_cost_savings"])
        assert args.command == "run"
        assert args.preset == "quick"
        assert args.names == ["labor_cost_savings"]

    def test_run_command_full_preset(self):
        args = build_parser().parse_args(
            ["run", "fig20_labor_cost", "--preset", "full", "--seed", "3"]
        )
        assert args.preset == "full"
        assert args.seed == 3

    def test_fleet_command_defaults(self):
        args = build_parser().parse_args(["fleet"])
        assert args.command == "fleet"
        assert args.environments == ["office", "hall", "library"]
        assert args.days is None
        assert args.preset == "quick"

    def test_fleet_command_parses_lists(self):
        args = build_parser().parse_args(
            ["fleet", "--environments", "office,library", "--days", "3,45"]
        )
        assert args.environments == ["office", "library"]
        assert args.days == [3.0, 45.0]

    def test_fleet_command_rejects_bad_days(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet", "--days", "-3"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet", "--days", "soon"])


class TestRenderResult:
    def test_scalars_rendered(self):
        text = render_result("exp", {"value": 1.5, "flag": True})
        assert "exp" in text
        assert "value" in text

    def test_scalar_mapping_rendered(self):
        text = render_result("exp", {"medians": {"a": 1.0, "b": 2.0}})
        assert "medians" in text
        assert "a" in text

    def test_series_mapping_rendered(self):
        text = render_result("exp", {"series": {"row": {1.0: 2.0}}})
        assert "row" in text

    def test_sample_mapping_rendered(self):
        text = render_result("exp", {"errors": {"x": [1.0, 2.0, 3.0]}})
        assert "median" in text

    def test_large_arrays_omitted(self):
        text = render_result("exp", {"big": np.zeros(1000)})
        assert "big" not in text


class TestMain:
    def test_list_exit_code(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "labor_cost_savings" in output
        assert "fig21_localization_cdf" in output

    def test_unknown_experiment_rejected(self, capsys):
        assert main(["run", "fig99_not_real"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_run_cheap_experiment(self, capsys):
        assert main(["run", "labor_cost_savings", "fig20_labor_cost"]) == 0
        output = capsys.readouterr().out
        assert "labor_cost_savings" in output
        assert "fig20_labor_cost" in output
        assert "saving_vs_50_samples" in output

    def test_list_includes_fleet_experiment(self, capsys):
        assert main(["list"]) == 0
        assert "fleet_refresh" in capsys.readouterr().out


class TestFleetCommand:
    def test_tiny_fleet_refresh(self, capsys):
        assert (
            main(
                [
                    "fleet",
                    "--environments",
                    "office,library",
                    "--days",
                    "45",
                    "--link-count",
                    "3",
                    "--locations-per-link",
                    "4",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "fleet refresh @ 45 days" in output
        assert "office" in output and "library" in output
        assert "mean_error_db" in output
        assert "stacked_sweeps" in output

    def test_unknown_environment_rejected(self, capsys):
        assert main(["fleet", "--environments", "warehouse"]) == 2
        assert "unknown environment" in capsys.readouterr().err

    def test_duplicate_environments_rejected(self, capsys):
        assert main(["fleet", "--environments", "office,office"]) == 2
        assert "duplicate environments" in capsys.readouterr().err
