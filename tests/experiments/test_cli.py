"""Unit tests for the experiment CLI."""

import numpy as np
import pytest

from repro.experiments.cli import build_parser, main, render_result


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_defaults(self):
        args = build_parser().parse_args(["run", "labor_cost_savings"])
        assert args.command == "run"
        assert args.preset == "quick"
        assert args.names == ["labor_cost_savings"]

    def test_run_command_full_preset(self):
        args = build_parser().parse_args(
            ["run", "fig20_labor_cost", "--preset", "full", "--seed", "3"]
        )
        assert args.preset == "full"
        assert args.seed == 3

    def test_fleet_command_defaults(self):
        args = build_parser().parse_args(["fleet"])
        assert args.command == "fleet"
        assert args.environments == ["office", "hall", "library"]
        assert args.days is None
        assert args.preset == "quick"

    def test_fleet_command_parses_lists(self):
        args = build_parser().parse_args(
            ["fleet", "--environments", "office,library", "--days", "3,45"]
        )
        assert args.environments == ["office", "library"]
        assert args.days == [3.0, 45.0]

    def test_fleet_command_rejects_bad_days(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet", "--days", "-3"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet", "--days", "soon"])


class TestRenderResult:
    def test_scalars_rendered(self):
        text = render_result("exp", {"value": 1.5, "flag": True})
        assert "exp" in text
        assert "value" in text

    def test_scalar_mapping_rendered(self):
        text = render_result("exp", {"medians": {"a": 1.0, "b": 2.0}})
        assert "medians" in text
        assert "a" in text

    def test_series_mapping_rendered(self):
        text = render_result("exp", {"series": {"row": {1.0: 2.0}}})
        assert "row" in text

    def test_sample_mapping_rendered(self):
        text = render_result("exp", {"errors": {"x": [1.0, 2.0, 3.0]}})
        assert "median" in text

    def test_large_arrays_omitted(self):
        text = render_result("exp", {"big": np.zeros(1000)})
        assert "big" not in text


class TestMain:
    def test_list_exit_code(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "labor_cost_savings" in output
        assert "fig21_localization_cdf" in output

    def test_unknown_experiment_rejected(self, capsys):
        assert main(["run", "fig99_not_real"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_run_cheap_experiment(self, capsys):
        assert main(["run", "labor_cost_savings", "fig20_labor_cost"]) == 0
        output = capsys.readouterr().out
        assert "labor_cost_savings" in output
        assert "fig20_labor_cost" in output
        assert "saving_vs_50_samples" in output

    def test_list_includes_fleet_experiment(self, capsys):
        assert main(["list"]) == 0
        assert "fleet_refresh" in capsys.readouterr().out


class TestFleetWireCommands:
    def test_export_run_round_trip_matches_in_process(self, tmp_path, capsys):
        """CLI export → run must reproduce the in-process refresh bit-for-bit."""
        from repro.io import load_report, load_requests
        from repro.service.service import UpdateService

        requests_path = str(tmp_path / "requests.npz")
        report_path = str(tmp_path / "report.npz")
        assert (
            main(
                [
                    "fleet",
                    "export",
                    "--sites",
                    "6",
                    "--link-count",
                    "3,4",
                    "--locations-per-link",
                    "4",
                    "--out",
                    requests_path,
                ]
            )
            == 0
        )
        assert "wrote 6 requests" in capsys.readouterr().out
        assert (
            main(
                [
                    "fleet",
                    "run",
                    "--in",
                    requests_path,
                    "--out",
                    report_path,
                    "--max-stack-bytes",
                    "4096",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "loaded 6 requests" in output
        assert "plan:" in output and "rank groups" in output
        assert "fleet refresh @ 45 days" in output

        in_process = UpdateService().update_fleet(load_requests(requests_path))
        saved = load_report(report_path)
        assert saved.sites == tuple(r.site for r in in_process)
        for local, wire in zip(in_process, saved.reports):
            np.testing.assert_array_equal(local.estimate, wire.estimate)
        assert saved.plan is not None
        assert saved.plan.peak_stack_bytes <= 4096

    def test_run_on_hundred_site_payload(self, tmp_path, capsys):
        """One process refreshes a ≥100-site from-disk payload (sharded)."""
        requests_path = str(tmp_path / "requests100.npz")
        assert (
            main(
                [
                    "fleet",
                    "export",
                    "--sites",
                    "100",
                    "--link-count",
                    "3,4",
                    "--locations-per-link",
                    "4",
                    "--out",
                    requests_path,
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            main(
                ["fleet", "run", "--in", requests_path, "--max-stack-bytes", "8192"]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "loaded 100 requests" in output
        assert "sites            : 100.000" in output

    def test_run_with_workers_matches_serial(self, tmp_path, capsys):
        """fleet run --workers N end to end: same payload, same report."""
        from repro.io import load_report

        requests_path = str(tmp_path / "requests.npz")
        serial_path = str(tmp_path / "serial.npz")
        scattered_path = str(tmp_path / "scattered.npz")
        assert (
            main(
                [
                    "fleet",
                    "export",
                    "--sites",
                    "6",
                    "--link-count",
                    "3,4",
                    "--locations-per-link",
                    "4",
                    "--out",
                    requests_path,
                ]
            )
            == 0
        )
        base = ["fleet", "run", "--in", requests_path, "--max-stack-bytes", "4096"]
        assert main(base + ["--out", serial_path]) == 0
        capsys.readouterr()
        assert main(base + ["--out", scattered_path, "--workers", "2"]) == 0
        output = capsys.readouterr().out
        assert "executor: process (2 workers)" in output

        serial = load_report(serial_path)
        scattered = load_report(scattered_path)
        assert serial.executor == "serial" and serial.workers == 0
        assert scattered.executor == "process" and scattered.workers == 2
        assert scattered.sites == serial.sites
        for ours, theirs in zip(scattered.reports, serial.reports):
            np.testing.assert_array_equal(ours.estimate, theirs.estimate)
        assert scattered.plan == serial.plan

    def test_run_rejects_negative_workers(self, tmp_path, capsys):
        assert (
            main(
                ["fleet", "run", "--in", str(tmp_path / "x.npz"), "--workers", "-1"]
            )
            == 2
        )
        assert "--workers" in capsys.readouterr().err

    def test_run_rejects_missing_payload(self, tmp_path, capsys):
        assert main(["fleet", "run", "--in", str(tmp_path / "nope.npz")]) == 2
        assert "cannot read wire payload" in capsys.readouterr().err

    def test_export_rejects_bad_sites(self, tmp_path, capsys):
        out = str(tmp_path / "x.npz")
        assert main(["fleet", "export", "--sites", "0", "--out", out]) == 2
        assert "--sites" in capsys.readouterr().err

    def test_export_parser_rejects_bad_link_counts(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["fleet", "export", "--out", "x.npz", "--link-count", "0"]
            )
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["fleet", "export", "--out", "x.npz", "--link-count", "many"]
            )


class TestQueryParser:
    def test_export_defaults(self):
        args = build_parser().parse_args(
            ["query", "export", "--report", "r.npz", "--out", "q.npz"]
        )
        assert args.command == "query"
        assert args.query_command == "export"
        assert args.per_site == 16
        assert args.noise_db == pytest.approx(0.5)

    def test_run_defaults(self):
        args = build_parser().parse_args(
            ["query", "run", "--report", "r.npz", "--queries", "q.npz"]
        )
        assert args.query_command == "run"
        assert args.matcher == "knn"
        assert args.backend == "vectorized"
        assert args.cache == 0
        assert args.out is None

    def test_run_rejects_unknown_matcher(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                [
                    "query",
                    "run",
                    "--report",
                    "r.npz",
                    "--queries",
                    "q.npz",
                    "--matcher",
                    "nearest",
                ]
            )

    def test_bench_defaults(self):
        args = build_parser().parse_args(["query", "bench"])
        assert args.query_command == "bench"
        assert args.batch_sizes == [1, 64, 1024]
        assert args.repeats == 3
        assert args.qps_target is None

    def test_bench_parses_batch_sizes(self):
        args = build_parser().parse_args(
            ["query", "bench", "--batch-sizes", "2,8", "--qps-target", "1e4"]
        )
        assert args.batch_sizes == [2, 8]
        assert args.qps_target == pytest.approx(1e4)

    def test_query_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query"])


class TestQueryCommands:
    @pytest.fixture()
    def report_path(self, tmp_path):
        requests_path = str(tmp_path / "requests.npz")
        path = str(tmp_path / "report.npz")
        assert (
            main(
                [
                    "fleet",
                    "export",
                    "--sites",
                    "2",
                    "--link-count",
                    "4",
                    "--locations-per-link",
                    "4",
                    "--out",
                    requests_path,
                ]
            )
            == 0
        )
        assert main(["fleet", "run", "--in", requests_path, "--out", path]) == 0
        return path

    def test_export_run_round_trip_matches_in_process(
        self, report_path, tmp_path, capsys
    ):
        """CLI query export → run must match an in-process QueryEngine."""
        from repro.io import load_answers, load_queries, load_report
        from repro.query import QueryConfig, QueryEngine

        queries_path = str(tmp_path / "queries.npz")
        answers_path = str(tmp_path / "answers.npz")
        capsys.readouterr()
        assert (
            main(
                [
                    "query",
                    "export",
                    "--report",
                    report_path,
                    "--out",
                    queries_path,
                    "--per-site",
                    "8",
                ]
            )
            == 0
        )
        assert "wrote 16 queries over 2 sites" in capsys.readouterr().out
        assert (
            main(
                [
                    "query",
                    "run",
                    "--report",
                    report_path,
                    "--queries",
                    queries_path,
                    "--out",
                    answers_path,
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "serving generation 0" in output
        assert "accuracy vs ground truth" in output

        engine = QueryEngine(QueryConfig())
        batches = load_queries(queries_path)
        engine.publish_report(
            load_report(report_path),
            locations={b.site: b.locations for b in batches},
        )
        for batch, answer in zip(batches, load_answers(answers_path)):
            expected = engine.answer(batch)
            assert answer.site == expected.site == batch.site
            np.testing.assert_array_equal(answer.indices, expected.indices)
            np.testing.assert_allclose(answer.points, expected.points)

    def test_run_looped_backend_matches_vectorized(
        self, report_path, tmp_path, capsys
    ):
        from repro.io import load_answers

        queries_path = str(tmp_path / "queries.npz")
        assert (
            main(
                [
                    "query",
                    "export",
                    "--report",
                    report_path,
                    "--out",
                    queries_path,
                    "--per-site",
                    "6",
                ]
            )
            == 0
        )
        paths = {}
        for backend in ("vectorized", "looped"):
            paths[backend] = str(tmp_path / f"{backend}.npz")
            assert (
                main(
                    [
                        "query",
                        "run",
                        "--report",
                        report_path,
                        "--queries",
                        queries_path,
                        "--backend",
                        backend,
                        "--out",
                        paths[backend],
                    ]
                )
                == 0
            )
        capsys.readouterr()
        for fast, slow in zip(
            load_answers(paths["vectorized"]), load_answers(paths["looped"])
        ):
            np.testing.assert_array_equal(fast.indices, slow.indices)
            np.testing.assert_allclose(fast.points, slow.points, atol=1e-10)

    def test_run_with_cache_reports_hits(self, report_path, tmp_path, capsys):
        queries_path = str(tmp_path / "queries.npz")
        assert (
            main(
                [
                    "query",
                    "export",
                    "--report",
                    report_path,
                    "--out",
                    queries_path,
                    "--per-site",
                    "4",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            main(
                [
                    "query",
                    "run",
                    "--report",
                    report_path,
                    "--queries",
                    queries_path,
                    "--cache",
                    "64",
                ]
            )
            == 0
        )
        assert "cache:" in capsys.readouterr().out

    def test_bench_smoke(self, report_path, capsys):
        assert (
            main(
                [
                    "query",
                    "bench",
                    "--report",
                    report_path,
                    "--batch-sizes",
                    "1,16",
                    "--repeats",
                    "1",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "batch     1" in output
        assert "vectorized" in output

    def test_bench_unreachable_target_fails(self, report_path, capsys):
        assert (
            main(
                [
                    "query",
                    "bench",
                    "--report",
                    report_path,
                    "--batch-sizes",
                    "4",
                    "--repeats",
                    "1",
                    "--qps-target",
                    "1e15",
                ]
            )
            == 1
        )
        assert "below the target" in capsys.readouterr().err

    def test_export_rejects_missing_report(self, tmp_path, capsys):
        assert (
            main(
                [
                    "query",
                    "export",
                    "--report",
                    str(tmp_path / "nope.npz"),
                    "--out",
                    str(tmp_path / "q.npz"),
                ]
            )
            == 2
        )
        assert "cannot read wire payload" in capsys.readouterr().err

    def test_export_rejects_bad_per_site(self, report_path, tmp_path, capsys):
        assert (
            main(
                [
                    "query",
                    "export",
                    "--report",
                    report_path,
                    "--out",
                    str(tmp_path / "q.npz"),
                    "--per-site",
                    "0",
                ]
            )
            == 2
        )
        assert "--per-site" in capsys.readouterr().err


class TestParallelRun:
    def test_jobs_flag_parses(self):
        args = build_parser().parse_args(["run", "labor_cost_savings", "--jobs", "2"])
        assert args.jobs == 2

    def test_invalid_jobs_rejected(self, capsys):
        assert main(["run", "labor_cost_savings", "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_two_job_smoke(self, capsys):
        """Two cheap experiments across two worker processes."""
        assert (
            main(["run", "labor_cost_savings", "fig20_labor_cost", "--jobs", "2"]) == 0
        )
        output = capsys.readouterr().out
        assert "labor_cost_savings" in output
        assert "fig20_labor_cost" in output
        assert "saving_vs_50_samples" in output


class TestFleetCommand:
    def test_tiny_fleet_refresh(self, capsys):
        assert (
            main(
                [
                    "fleet",
                    "--environments",
                    "office,library",
                    "--days",
                    "45",
                    "--link-count",
                    "3",
                    "--locations-per-link",
                    "4",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "fleet refresh @ 45 days" in output
        assert "office" in output and "library" in output
        assert "mean_error_db" in output
        assert "stacked_sweeps" in output

    def test_unknown_environment_rejected(self, capsys):
        assert main(["fleet", "--environments", "warehouse"]) == 2
        assert "unknown environment" in capsys.readouterr().err

    def test_duplicate_environments_rejected(self, capsys):
        assert main(["fleet", "--environments", "office,office"]) == 2
        assert "duplicate environments" in capsys.readouterr().err
