"""Unit tests for the experiment configuration, runner and reporting helpers."""

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import CampaignCache
from repro.experiments.reporting import (
    format_cdf_summary,
    format_key_values,
    format_series_table,
)
from repro.experiments.runner import EXPERIMENTS, ExperimentRunner


class TestExperimentConfig:
    def test_quick_preset(self):
        config = ExperimentConfig.quick()
        assert config.timestamps_days == (0.0, 45.0)
        assert config.later_timestamps == (45.0,)

    def test_full_preset_has_all_paper_stamps(self):
        config = ExperimentConfig.full()
        assert config.timestamps_days == (0.0, 3.0, 5.0, 15.0, 45.0, 90.0)

    def test_campaign_config_propagates_sampling(self):
        config = ExperimentConfig(survey_samples=9, reference_samples=4, online_samples=3)
        campaign_config = config.campaign_config()
        assert campaign_config.collection.survey_samples == 9
        assert campaign_config.collection.reference_samples == 4
        assert campaign_config.collection.online_samples == 3

    def test_environments_present(self):
        environments = ExperimentConfig.quick().environments()
        assert set(environments) == {"hall", "office", "library"}


class TestCampaignCache:
    def test_cache_reuses_campaigns(self):
        cache = CampaignCache(ExperimentConfig.quick())
        assert cache.campaign("office") is cache.campaign("office")

    def test_unknown_environment_rejected(self):
        cache = CampaignCache(ExperimentConfig.quick())
        with pytest.raises(ValueError):
            cache.campaign("spaceship")


class TestRunnerRegistry:
    def test_all_paper_figures_registered(self):
        expected = {
            "fig01_short_term_variation",
            "fig02_long_term_shift",
            "fig05_low_rank",
            "fig06_difference_stability",
            "fig08_nlc_cdf",
            "fig09_als_cdf",
            "fig14_reference_count_cdf",
            "fig15_reference_count_over_time",
            "fig16_constraint_ablation",
            "fig17_partial_data",
            "fig18_reconstruction_cdf",
            "fig19_environments",
            "fig20_labor_cost",
            "fig21_localization_cdf",
            "fig22_localization_environments",
            "fig23_rass_cdf",
            "fig24_rass_over_time",
            "labor_cost_savings",
        }
        assert expected.issubset(set(EXPERIMENTS))

    def test_unknown_experiment_rejected(self):
        runner = ExperimentRunner(ExperimentConfig.quick())
        with pytest.raises(KeyError):
            runner.run("fig99_unknown")

    def test_available_sorted(self):
        names = ExperimentRunner.available()
        assert names == sorted(names)

    def test_cheap_experiments_run(self):
        runner = ExperimentRunner(ExperimentConfig.quick())
        labor = runner.run("labor_cost_savings")
        assert labor["saving_vs_50_samples"] > 0.9
        fig20 = runner.run("fig20_labor_cost")
        assert np.all(fig20["traditional_hours"] > fig20["iupdater_hours"])

    def test_registry_documented_in_experiments_md(self):
        """docs/EXPERIMENTS.md is generated from the registry: every
        registered experiment must appear there by name."""
        from pathlib import Path

        doc = Path(__file__).resolve().parents[2] / "docs" / "EXPERIMENTS.md"
        text = doc.read_text()
        missing = [name for name in EXPERIMENTS if name not in text]
        assert not missing, f"docs/EXPERIMENTS.md is missing: {missing}"


class TestParallelRunner:
    NAMES = ["labor_cost_savings", "fig20_labor_cost"]

    def test_two_job_results_match_sequential(self):
        """Process fan-out must merge deterministically: same keys, same
        numbers, input order preserved.  These two experiments are analytic
        (no stateful substrate sampling), so run-as-if-alone worker
        semantics and the sequential shared-cache run coincide exactly."""
        runner = ExperimentRunner(ExperimentConfig.quick())
        sequential = runner.run_many(self.NAMES, jobs=1)
        parallel = runner.run_many(self.NAMES, jobs=2)
        assert list(parallel) == list(sequential) == self.NAMES
        for name in self.NAMES:
            assert set(parallel[name]) == set(sequential[name])
            for key, value in sequential[name].items():
                got = parallel[name][key]
                if isinstance(value, np.ndarray):
                    np.testing.assert_array_equal(got, value)
                elif isinstance(value, (int, float)):
                    assert got == pytest.approx(value)

    def test_invalid_jobs_rejected(self):
        runner = ExperimentRunner(ExperimentConfig.quick())
        with pytest.raises(ValueError, match="jobs"):
            runner.run_many(self.NAMES, jobs=0)

    def test_unknown_name_rejected_before_spawning(self):
        runner = ExperimentRunner(ExperimentConfig.quick())
        with pytest.raises(KeyError, match="unknown experiments"):
            runner.run_many(["fig99_unknown"], jobs=2)


class TestReporting:
    def test_format_key_values(self):
        text = format_key_values("Title", {"a": 1.234, "b": 5})
        assert "Title" in text
        assert "1.234" in text

    def test_format_series_table(self):
        series = {"row": {1.0: 2.0, 3.0: 4.0}}
        text = format_series_table("Table", series, unit="dB")
        assert "Table" in text
        assert "row" in text
        assert "dB" in text

    def test_format_series_table_handles_missing_cells(self):
        series = {"a": {1.0: 2.0}, "b": {3.0: 4.0}}
        text = format_series_table("T", series)
        assert "-" in text

    def test_format_cdf_summary(self):
        text = format_cdf_summary("CDF", {"x": [1.0, 2.0, 3.0]})
        assert "median" in text
        assert "x" in text
