"""Unit tests for :mod:`repro.fingerprint.database`."""

import numpy as np
import pytest

from repro.fingerprint.database import PAPER_TIMESTAMPS_DAYS, FingerprintDatabase
from repro.fingerprint.matrix import FingerprintMatrix


def make_matrix(offset=0.0):
    return FingerprintMatrix(values=np.full((3, 12), -60.0 + offset), locations_per_link=4)


class TestConstruction:
    def test_original_snapshot_present(self):
        database = FingerprintDatabase(make_matrix())
        assert 0.0 in database
        assert len(database) == 1

    def test_paper_timestamps_constant(self):
        assert PAPER_TIMESTAMPS_DAYS == (0.0, 3.0, 5.0, 15.0, 45.0, 90.0)


class TestSnapshots:
    def test_add_and_get(self):
        database = FingerprintDatabase(make_matrix())
        database.add_snapshot(5.0, make_matrix(1.0))
        assert database.get(5.0).values[0, 0] == pytest.approx(-59.0)

    def test_timestamps_sorted(self):
        database = FingerprintDatabase(make_matrix())
        database.add_snapshot(45.0, make_matrix())
        database.add_snapshot(3.0, make_matrix())
        assert database.timestamps == [0.0, 3.0, 45.0]

    def test_iteration_order(self):
        database = FingerprintDatabase(make_matrix())
        database.add_snapshot(10.0, make_matrix())
        days = [snapshot.elapsed_days for snapshot in database]
        assert days == [0.0, 10.0]

    def test_mark_as_current(self):
        database = FingerprintDatabase(make_matrix())
        database.add_snapshot(5.0, make_matrix(2.0), mark_as_current=True)
        assert database.latest_updated_days == 5.0
        assert database.current.values[0, 0] == pytest.approx(-58.0)

    def test_ground_truth_snapshots_do_not_change_current(self):
        database = FingerprintDatabase(make_matrix())
        database.add_snapshot(5.0, make_matrix(2.0), mark_as_current=False)
        assert database.latest_updated_days == 0.0

    def test_shape_mismatch_rejected(self):
        database = FingerprintDatabase(make_matrix())
        other = FingerprintMatrix(values=np.zeros((3, 9)), locations_per_link=3)
        with pytest.raises(ValueError):
            database.add_snapshot(1.0, other)

    def test_negative_time_rejected(self):
        database = FingerprintDatabase(make_matrix())
        with pytest.raises(ValueError):
            database.add_snapshot(-1.0, make_matrix())

    def test_missing_snapshot_raises(self):
        database = FingerprintDatabase(make_matrix())
        with pytest.raises(KeyError):
            database.get(7.0)

    def test_drop_snapshot(self):
        database = FingerprintDatabase(make_matrix())
        database.add_snapshot(5.0, make_matrix())
        database.drop_snapshot(5.0)
        assert 5.0 not in database
        assert database.latest_updated_days == 0.0

    def test_cannot_drop_original(self):
        database = FingerprintDatabase(make_matrix())
        with pytest.raises(ValueError):
            database.drop_snapshot(0.0)


class TestQueries:
    def test_staleness(self):
        database = FingerprintDatabase(make_matrix())
        assert database.staleness_days(45.0) == 45.0
        database.add_snapshot(30.0, make_matrix())
        assert database.staleness_days(45.0) == 15.0

    def test_staleness_rejects_past(self):
        database = FingerprintDatabase(make_matrix())
        database.add_snapshot(30.0, make_matrix())
        with pytest.raises(ValueError):
            database.staleness_days(10.0)

    def test_drift_between(self):
        database = FingerprintDatabase(make_matrix())
        database.add_snapshot(5.0, make_matrix(3.0), mark_as_current=False)
        assert database.drift_between(0.0, 5.0) == pytest.approx(3.0)
