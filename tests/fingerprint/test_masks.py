"""Unit tests for :mod:`repro.fingerprint.masks`."""

import numpy as np
import pytest

from repro.fingerprint.masks import DecreaseClassification, ElementCategory, classify_elements


class TestClassification:
    def test_shape(self, small_deployment):
        classification = classify_elements(small_deployment)
        assert classification.shape == (
            small_deployment.link_count,
            small_deployment.location_count,
        )

    def test_own_stripe_is_large_decrease(self, small_deployment):
        classification = classify_elements(small_deployment)
        for j in range(small_deployment.location_count):
            own = small_deployment.link_of_location(j)
            assert classification.categories[own, j] == ElementCategory.LARGE.value

    def test_masks_partition_elements(self, small_deployment):
        classification = classify_elements(small_deployment)
        total = (
            classification.no_decrease_mask
            + classification.small_decrease_mask
            + classification.large_decrease_mask
        )
        np.testing.assert_allclose(total, np.ones_like(total))

    def test_labor_mask_complement(self, small_deployment):
        classification = classify_elements(small_deployment)
        np.testing.assert_allclose(
            classification.labor_mask, 1.0 - classification.no_decrease_mask
        )

    def test_far_links_have_no_decrease(self, small_deployment):
        classification = classify_elements(small_deployment)
        # A location on link 0's stripe should not affect link 3 (three stripes away).
        j = next(iter(small_deployment.stripe_indices(0)))
        assert classification.categories[3, j] == ElementCategory.NONE.value

    def test_fraction_no_decrease_positive(self, small_deployment):
        classification = classify_elements(small_deployment)
        assert 0.0 < classification.fraction_no_decrease() < 1.0

    def test_structural_mode_matches_figure4_sketch(self, small_deployment):
        classification = classify_elements(small_deployment, use_geometry=False)
        j = next(iter(small_deployment.stripe_indices(1)))
        assert classification.categories[1, j] == ElementCategory.LARGE.value
        assert classification.categories[0, j] == ElementCategory.SMALL.value
        assert classification.categories[2, j] == ElementCategory.SMALL.value
        assert classification.categories[3, j] == ElementCategory.NONE.value

    def test_geometry_and_structural_agree_on_own_stripe(self, small_deployment):
        geometric = classify_elements(small_deployment, use_geometry=True)
        structural = classify_elements(small_deployment, use_geometry=False)
        np.testing.assert_allclose(
            geometric.large_decrease_mask.diagonal()
            if geometric.large_decrease_mask.shape[0] == geometric.large_decrease_mask.shape[1]
            else np.ones(1),
            structural.large_decrease_mask.diagonal()
            if structural.large_decrease_mask.shape[0] == structural.large_decrease_mask.shape[1]
            else np.ones(1),
        )
        # Both agree that every column's own link is a large decrease.
        for j in range(small_deployment.location_count):
            own = small_deployment.link_of_location(j)
            assert geometric.categories[own, j] == structural.categories[own, j]
