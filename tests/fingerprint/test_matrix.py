"""Unit and property tests for :mod:`repro.fingerprint.matrix`."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fingerprint.matrix import FingerprintMatrix


def make_matrix(links=4, width=6, fill=-60.0):
    values = np.full((links, links * width), fill)
    return FingerprintMatrix(values=values, locations_per_link=width)


class TestConstruction:
    def test_shape_properties(self, striped_fingerprint):
        assert striped_fingerprint.link_count == 4
        assert striped_fingerprint.location_count == 24
        assert striped_fingerprint.shape == (4, 24)

    def test_rejects_inconsistent_columns(self):
        with pytest.raises(ValueError):
            FingerprintMatrix(values=np.zeros((4, 23)), locations_per_link=6)

    def test_rejects_non_positive_stripe(self):
        with pytest.raises(ValueError):
            FingerprintMatrix(values=np.zeros((4, 24)), locations_per_link=0)

    def test_rejects_bad_mask_shape(self):
        with pytest.raises(ValueError):
            FingerprintMatrix(
                values=np.zeros((4, 24)),
                locations_per_link=6,
                no_decrease_mask=np.zeros((4, 23)),
            )

    def test_rejects_non_binary_mask(self):
        with pytest.raises(ValueError):
            FingerprintMatrix(
                values=np.zeros((4, 24)),
                locations_per_link=6,
                no_decrease_mask=np.full((4, 24), 0.5),
            )

    def test_default_mask_structural(self):
        matrix = make_matrix()
        mask = matrix.index_matrix()
        # Own link and adjacent links are labor-cost entries (mask 0).
        assert mask[0, 0] == 0.0
        assert mask[1, 0] == 0.0
        assert mask[2, 0] == 1.0
        assert mask[3, 0] == 1.0

    def test_copy_is_deep(self, striped_fingerprint):
        clone = striped_fingerprint.copy()
        clone.values[0, 0] = 0.0
        assert striped_fingerprint.values[0, 0] != 0.0


class TestStripeMath:
    def test_link_of_column(self):
        matrix = make_matrix(links=3, width=5)
        assert matrix.link_of_column(0) == 0
        assert matrix.link_of_column(4) == 0
        assert matrix.link_of_column(5) == 1
        assert matrix.link_of_column(14) == 2

    def test_stripe_offset(self):
        matrix = make_matrix(links=3, width=5)
        assert matrix.stripe_offset(7) == 2

    def test_stripe_columns(self):
        matrix = make_matrix(links=3, width=5)
        assert list(matrix.stripe_columns(1)) == [5, 6, 7, 8, 9]

    def test_out_of_range_rejected(self):
        matrix = make_matrix()
        with pytest.raises(ValueError):
            matrix.link_of_column(99)
        with pytest.raises(ValueError):
            matrix.stripe_columns(9)


class TestDerivedMatrices:
    def test_largely_decrease_shape(self, striped_fingerprint):
        xd = striped_fingerprint.largely_decrease_matrix()
        assert xd.shape == (4, 6)

    def test_largely_decrease_values_match_diagonal_stripes(self, striped_fingerprint):
        xd = striped_fingerprint.largely_decrease_matrix()
        for i in range(4):
            np.testing.assert_allclose(
                xd[i], striped_fingerprint.values[i, i * 6 : (i + 1) * 6]
            )

    def test_set_largely_decrease_roundtrip(self, striped_fingerprint):
        matrix = striped_fingerprint.copy()
        xd = matrix.largely_decrease_matrix() + 1.0
        matrix.set_largely_decrease_matrix(xd)
        np.testing.assert_allclose(matrix.largely_decrease_matrix(), xd)

    def test_set_largely_decrease_rejects_bad_shape(self, striped_fingerprint):
        with pytest.raises(ValueError):
            striped_fingerprint.set_largely_decrease_matrix(np.zeros((4, 5)))

    def test_no_decrease_matrix_is_masked(self, striped_fingerprint):
        xb = striped_fingerprint.no_decrease_matrix()
        mask = striped_fingerprint.index_matrix()
        np.testing.assert_allclose(xb, striped_fingerprint.values * mask)

    def test_columns_extraction(self, striped_fingerprint):
        columns = striped_fingerprint.columns([0, 5, 10])
        assert columns.shape == (4, 3)
        np.testing.assert_allclose(columns[:, 1], striped_fingerprint.values[:, 5])

    def test_column_extraction_single(self, striped_fingerprint):
        np.testing.assert_allclose(
            striped_fingerprint.column(3), striped_fingerprint.values[:, 3]
        )

    def test_column_out_of_range(self, striped_fingerprint):
        with pytest.raises(ValueError):
            striped_fingerprint.column(99)


class TestMetrics:
    def test_reconstruction_error_zero_for_identical(self, striped_fingerprint):
        assert striped_fingerprint.reconstruction_error_db(striped_fingerprint) == 0.0

    def test_reconstruction_error_of_offset(self, striped_fingerprint):
        other = striped_fingerprint.values + 2.0
        assert striped_fingerprint.reconstruction_error_db(other) == pytest.approx(2.0)

    def test_per_column_errors_shape(self, striped_fingerprint):
        errors = striped_fingerprint.per_column_errors_db(striped_fingerprint.values + 1.0)
        assert errors.shape == (24,)
        np.testing.assert_allclose(errors, 1.0)

    def test_shape_mismatch_rejected(self, striped_fingerprint):
        with pytest.raises(ValueError):
            striped_fingerprint.reconstruction_error_db(np.zeros((4, 23)))

    def test_singular_values_descending(self, striped_fingerprint):
        values = striped_fingerprint.singular_values()
        assert np.all(np.diff(values) <= 1e-9)

    @given(st.floats(-5.0, 5.0, allow_nan=False))
    @settings(max_examples=30, deadline=None)
    def test_error_equals_absolute_offset(self, offset):
        matrix = make_matrix()
        assert matrix.reconstruction_error_db(matrix.values + offset) == pytest.approx(
            abs(offset)
        )
