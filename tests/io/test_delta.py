"""Delta wire payloads: ``save_delta`` / ``load_delta`` / ``apply_delta``."""

import json
from dataclasses import replace

import numpy as np
import pytest

from repro.core.self_augmented import SelfAugmentedConfig
from repro.core.updater import UpdaterConfig
from repro.io.delta import (
    DELTA_FORMAT,
    DELTA_VERSION,
    FleetDelta,
    apply_delta,
    load_delta,
    report_fingerprint,
    save_delta,
)
from repro.io.wire import load_report, save_report
from repro.service.service import UpdateService
from repro.service.synthetic import synthesize_fleet
from repro.service.types import FleetReport


def refresh(requests, warm_from=None, **kwargs):
    service = UpdateService()
    reports = service.update_fleet(requests, warm_from=warm_from, **kwargs)
    return FleetReport(
        elapsed_days=45.0,
        reports=tuple(reports),
        sweeps_saved=service.last_sweeps_saved,
    )


@pytest.fixture(scope="module")
def generations():
    """Base cold refresh + a drifted target refresh of the same fleet."""
    requests = synthesize_fleet(
        3,
        elapsed_days=45.0,
        seed=11,
        link_count=3,
        locations_per_link=4,
        updater=UpdaterConfig(
            solver=SelfAugmentedConfig(max_iterations=60, tolerance=1e-4)
        ),
    )
    base = refresh(requests)
    rng = np.random.default_rng(5)
    drifted = [
        replace(
            request,
            no_decrease_matrix=request.no_decrease_matrix
            + 0.01
            * request.no_decrease_mask
            * rng.standard_normal(request.no_decrease_matrix.shape),
        )
        for request in requests
    ]
    target = refresh(drifted, warm_from=base)
    return requests, base, target


class TestFingerprint:
    def test_identical_reports_fingerprint_equal(self, generations):
        requests, base, target = generations
        again = refresh(requests)
        assert report_fingerprint(base) == report_fingerprint(again)

    def test_different_reports_fingerprint_differently(self, generations):
        requests, base, target = generations
        assert report_fingerprint(base) != report_fingerprint(target)

    def test_fingerprint_ignores_fleet_aggregates(self, generations):
        requests, base, target = generations
        relabeled = replace(base, elapsed_days=99.0, workers=7)
        assert report_fingerprint(base) == report_fingerprint(relabeled)


class TestRoundTrip:
    def test_apply_reconstructs_target_bit_identical(
        self, generations, tmp_path
    ):
        requests, base, target = generations
        delta_path = tmp_path / "delta.npz"
        full_path = tmp_path / "full.npz"
        save_delta(delta_path, base, target)
        save_report(full_path, target)
        rebuilt = apply_delta(base, load_delta(delta_path))
        full = load_report(full_path)
        assert rebuilt.sweeps_saved == full.sweeps_saved
        assert rebuilt.elapsed_days == full.elapsed_days
        for a, b in zip(full.reports, rebuilt.reports):
            assert a.site == b.site
            assert a.sweeps == b.sweeps
            assert a.warm_started == b.warm_started
            np.testing.assert_array_equal(a.estimate, b.estimate)
            np.testing.assert_array_equal(
                a.result.solver.left, b.result.solver.left
            )
            np.testing.assert_array_equal(a.matrix.values, b.matrix.values)
        assert report_fingerprint(rebuilt) == report_fingerprint(full)

    def test_delta_smaller_than_full_payload(self, generations, tmp_path):
        requests, base, target = generations
        delta_path = tmp_path / "delta.npz"
        full_path = tmp_path / "full.npz"
        save_delta(delta_path, base, target)
        save_report(full_path, target)
        assert delta_path.stat().st_size < full_path.stat().st_size

    def test_unchanged_warm_generations_ship_same(self, generations, tmp_path):
        requests, base, target = generations
        # Two consecutive warm refreshes of identical data are bit-identical
        # generation to generation, so every site rides mode "same".
        warm_a = refresh(requests, warm_from=base)
        warm_b = refresh(requests, warm_from=warm_a)
        path = tmp_path / "delta.npz"
        save_delta(path, warm_a, warm_b)
        delta = load_delta(path)
        assert set(delta.modes.values()) == {"same"}
        assert delta.arrays == {}
        rebuilt = apply_delta(warm_a, delta)
        assert report_fingerprint(rebuilt) == report_fingerprint(warm_b)

    def test_new_site_ships_full(self, generations, tmp_path):
        requests, base, target = generations
        shrunken = replace(base, reports=base.reports[:-1])
        path = tmp_path / "delta.npz"
        save_delta(path, shrunken, target)
        delta = load_delta(path)
        modes = delta.modes
        assert modes[target.reports[-1].site] == "full"
        rebuilt = apply_delta(shrunken, delta)
        assert report_fingerprint(rebuilt) == report_fingerprint(target)

    def test_drifted_sites_ship_patches(self, generations, tmp_path):
        requests, base, target = generations
        path = tmp_path / "delta.npz"
        save_delta(path, base, target)
        delta = load_delta(path)
        assert set(delta.modes.values()) == {"patch"}
        assert delta.manifest["base_count"] == len(base.reports)
        assert delta.sites == tuple(r.site for r in target.reports)


class TestValidation:
    def test_wrong_base_rejected_with_fingerprints(
        self, generations, tmp_path
    ):
        requests, base, target = generations
        path = tmp_path / "delta.npz"
        save_delta(path, base, target)
        delta = load_delta(path)
        with pytest.raises(ValueError, match="fingerprint"):
            apply_delta(target, delta)

    def test_full_report_payload_rejected(self, generations, tmp_path):
        requests, base, target = generations
        path = tmp_path / "report.npz"
        save_report(path, target)
        with pytest.raises(ValueError, match="format"):
            load_delta(path)

    def test_unknown_mode_rejected(self, generations, tmp_path):
        requests, base, target = generations
        path = tmp_path / "delta.npz"
        save_delta(path, base, target)
        delta = load_delta(path)
        manifest = json.loads(json.dumps(delta.manifest))
        manifest["sites"][0]["mode"] = "sideways"
        rewritten = tmp_path / "corrupt.npz"
        np.savez_compressed(
            rewritten,
            manifest=np.asarray(json.dumps(manifest)),
            **delta.arrays,
        )
        with pytest.raises(ValueError, match="unknown mode"):
            load_delta(rewritten)

    def test_missing_patch_arrays_rejected(self, generations, tmp_path):
        requests, base, target = generations
        path = tmp_path / "delta.npz"
        save_delta(path, base, target)
        delta = load_delta(path)
        # Drop one shipped array: apply must fail naming the site.
        assert delta.arrays, "drifted delta should ship at least one array"
        dropped = sorted(delta.arrays)[0]
        pruned = {k: v for k, v in delta.arrays.items() if k != dropped}
        broken = FleetDelta(manifest=delta.manifest, arrays=pruned)
        with pytest.raises(ValueError, match="cannot apply delta for site"):
            apply_delta(base, broken)

    def test_not_a_zip_rejected(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"not a zip archive")
        with pytest.raises(ValueError):
            load_delta(path)

    def test_format_constants_pinned(self):
        assert DELTA_FORMAT == "repro-fleet-delta"
        assert DELTA_VERSION == 1
