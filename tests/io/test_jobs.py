"""The daemon journal must round-trip exactly and refuse corrupt input."""

import json

import pytest

from repro.io.jobs import (
    JOB_STATES,
    JOURNAL_FORMAT,
    JOURNAL_VERSION,
    JobRecord,
    copy_record,
    job_from_json,
    job_to_json,
    load_journal,
    save_journal,
)


def _record(**overrides):
    base = dict(
        id="j000004",
        kind="refresh_fleet",
        priority=3,
        state="queued",
        sequence=4,
        attempts=1,
        max_attempts=5,
        backoff_seconds=0.25,
        not_before=1700000000.125,
        payload="payloads/j000004.npz",
        result=None,
        error="RuntimeError: worker failed",
        label="nightly",
        max_stack_bytes=65536,
        workers=2,
        generation=None,
        submitted_at=1699999999.5,
        started_at=None,
        finished_at=None,
    )
    base.update(overrides)
    return JobRecord(**base)


class TestRecordRoundTrip:
    def test_every_field_survives_json(self):
        record = _record()
        restored = job_from_json(job_to_json(record))
        assert restored == record

    def test_float_timestamps_ride_json_exactly(self):
        record = _record(not_before=0.1 + 0.2, submitted_at=1e-17)
        encoded = json.loads(json.dumps(job_to_json(record)))
        restored = job_from_json(encoded)
        assert restored.not_before == record.not_before
        assert restored.submitted_at == record.submitted_at

    def test_copy_is_independent(self):
        record = _record()
        clone = copy_record(record)
        clone.state = "running"
        assert record.state == "queued"

    def test_pending_and_terminal_partition_states(self):
        for state in JOB_STATES:
            record = _record(state=state)
            assert record.is_pending != record.is_terminal
        assert _record(state="queued").is_pending
        assert _record(state="running").is_pending
        assert _record(state="done").is_terminal
        assert _record(state="failed").is_terminal
        assert _record(state="cancelled").is_terminal


class TestRecordValidation:
    @pytest.mark.parametrize(
        "overrides, match",
        [
            ({"id": ""}, "non-empty identifier"),
            ({"kind": ""}, "empty kind"),
            ({"state": "paused"}, "unknown state"),
            ({"max_attempts": 0}, "at least 1"),
            ({"attempts": -1}, "non-negative"),
            ({"backoff_seconds": -0.5}, "non-negative"),
            ({"workers": -2}, "non-negative"),
            ({"max_stack_bytes": -1}, "non-negative or None"),
        ],
    )
    def test_bad_fields_rejected(self, overrides, match):
        with pytest.raises(ValueError, match=match):
            _record(**overrides)

    def test_unknown_json_fields_rejected(self):
        data = job_to_json(_record())
        data["retries_left"] = 3
        with pytest.raises(ValueError, match="unknown fields.*retries_left"):
            job_from_json(data)

    def test_non_object_rejected(self):
        with pytest.raises(ValueError, match="expected a JSON object"):
            job_from_json(["j0"])


class TestJournalFile:
    def test_save_load_round_trip(self, tmp_path):
        journal = tmp_path / "journal.json"
        jobs = [_record(id=f"j{i}", sequence=i) for i in range(3)]
        save_journal(journal, jobs)
        assert load_journal(journal) == jobs

    def test_jobs_stored_in_sequence_order(self, tmp_path):
        journal = tmp_path / "journal.json"
        save_journal(
            journal,
            [_record(id="jB", sequence=7), _record(id="jA", sequence=2)],
        )
        assert [job.id for job in load_journal(journal)] == ["jA", "jB"]

    def test_header_carries_format_and_version(self, tmp_path):
        journal = tmp_path / "journal.json"
        save_journal(journal, [_record()])
        data = json.loads(journal.read_text())
        assert data["format"] == JOURNAL_FORMAT
        assert data["version"] == JOURNAL_VERSION

    def test_save_leaves_no_temp_files(self, tmp_path):
        journal = tmp_path / "journal.json"
        save_journal(journal, [_record()])
        save_journal(journal, [_record(state="running")])
        assert [p.name for p in tmp_path.iterdir()] == ["journal.json"]

    def test_truncated_journal_rejected(self, tmp_path):
        journal = tmp_path / "journal.json"
        save_journal(journal, [_record()])
        journal.write_text(journal.read_text()[:40])
        with pytest.raises(ValueError, match="corrupt job journal"):
            load_journal(journal)

    def test_wrong_format_rejected(self, tmp_path):
        journal = tmp_path / "journal.json"
        journal.write_text(json.dumps({"format": "nope", "version": 1, "jobs": []}))
        with pytest.raises(ValueError, match="holds format 'nope'"):
            load_journal(journal)

    def test_future_version_rejected(self, tmp_path):
        journal = tmp_path / "journal.json"
        journal.write_text(
            json.dumps(
                {"format": JOURNAL_FORMAT, "version": JOURNAL_VERSION + 1, "jobs": []}
            )
        )
        with pytest.raises(ValueError, match="journal version"):
            load_journal(journal)

    def test_duplicate_ids_rejected(self, tmp_path):
        journal = tmp_path / "journal.json"
        journal.write_text(
            json.dumps(
                {
                    "format": JOURNAL_FORMAT,
                    "version": JOURNAL_VERSION,
                    "jobs": [
                        job_to_json(_record(id="j1", sequence=0)),
                        job_to_json(_record(id="j1", sequence=1)),
                    ],
                }
            )
        )
        with pytest.raises(ValueError, match="duplicate job id"):
            load_journal(journal)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read job journal"):
            load_journal(tmp_path / "absent.json")
