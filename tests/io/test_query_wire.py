"""Round-trips and corruption handling of the query/answer wire payloads."""

import json

import numpy as np
import pytest

from repro.io import (
    ANSWERS_FORMAT,
    QUERIES_FORMAT,
    load_answers,
    load_queries,
    payload_info,
    save_answers,
    save_queries,
)
from repro.query import QueryAnswer, QueryBatch, grid_locations


@pytest.fixture()
def batches(rng):
    locations = grid_locations(4, 6)
    truth = rng.integers(0, 24, size=5)
    return [
        QueryBatch(
            site="site-a",
            measurements=rng.normal(-60.0, 3.0, size=(5, 4)),
            true_indices=truth,
            locations=locations,
        ),
        QueryBatch(site="site-b", measurements=rng.normal(-55.0, 2.0, size=(3, 4))),
    ]


@pytest.fixture()
def answers(rng):
    return [
        QueryAnswer(
            site="site-a",
            matcher="knn",
            backend="vectorized",
            generation=2,
            indices=np.array([1, 5, 9]),
            points=rng.normal(size=(3, 2)),
            cache_hits=2,
        ),
        QueryAnswer(
            site="site-b",
            matcher="omp",
            backend="looped",
            generation=0,
            indices=np.array([4]),
        ),
    ]


def _rewrite_manifest(src, dst, mutate):
    with np.load(src, allow_pickle=False) as payload:
        arrays = {key: payload[key] for key in payload.files if key != "manifest"}
        manifest = json.loads(str(payload["manifest"][()]))
    mutate(manifest)
    np.savez_compressed(dst, manifest=np.asarray(json.dumps(manifest)), **arrays)


class TestQueriesRoundTrip:
    def test_everything_preserved_exactly(self, batches, tmp_path):
        path = tmp_path / "queries.npz"
        save_queries(path, batches)
        loaded = load_queries(path)
        assert len(loaded) == 2
        for original, copy in zip(batches, loaded):
            assert copy.site == original.site
            np.testing.assert_array_equal(copy.measurements, original.measurements)
        np.testing.assert_array_equal(loaded[0].true_indices, batches[0].true_indices)
        np.testing.assert_array_equal(loaded[0].locations, batches[0].locations)
        assert loaded[1].true_indices is None
        assert loaded[1].locations is None

    def test_payload_info(self, batches, tmp_path):
        path = tmp_path / "queries.npz"
        save_queries(path, batches)
        info = payload_info(path)
        assert info["format"] == QUERIES_FORMAT
        assert info["count"] == 2

    def test_empty_workload_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="empty"):
            save_queries(tmp_path / "queries.npz", [])

    def test_non_batch_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            save_queries(tmp_path / "queries.npz", [np.zeros((2, 2))])


class TestAnswersRoundTrip:
    def test_everything_preserved_exactly(self, answers, tmp_path):
        path = tmp_path / "answers.npz"
        save_answers(path, answers)
        loaded = load_answers(path)
        assert len(loaded) == 2
        first, second = loaded
        assert (first.site, first.matcher, first.backend) == ("site-a", "knn", "vectorized")
        assert first.generation == 2
        assert first.cache_hits == 2
        np.testing.assert_array_equal(first.indices, answers[0].indices)
        np.testing.assert_array_equal(first.points, answers[0].points)
        assert second.points is None
        assert second.cache_hits == 0

    def test_payload_info(self, answers, tmp_path):
        path = tmp_path / "answers.npz"
        save_answers(path, answers)
        assert payload_info(path)["format"] == ANSWERS_FORMAT

    def test_empty_answer_set_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="empty"):
            save_answers(tmp_path / "answers.npz", [])


class TestCorruptQueryPayloads:
    def test_loaders_reject_each_others_payloads(self, batches, answers, tmp_path):
        queries_path = tmp_path / "queries.npz"
        answers_path = tmp_path / "answers.npz"
        save_queries(queries_path, batches)
        save_answers(answers_path, answers)
        with pytest.raises(ValueError, match=f"expected '{QUERIES_FORMAT}'"):
            load_queries(answers_path)
        with pytest.raises(ValueError, match=f"expected '{ANSWERS_FORMAT}'"):
            load_answers(queries_path)

    def test_count_mismatch(self, batches, tmp_path):
        src = tmp_path / "queries.npz"
        dst = tmp_path / "bad.npz"
        save_queries(src, batches)
        _rewrite_manifest(src, dst, lambda m: m.update(count=99))
        with pytest.raises(ValueError, match="mismatch"):
            load_queries(dst)

    def test_batch_count_lie_detected(self, batches, tmp_path):
        src = tmp_path / "queries.npz"
        dst = tmp_path / "bad.npz"
        save_queries(src, batches)

        def mutate(manifest):
            manifest["batches"][0]["count"] = 1

        _rewrite_manifest(src, dst, mutate)
        with pytest.raises(ValueError, match="corrupt query batch 0"):
            load_queries(dst)

    def test_missing_measurement_array(self, batches, tmp_path):
        src = tmp_path / "queries.npz"
        dst = tmp_path / "bad.npz"
        save_queries(src, batches)
        with np.load(src, allow_pickle=False) as payload:
            arrays = {
                key: payload[key]
                for key in payload.files
                if key not in ("manifest", "batch0001__measurements")
            }
            manifest = str(payload["manifest"][()])
        np.savez_compressed(dst, manifest=np.asarray(manifest), **arrays)
        with pytest.raises(ValueError, match="corrupt query batch 1"):
            load_queries(dst)

    def test_answer_points_shape_lie_detected(self, answers, tmp_path):
        src = tmp_path / "answers.npz"
        dst = tmp_path / "bad.npz"
        save_answers(src, answers)

        def mutate(manifest):
            manifest["answers"][1]["has_points"] = True

        _rewrite_manifest(src, dst, mutate)
        with pytest.raises(ValueError, match="corrupt answer 1"):
            load_answers(dst)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read wire payload"):
            load_queries(tmp_path / "nope.npz")
