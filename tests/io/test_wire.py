"""Wire-format round-trips: payloads must preserve everything, exactly.

Property-style checks over a heterogeneous synthesized fleet: dtypes, masks,
ranks, seeds, configs and correlation artefacts survive
``load_requests(save_requests(...))`` bit-for-bit, reports (including the
executed shard plan) survive ``load_report(save_report(...))``, and corrupt
or version-mismatched payloads fail with clear ``ValueError``s.
"""

import json
import zipfile
from dataclasses import replace

import numpy as np
import pytest

from repro.core.self_augmented import SelfAugmentedConfig
from repro.core.updater import UpdaterConfig
from repro.io import (
    REQUESTS_FORMAT,
    WIRE_VERSION,
    load_report,
    load_requests,
    payload_info,
    save_report,
    save_requests,
)
from repro.service.service import UpdateService
from repro.service.shard import ShardConfig
from repro.service.synthetic import synthesize_fleet
from repro.service.types import FleetReport


@pytest.fixture(scope="module")
def fleet_requests():
    """A small mixed-shape, mixed-rank fleet with heterogeneous configs."""
    requests = synthesize_fleet(
        4, link_count=(3, 4), locations_per_link=(4, 5), seed=13
    )
    # Perturb one site's config so config preservation is actually exercised.
    requests[1] = replace(
        requests[1],
        config=UpdaterConfig(
            mic_strategy="gauss",
            solver=SelfAugmentedConfig(
                rank=3, max_iterations=17, tolerance=1e-6, solver_backend="looped"
            ),
        ),
        reference_indices=None,
        correlation=None,
        rng=0,
    )
    return requests


@pytest.fixture()
def requests_path(fleet_requests, tmp_path):
    path = tmp_path / "requests.npz"
    save_requests(path, fleet_requests, elapsed_days=45.0)
    return path


class TestRequestRoundTrip:
    def test_arrays_masks_and_dtypes_preserved_exactly(
        self, fleet_requests, requests_path
    ):
        loaded = load_requests(requests_path)
        assert len(loaded) == len(fleet_requests)
        for original, copy in zip(fleet_requests, loaded):
            assert copy.site == original.site
            for attribute in ("no_decrease_matrix", "no_decrease_mask", "reference_matrix"):
                got = getattr(copy, attribute)
                expected = getattr(original, attribute)
                assert got.dtype == expected.dtype
                np.testing.assert_array_equal(got, expected)
            np.testing.assert_array_equal(
                copy.baseline.values, original.baseline.values
            )
            np.testing.assert_array_equal(
                copy.baseline.no_decrease_mask, original.baseline.no_decrease_mask
            )
            assert (
                copy.baseline.locations_per_link
                == original.baseline.locations_per_link
            )

    def test_ranks_seeds_indices_and_configs_preserved(
        self, fleet_requests, requests_path
    ):
        loaded = load_requests(requests_path)
        for original, copy in zip(fleet_requests, loaded):
            assert copy.rng == original.rng
            assert copy.reference_indices == original.reference_indices
            assert copy.config == original.config
            assert copy.config.resolved_solver() == original.config.resolved_solver()

    def test_correlation_artifacts_preserved(self, fleet_requests, requests_path):
        loaded = load_requests(requests_path)
        for original, copy in zip(fleet_requests, loaded):
            if original.correlation is None:
                assert copy.correlation is None
                continue
            mic0, lrr0 = original.correlation
            mic1, lrr1 = copy.correlation
            assert mic1.indices == mic0.indices
            assert mic1.rank == mic0.rank
            assert mic1.strategy == mic0.strategy
            np.testing.assert_array_equal(mic1.mic_matrix, mic0.mic_matrix)
            np.testing.assert_array_equal(lrr1.correlation, lrr0.correlation)
            np.testing.assert_array_equal(lrr1.error, lrr0.error)
            assert (lrr1.iterations, lrr1.converged) == (
                lrr0.iterations,
                lrr0.converged,
            )

    def test_loaded_fleet_solves_identically(self, fleet_requests, requests_path):
        """The wire hop must not perturb a single float of the refresh."""
        loaded = load_requests(requests_path)
        local = UpdateService().update_fleet(fleet_requests)
        from_wire = UpdateService().update_fleet(loaded)
        for a, b in zip(local, from_wire):
            np.testing.assert_array_equal(a.estimate, b.estimate)

    def test_payload_info(self, requests_path):
        info = payload_info(requests_path)
        assert info["format"] == REQUESTS_FORMAT
        assert info["version"] == WIRE_VERSION
        assert info["count"] == 4
        assert info["elapsed_days"] == 45.0

    def test_none_seed_round_trips(self, fleet_requests, tmp_path):
        path = tmp_path / "noseed.npz"
        save_requests(path, [replace(fleet_requests[0], rng=None)])
        assert load_requests(path)[0].rng is None

    def test_live_generator_rejected(self, fleet_requests, tmp_path):
        bad = replace(fleet_requests[0], rng=np.random.default_rng(0))
        with pytest.raises(ValueError, match="live random generator"):
            save_requests(tmp_path / "bad.npz", [bad])

    def test_empty_fleet_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="empty fleet"):
            save_requests(tmp_path / "empty.npz", [])


def _rewrite_manifest(src, dst, mutate):
    """Copy an NPZ payload, applying ``mutate`` to its decoded manifest."""
    with np.load(src, allow_pickle=False) as payload:
        arrays = {key: payload[key] for key in payload.files if key != "manifest"}
        manifest = json.loads(str(payload["manifest"][()]))
    mutate(manifest)
    np.savez_compressed(dst, manifest=np.asarray(json.dumps(manifest)), **arrays)


class TestCorruptPayloads:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read wire payload"):
            load_requests(tmp_path / "nope.npz")

    def test_not_a_zip(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"not an npz at all")
        with pytest.raises(ValueError, match="cannot read wire payload"):
            load_requests(path)

    def test_npz_without_manifest(self, tmp_path):
        path = tmp_path / "plain.npz"
        np.savez(path, data=np.zeros((2, 2)))
        with pytest.raises(ValueError, match="no manifest entry"):
            load_requests(path)

    def test_version_mismatch(self, requests_path, tmp_path):
        path = tmp_path / "future.npz"
        _rewrite_manifest(
            requests_path, path, lambda m: m.update(version=WIRE_VERSION + 1)
        )
        with pytest.raises(ValueError, match="wire version"):
            load_requests(path)

    def test_format_mismatch(self, requests_path, tmp_path):
        path = tmp_path / "other.npz"
        _rewrite_manifest(
            requests_path, path, lambda m: m.update(format="something-else")
        )
        with pytest.raises(ValueError, match="expected 'repro-fleet-requests'"):
            load_requests(path)

    def test_report_loader_rejects_request_payload(self, requests_path):
        with pytest.raises(ValueError, match="expected 'repro-fleet-report'"):
            load_report(requests_path)

    def test_count_mismatch(self, requests_path, tmp_path):
        path = tmp_path / "short.npz"
        _rewrite_manifest(requests_path, path, lambda m: m.update(count=99))
        with pytest.raises(ValueError, match="count mismatch"):
            load_requests(path)

    def test_missing_array(self, requests_path, tmp_path):
        path = tmp_path / "hollow.npz"
        with np.load(requests_path, allow_pickle=False) as payload:
            arrays = {
                key: payload[key]
                for key in payload.files
                if key not in ("manifest", "site0000__reference_matrix")
            }
            manifest = str(payload["manifest"][()])
        np.savez_compressed(path, manifest=np.asarray(manifest), **arrays)
        with pytest.raises(ValueError, match="missing array"):
            load_requests(path)

    def test_dtype_mismatch_detected(self, requests_path, tmp_path):
        """Arrays rewritten with a different dtype than the manifest records
        must be rejected."""
        path = tmp_path / "downcast.npz"
        with np.load(requests_path, allow_pickle=False) as payload:
            arrays = {
                key: payload[key] for key in payload.files if key != "manifest"
            }
            manifest = str(payload["manifest"][()])
        arrays["site0000__baseline_values"] = arrays[
            "site0000__baseline_values"
        ].astype(np.float32)
        np.savez_compressed(path, manifest=np.asarray(manifest), **arrays)
        with pytest.raises(ValueError, match="dtype"):
            load_requests(path)

    def test_corrupt_config(self, requests_path, tmp_path):
        path = tmp_path / "badcfg.npz"

        def mutate(manifest):
            manifest["sites"][0]["config"]["solver"]["max_iterations"] = -3

        _rewrite_manifest(requests_path, path, mutate)
        with pytest.raises(ValueError, match="corrupt updater config"):
            load_requests(path)

    def test_corrupt_manifest_json(self, requests_path, tmp_path):
        path = tmp_path / "badjson.npz"
        with np.load(requests_path, allow_pickle=False) as payload:
            arrays = {
                key: payload[key] for key in payload.files if key != "manifest"
            }
        np.savez_compressed(
            path, manifest=np.asarray("{not json"), **arrays
        )
        with pytest.raises(ValueError, match="corrupt manifest"):
            load_requests(path)


class TestReportRoundTrip:
    @pytest.fixture(scope="class")
    def solved(self, fleet_requests):
        service = UpdateService()
        reports = service.update_fleet(
            fleet_requests, shards=ShardConfig(max_stack_bytes=4096)
        )
        return FleetReport(
            elapsed_days=45.0,
            reports=tuple(reports),
            errors_db={"office-000": 1.25},
            stale_errors_db={"office-000": 2.5},
            stacked_sweeps=service.last_stacked_sweeps,
            plan=service.last_plan,
        )

    def test_report_round_trip_is_exact(self, solved, tmp_path):
        path = tmp_path / "report.npz"
        save_report(path, solved)
        loaded = load_report(path)
        assert loaded.sites == solved.sites
        assert loaded.elapsed_days == solved.elapsed_days
        assert loaded.stacked_sweeps == solved.stacked_sweeps
        assert loaded.errors_db == solved.errors_db
        assert loaded.stale_errors_db == solved.stale_errors_db
        for original, copy in zip(solved.reports, loaded.reports):
            assert copy.site == original.site
            assert copy.sweeps == original.sweeps
            assert copy.converged == original.converged
            assert copy.solver_backend == original.solver_backend
            np.testing.assert_array_equal(copy.estimate, original.estimate)
            np.testing.assert_array_equal(
                copy.result.solver.left, original.result.solver.left
            )
            np.testing.assert_array_equal(
                copy.result.solver.right, original.result.solver.right
            )
            assert copy.objective == original.objective
            assert copy.result.reference_indices == original.result.reference_indices
            assert copy.result.mic.indices == original.result.mic.indices
            np.testing.assert_array_equal(
                copy.result.lrr.correlation, original.result.lrr.correlation
            )

    def test_plan_round_trips(self, solved, tmp_path):
        path = tmp_path / "report.npz"
        save_report(path, solved)
        loaded = load_report(path)
        assert loaded.plan == solved.plan
        assert loaded.aggregate() == solved.aggregate()

    def test_executor_fields_round_trip(self, solved, tmp_path):
        from dataclasses import replace

        path = tmp_path / "report.npz"
        save_report(path, replace(solved, executor="process", workers=4))
        loaded = load_report(path)
        assert loaded.executor == "process"
        assert loaded.workers == 4
        assert loaded.aggregate()["workers"] == 4.0

    def test_unrecorded_executor_stays_none(self, solved, tmp_path):
        path = tmp_path / "report.npz"
        save_report(path, solved)
        loaded = load_report(path)
        assert loaded.executor is None
        assert loaded.workers == 0

    def test_pre_executor_payload_still_loads(self, solved, tmp_path):
        """Wire version 1 payloads written before the executor fields existed
        carry no executor/workers manifest keys; loading must default them
        rather than fail (the additive-keys compatibility policy of
        docs/WIRE_FORMAT.md)."""
        saved = tmp_path / "report.npz"
        save_report(saved, solved)
        legacy = tmp_path / "legacy.npz"

        def strip(manifest):
            manifest.pop("executor", None)
            manifest.pop("workers", None)

        _rewrite_manifest(saved, legacy, strip)
        loaded = load_report(legacy)
        assert loaded.executor is None
        assert loaded.workers == 0
        assert loaded.sites == solved.sites
