"""Seeded fuzzing of the shard task/result wire payloads.

ISSUE 10 satellite: random truncation and bit-flips of ``repro-shard-task``
and ``repro-shard-result`` payloads must either raise the typed validation
error (:class:`~repro.io.wire.WirePayloadError`) or — when the mutation
happens to land in bytes the codec provably ignores — decode to content
identical to the original.  Never a silent wrong result, never an
unhandled exception leaking from the codec.

The NPZ container's zip CRCs catch most flips; the manifest and shard
fingerprint catch the rest (a flipped attempt number is the one field
deliberately outside the fingerprint — idempotency keys must not change
across retries — so the harness verifies solve-relevant content instead of
insisting on an error).
"""

import numpy as np
import pytest

from repro.core.self_augmented import SelfAugmentedConfig
from repro.core.updater import UpdaterConfig
from repro.io.wire import (
    WirePayloadError,
    requests_to_bytes,
    shard_fingerprint,
    shard_result_from_bytes,
    shard_result_to_bytes,
    shard_task_from_bytes,
    shard_task_to_bytes,
)
from repro.service.executor import _solve_shard_payload
from repro.service.synthetic import synthesize_fleet

FUZZ_ROUNDS = 120
SEED = 0x5EED


@pytest.fixture(scope="module")
def requests_payload():
    requests = synthesize_fleet(
        2,
        link_count=3,
        locations_per_link=3,
        seed=5,
        updater=UpdaterConfig(solver=SelfAugmentedConfig(max_iterations=3)),
    )
    return requests_to_bytes(requests)


@pytest.fixture(scope="module")
def task_payload(requests_payload):
    return shard_task_to_bytes(requests_payload, shard_index=0, attempt=1)


@pytest.fixture(scope="module")
def result_payload(requests_payload):
    result = _solve_shard_payload(requests_payload, 0)
    fingerprint = shard_fingerprint(requests_payload, 0)
    return shard_result_to_bytes(result, fingerprint=fingerprint, shard_index=0)


def _mutations(data, rng, rounds):
    """Yield ``rounds`` random corruptions: truncations and bit-flips."""
    for round_index in range(rounds):
        corrupted = bytearray(data)
        if round_index % 3 == 0:
            # Truncate at a random point (including to empty).
            cut = int(rng.integers(0, len(corrupted)))
            corrupted = corrupted[:cut]
        else:
            # Flip 1..8 random bits.
            for _ in range(int(rng.integers(1, 9))):
                offset = int(rng.integers(0, len(corrupted)))
                corrupted[offset] ^= 1 << int(rng.integers(0, 8))
        if bytes(corrupted) != bytes(data):
            yield bytes(corrupted)


def _results_equal(a, b):
    """Bit-exact equality of two decoded shard results."""
    if a.sweeps != b.sweeps or a.fallback != b.fallback:
        return False
    if len(a.results) != len(b.results):
        return False
    for left, right in zip(a.results, b.results):
        if not (
            np.array_equal(left.estimate, right.estimate)
            and np.array_equal(left.left, right.left)
            and np.array_equal(left.right, right.right)
            and left.objective == right.objective
            and left.iterations == right.iterations
            and left.converged == right.converged
            and left.reference_weight == right.reference_weight
            and left.structure_weight == right.structure_weight
        ):
            return False
    return True


class TestShardTaskFuzz:
    def test_corrupted_tasks_never_decode_silently_wrong(self, task_payload):
        rng = np.random.default_rng(SEED)
        original = shard_task_from_bytes(task_payload)
        rejected = 0
        for corrupted in _mutations(task_payload, rng, FUZZ_ROUNDS):
            try:
                decoded = shard_task_from_bytes(corrupted)
            except WirePayloadError:
                rejected += 1
                continue
            # Decoded despite corruption: every solve-relevant field must be
            # provably untouched (the fingerprint pins shard_index + bytes).
            assert decoded.requests_payload == original.requests_payload
            assert decoded.shard_index == original.shard_index
            assert decoded.fingerprint == original.fingerprint
        # The harness actually exercised the error path, not a no-op corpus.
        assert rejected > FUZZ_ROUNDS // 2

    def test_truncation_to_empty_is_rejected(self):
        with pytest.raises(WirePayloadError):
            shard_task_from_bytes(b"")

    def test_wrong_format_tag_is_rejected(self, requests_payload):
        with pytest.raises(WirePayloadError, match="format"):
            shard_task_from_bytes(requests_payload)

    def test_fingerprint_tamper_is_rejected(self, requests_payload):
        """A recorded fingerprint that does not hash the bytes must not pass."""
        import io

        from repro.io.wire import SHARD_TASK_FORMAT, WIRE_VERSION, _write_payload

        manifest = {
            "format": SHARD_TASK_FORMAT,
            "version": WIRE_VERSION,
            "shard_index": 3,
            "attempt": 0,
            "fingerprint": "0" * 64,
        }
        buffer = io.BytesIO()
        _write_payload(
            buffer,
            manifest,
            {"requests_payload": np.frombuffer(requests_payload, dtype=np.uint8)},
        )
        with pytest.raises(WirePayloadError, match="fingerprint"):
            shard_task_from_bytes(buffer.getvalue())


class TestShardResultFuzz:
    def test_corrupted_results_never_decode_silently_wrong(self, result_payload):
        rng = np.random.default_rng(SEED + 1)
        original, fingerprint, shard_index = shard_result_from_bytes(
            result_payload
        )
        rejected = 0
        for corrupted in _mutations(result_payload, rng, FUZZ_ROUNDS):
            try:
                decoded, got_fp, got_index = shard_result_from_bytes(corrupted)
            except WirePayloadError:
                rejected += 1
                continue
            assert got_fp == fingerprint
            assert got_index == shard_index
            assert _results_equal(decoded, original)
        assert rejected > FUZZ_ROUNDS // 2

    def test_truncation_to_empty_is_rejected(self):
        with pytest.raises(WirePayloadError):
            shard_result_from_bytes(b"")

    def test_wrong_format_tag_is_rejected(self, task_payload):
        with pytest.raises(WirePayloadError, match="format"):
            shard_result_from_bytes(task_payload)

    def test_nonfinite_values_are_rejected(self, requests_payload):
        result = _solve_shard_payload(requests_payload, 0)
        poisoned = result.results[0].estimate.copy()
        poisoned[0, 0] = np.nan
        bad = result.results[0].__class__(
            estimate=poisoned,
            left=result.results[0].left,
            right=result.results[0].right,
            objective=result.results[0].objective,
            iterations=result.results[0].iterations,
            converged=result.results[0].converged,
            reference_weight=result.results[0].reference_weight,
            structure_weight=result.results[0].structure_weight,
        )
        payload = shard_result_to_bytes(
            result.__class__(
                results=(bad,) + result.results[1:],
                sweeps=result.sweeps,
                fallback=result.fallback,
            ),
            fingerprint=shard_fingerprint(requests_payload, 0),
            shard_index=0,
        )
        with pytest.raises(WirePayloadError, match="finite"):
            shard_result_from_bytes(payload)


class TestWirePayloadErrorTyping:
    def test_is_a_value_error(self):
        # Existing `except ValueError` call sites keep catching wire faults.
        assert issubclass(WirePayloadError, ValueError)
