"""Unit tests for :mod:`repro.localization.knn`."""

import numpy as np
import pytest

from repro.localization.knn import KNNConfig, KNNLocalizer


class TestKNNLocalizer:
    def test_exact_fingerprint_recovered(self, striped_fingerprint):
        localizer = KNNLocalizer(striped_fingerprint)
        for j in (1, 6, 18):
            assert localizer.localize_index(striped_fingerprint.column(j)) == j

    def test_single_neighbour_point(self, striped_fingerprint):
        locations = np.column_stack([np.arange(24, dtype=float), np.zeros(24)])
        localizer = KNNLocalizer(
            striped_fingerprint, locations, KNNConfig(neighbours=1)
        )
        np.testing.assert_allclose(
            localizer.localize_point(striped_fingerprint.column(8)), locations[8]
        )

    def test_weighted_centroid_stays_near_truth(self, striped_fingerprint, rng):
        locations = np.column_stack([np.arange(24, dtype=float), np.zeros(24)])
        localizer = KNNLocalizer(
            striped_fingerprint, locations, KNNConfig(neighbours=3, weighted=True)
        )
        j = 10
        noisy = striped_fingerprint.column(j) + rng.normal(0.0, 0.2, size=4)
        point = localizer.localize_point(noisy)
        assert abs(point[0] - j) <= 3.0

    def test_localize_point_requires_locations(self, striped_fingerprint):
        with pytest.raises(ValueError):
            KNNLocalizer(striped_fingerprint).localize_point(striped_fingerprint.column(0))

    def test_batch(self, striped_fingerprint):
        localizer = KNNLocalizer(striped_fingerprint)
        indices = localizer.localize_batch(striped_fingerprint.values.T[:4])
        np.testing.assert_array_equal(indices, np.arange(4))

    def test_offset_invariance_with_centering(self, striped_fingerprint):
        localizer = KNNLocalizer(striped_fingerprint, config=KNNConfig(center_columns=True))
        assert localizer.localize_index(striped_fingerprint.column(20) + 5.0) == 20

    def test_batch_matches_per_query_loop(self, striped_fingerprint, rng):
        localizer = KNNLocalizer(striped_fingerprint)
        queries = striped_fingerprint.values.T + rng.normal(
            0.0, 0.3, size=striped_fingerprint.values.T.shape
        )
        batch = localizer.localize_batch(queries)
        looped = [localizer.localize_index(row) for row in queries]
        np.testing.assert_array_equal(batch, looped)

    def test_batch_matches_loop_uncentered(self, striped_fingerprint, rng):
        localizer = KNNLocalizer(
            striped_fingerprint, config=KNNConfig(center_columns=False)
        )
        queries = striped_fingerprint.values.T[:10] + rng.normal(0.0, 0.3, size=(10, 4))
        np.testing.assert_array_equal(
            localizer.localize_batch(queries),
            [localizer.localize_index(row) for row in queries],
        )

    def test_points_batch_matches_per_query_loop(self, striped_fingerprint, rng):
        locations = np.column_stack([np.arange(24, dtype=float), np.zeros(24)])
        localizer = KNNLocalizer(
            striped_fingerprint, locations, KNNConfig(neighbours=3, weighted=True)
        )
        queries = striped_fingerprint.values.T[:10] + rng.normal(0.0, 0.3, size=(10, 4))
        batch = localizer.localize_points_batch(queries)
        looped = np.vstack([localizer.localize_point(row) for row in queries])
        np.testing.assert_allclose(batch, looped, atol=1e-10)

    def test_points_batch_unweighted_single_neighbour(self, striped_fingerprint):
        locations = np.column_stack([np.arange(24, dtype=float), np.zeros(24)])
        localizer = KNNLocalizer(
            striped_fingerprint, locations, KNNConfig(neighbours=1, weighted=False)
        )
        points = localizer.localize_points_batch(striped_fingerprint.values.T[:6])
        np.testing.assert_allclose(points, locations[:6])

    def test_points_batch_requires_locations(self, striped_fingerprint):
        with pytest.raises(ValueError):
            KNNLocalizer(striped_fingerprint).localize_points_batch(
                striped_fingerprint.values.T[:2]
            )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            KNNConfig(neighbours=0)

    def test_location_shape_checked(self, striped_fingerprint):
        with pytest.raises(ValueError):
            KNNLocalizer(striped_fingerprint, locations=np.zeros((3, 2)))
