"""Unit tests for :mod:`repro.localization.metrics`."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.localization.metrics import localization_errors, summarize_errors


class TestLocalizationErrors:
    def test_zero_for_identical_points(self):
        points = np.array([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_allclose(localization_errors(points, points), [0.0, 0.0])

    def test_euclidean_distance(self):
        truth = np.array([[0.0, 0.0]])
        estimate = np.array([[3.0, 4.0]])
        np.testing.assert_allclose(localization_errors(truth, estimate), [5.0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            localization_errors(np.zeros((2, 2)), np.zeros((3, 2)))

    def test_empty_inputs_yield_empty_errors(self):
        errors = localization_errors(np.zeros((0, 2)), np.zeros((0, 2)))
        assert errors.shape == (0,)
        assert errors.dtype == float

    def test_single_pair(self):
        np.testing.assert_allclose(
            localization_errors(np.array([[1.0, 1.0]]), np.array([[1.0, 2.0]])), [1.0]
        )

    def test_nan_coordinates_rejected(self):
        clean = np.array([[0.0, 0.0]])
        dirty = np.array([[np.nan, 0.0]])
        with pytest.raises(ValueError, match="true_points"):
            localization_errors(dirty, clean)
        with pytest.raises(ValueError, match="estimated_points"):
            localization_errors(clean, dirty)

    def test_infinite_coordinates_rejected(self):
        clean = np.array([[0.0, 0.0]])
        with pytest.raises(ValueError):
            localization_errors(clean, np.array([[np.inf, 0.0]]))


class TestSummarizeErrors:
    def test_summary_fields(self):
        report = summarize_errors([1.0, 2.0, 3.0, 4.0, 10.0])
        assert report.mean_m == pytest.approx(4.0)
        assert report.median_m == pytest.approx(3.0)
        assert report.percentile_80_m <= report.percentile_90_m

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_errors([])

    def test_single_sample_is_a_valid_distribution(self):
        report = summarize_errors([2.5])
        assert report.mean_m == pytest.approx(2.5)
        assert report.median_m == pytest.approx(2.5)
        assert report.percentile_90_m == pytest.approx(2.5)

    def test_nan_entries_rejected(self):
        with pytest.raises(ValueError, match="errors_m"):
            summarize_errors([1.0, np.nan, 2.0])

    def test_cdf_accessible(self):
        report = summarize_errors([0.5, 1.5, 2.5])
        assert report.cdf.probability_below(2.0) == pytest.approx(2 / 3)

    def test_improvement_over(self):
        better = summarize_errors([1.0, 1.0])
        worse = summarize_errors([2.0, 2.0])
        assert better.improvement_over(worse) == pytest.approx(0.5)
        assert worse.improvement_over(better) == pytest.approx(-1.0)

    def test_improvement_over_zero_baseline_rejected(self):
        zero = summarize_errors([0.0, 0.0])
        other = summarize_errors([1.0])
        with pytest.raises(ValueError):
            other.improvement_over(zero)

    @given(st.lists(st.floats(0.0, 100.0, allow_nan=False), min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_median_never_exceeds_p90(self, samples):
        report = summarize_errors(samples)
        assert report.median_m <= report.percentile_90_m + 1e-9
