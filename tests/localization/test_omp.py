"""Unit tests for :mod:`repro.localization.omp`."""

import numpy as np
import pytest

from repro.localization.omp import OMPConfig, OMPLocalizer, orthogonal_matching_pursuit


class TestOMPAlgorithm:
    def test_recovers_single_sparse_support(self, rng):
        dictionary = rng.normal(size=(10, 30))
        true_index = 17
        measurement = 2.5 * dictionary[:, true_index]
        coefficients, support = orthogonal_matching_pursuit(dictionary, measurement, sparsity=1)
        assert support == [true_index]
        assert coefficients[true_index] == pytest.approx(2.5, abs=1e-6)

    def test_recovers_two_sparse_support(self, rng):
        dictionary = rng.normal(size=(12, 40))
        measurement = 1.0 * dictionary[:, 5] - 2.0 * dictionary[:, 20]
        _, support = orthogonal_matching_pursuit(dictionary, measurement, sparsity=2)
        assert set(support) == {5, 20}

    def test_residual_threshold_stops_early(self, rng):
        dictionary = rng.normal(size=(8, 20))
        measurement = dictionary[:, 3]
        _, support = orthogonal_matching_pursuit(
            dictionary, measurement, sparsity=5, residual_threshold=1e-8
        )
        assert len(support) == 1

    def test_sparsity_capped_by_columns(self, rng):
        dictionary = rng.normal(size=(4, 3))
        measurement = rng.normal(size=4)
        _, support = orthogonal_matching_pursuit(dictionary, measurement, sparsity=10)
        assert len(support) <= 3

    def test_dimension_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            orthogonal_matching_pursuit(rng.normal(size=(4, 5)), rng.normal(size=3), 1)


class TestOMPLocalizer:
    def test_exact_fingerprint_recovered(self, striped_fingerprint):
        localizer = OMPLocalizer(striped_fingerprint)
        for j in (0, 7, 13, 23):
            measurement = striped_fingerprint.column(j)
            assert localizer.localize_index(measurement) == j

    def test_noisy_fingerprint_recovered_nearby(self, striped_fingerprint, rng):
        localizer = OMPLocalizer(striped_fingerprint)
        j = 9
        measurement = striped_fingerprint.column(j) + rng.normal(0.0, 0.3, size=4)
        estimate = localizer.localize_index(measurement)
        # Allow the estimate to land on the true column or a stripe neighbour.
        assert abs(estimate - j) <= 1

    def test_localize_point_requires_locations(self, striped_fingerprint):
        localizer = OMPLocalizer(striped_fingerprint)
        with pytest.raises(ValueError):
            localizer.localize_point(striped_fingerprint.column(0))

    def test_localize_point_returns_grid_coordinates(self, striped_fingerprint):
        locations = np.column_stack(
            [np.arange(24, dtype=float), np.zeros(24)]
        )
        localizer = OMPLocalizer(striped_fingerprint, locations)
        point = localizer.localize_point(striped_fingerprint.column(11))
        np.testing.assert_allclose(point, locations[11])

    def test_weighted_centroid_between_grids(self, striped_fingerprint):
        locations = np.column_stack([np.arange(24, dtype=float), np.zeros(24)])
        config = OMPConfig(sparsity=2, weighted_centroid=True)
        localizer = OMPLocalizer(striped_fingerprint, locations, config)
        blend = 0.5 * striped_fingerprint.column(4) + 0.5 * striped_fingerprint.column(5)
        point = localizer.localize_point(blend)
        assert 3.0 <= point[0] <= 6.0

    def test_localize_batch_shape(self, striped_fingerprint):
        localizer = OMPLocalizer(striped_fingerprint)
        measurements = striped_fingerprint.values.T[:5]
        indices = localizer.localize_batch(measurements)
        assert indices.shape == (5,)
        np.testing.assert_array_equal(indices, np.arange(5))

    def test_centering_makes_matching_offset_invariant(self, striped_fingerprint):
        localizer = OMPLocalizer(striped_fingerprint, config=OMPConfig(center_columns=True))
        j = 15
        shifted = striped_fingerprint.column(j) + 7.0  # global RSS shift
        assert localizer.localize_index(shifted) == j

    def test_locations_row_count_checked(self, striped_fingerprint):
        with pytest.raises(ValueError):
            OMPLocalizer(striped_fingerprint, locations=np.zeros((5, 2)))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            OMPConfig(sparsity=0)
        with pytest.raises(ValueError):
            OMPConfig(residual_threshold=-1.0)
