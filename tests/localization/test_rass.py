"""Unit tests for :mod:`repro.localization.rass` (SVR-based baseline)."""

import numpy as np
import pytest

from repro.localization.rass import RASSConfig, RASSLocalizer
from repro.localization.svr import SVRConfig


@pytest.fixture()
def locations():
    xs = np.arange(24, dtype=float) % 6
    ys = np.arange(24, dtype=float) // 6
    return np.column_stack([xs, ys])


class TestRASSLocalizer:
    def test_fit_and_localize_training_point(self, striped_fingerprint, locations):
        model = RASSLocalizer(RASSConfig(svr=SVRConfig(c=50.0, epsilon=0.01)))
        model.fit(striped_fingerprint, locations)
        point = model.localize_point(striped_fingerprint.column(7))
        assert np.linalg.norm(point - locations[7]) < 2.0

    def test_localize_index_snaps_to_grid(self, striped_fingerprint, locations):
        model = RASSLocalizer().fit(striped_fingerprint, locations)
        index = model.localize_index(striped_fingerprint.column(3))
        assert 0 <= index < 24

    def test_localize_before_fit_raises(self, striped_fingerprint):
        with pytest.raises(RuntimeError):
            RASSLocalizer().localize_point(striped_fingerprint.column(0))

    def test_batch_shape(self, striped_fingerprint, locations):
        model = RASSLocalizer().fit(striped_fingerprint, locations)
        batch = model.localize_batch(striped_fingerprint.values.T[:5])
        assert batch.shape == (5, 2)

    def test_location_shape_validated(self, striped_fingerprint):
        with pytest.raises(ValueError):
            RASSLocalizer().fit(striped_fingerprint, np.zeros((24, 3)))

    def test_location_count_validated(self, striped_fingerprint):
        with pytest.raises(ValueError):
            RASSLocalizer().fit(striped_fingerprint, np.zeros((10, 2)))

    def test_degrades_with_stale_fingerprints(self, striped_fingerprint, locations, rng):
        """RASS trained on a drifted (stale) matrix mislocates more (Fig. 23)."""
        model_fresh = RASSLocalizer().fit(striped_fingerprint, locations)
        drift = rng.normal(0.0, 4.0, size=(4, 1)) * np.ones((1, 24))
        stale_matrix = striped_fingerprint.values + drift
        model_stale = RASSLocalizer().fit(stale_matrix, locations)
        errors_fresh, errors_stale = [], []
        for j in range(0, 24, 3):
            measurement = striped_fingerprint.column(j) + rng.normal(0.0, 0.2, size=4)
            errors_fresh.append(
                np.linalg.norm(model_fresh.localize_point(measurement) - locations[j])
            )
            errors_stale.append(
                np.linalg.norm(model_stale.localize_point(measurement) - locations[j])
            )
        assert np.mean(errors_stale) >= np.mean(errors_fresh) * 0.9
