"""Unit tests for :mod:`repro.localization.svr` (from-scratch SVR)."""

import numpy as np
import pytest

from repro.localization.svr import SupportVectorRegressor, SVRConfig


class TestSVRConfig:
    def test_defaults_valid(self):
        SVRConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"c": 0.0},
            {"epsilon": -0.1},
            {"gamma": 0.0},
            {"max_iterations": 0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SVRConfig(**kwargs)


class TestSupportVectorRegressor:
    def test_fits_smooth_function(self, rng):
        features = rng.uniform(-2.0, 2.0, size=(60, 2))
        targets = np.sin(features[:, 0]) + 0.5 * features[:, 1]
        model = SupportVectorRegressor(SVRConfig(c=50.0, epsilon=0.01)).fit(features, targets)
        predictions = model.predict(features)
        assert np.mean(np.abs(predictions - targets)) < 0.2

    def test_interpolates_unseen_points(self, rng):
        features = rng.uniform(-2.0, 2.0, size=(80, 1))
        targets = features[:, 0] ** 2
        model = SupportVectorRegressor(SVRConfig(c=50.0, epsilon=0.01)).fit(features, targets)
        test = np.array([[0.5], [-1.0], [1.5]])
        predictions = model.predict(test)
        np.testing.assert_allclose(predictions, [0.25, 1.0, 2.25], atol=0.5)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            SupportVectorRegressor().predict(np.zeros((2, 2)))

    def test_mismatched_lengths_rejected(self, rng):
        with pytest.raises(ValueError):
            SupportVectorRegressor().fit(rng.normal(size=(5, 2)), rng.normal(size=4))

    def test_constant_targets_recovered(self, rng):
        features = rng.normal(size=(30, 3))
        targets = np.full(30, 4.2)
        model = SupportVectorRegressor().fit(features, targets)
        predictions = model.predict(rng.normal(size=(10, 3)))
        np.testing.assert_allclose(predictions, 4.2, atol=0.3)

    def test_support_vector_count_reported(self, rng):
        features = rng.normal(size=(25, 2))
        targets = features[:, 0]
        model = SupportVectorRegressor(SVRConfig(c=10.0, epsilon=0.01)).fit(features, targets)
        assert 0 < model.support_vector_count <= 25

    def test_explicit_gamma_used(self, rng):
        features = rng.normal(size=(20, 2))
        targets = features[:, 0]
        model = SupportVectorRegressor(SVRConfig(gamma=0.5)).fit(features, targets)
        assert model._gamma == 0.5
