"""Shared fixtures for the query-engine tests.

The matchers and the engine are exercised over the small striped
fingerprint from the top-level conftest plus one genuinely refreshed
two-site fleet (module-scoped: the refresh is the slow part).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.query import QueryIndex, grid_locations
from repro.service.service import UpdateService
from repro.service.synthetic import synthesize_fleet
from repro.service.types import FleetReport


@pytest.fixture()
def query_index(striped_fingerprint) -> QueryIndex:
    """Index over the striped fingerprint with its deterministic grid."""
    matrix = striped_fingerprint
    return QueryIndex.build(
        "test-site",
        matrix,
        locations=grid_locations(matrix.link_count, matrix.locations_per_link),
    )


@pytest.fixture()
def noisy_queries(striped_fingerprint, rng) -> tuple:
    """(measurements, truth): noisy copies of random dictionary columns."""
    truth = rng.integers(0, striped_fingerprint.location_count, size=12)
    measurements = striped_fingerprint.values.T[truth] + rng.normal(
        0.0, 0.15, size=(truth.size, striped_fingerprint.link_count)
    )
    return measurements, truth


@pytest.fixture(scope="module")
def refreshed_fleet() -> FleetReport:
    """A genuinely refreshed two-site fleet report."""
    requests = synthesize_fleet(
        2, link_count=4, locations_per_link=6, seed=17
    )
    reports = UpdateService().update_fleet(requests)
    return FleetReport(elapsed_days=45.0, reports=tuple(reports))
