"""Unit tests for :mod:`repro.query.engine` (serving, cache, generations)."""

import numpy as np
import pytest

from repro.query import (
    GenerationStore,
    QueryBatch,
    QueryConfig,
    QueryEngine,
    QueryIndex,
    bind_matcher,
)
from repro.query.engine import BoundSite


def _bound_site(index):
    return BoundSite(index=index, matcher=bind_matcher("knn", "vectorized", index))


class TestQueryConfig:
    def test_defaults_valid(self):
        config = QueryConfig()
        assert config.matcher == "knn"
        assert config.matcher_backend == "vectorized"
        assert config.cache_size == 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"matcher": "nearest"},
            {"matcher_backend": "gpu"},
            {"cache_size": -1},
            {"cache_quantum_db": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            QueryConfig(**kwargs)


class TestGenerationStore:
    def test_current_before_publish_raises(self):
        with pytest.raises(RuntimeError, match="no database generation"):
            GenerationStore().current()

    def test_publish_assigns_ordinals(self, query_index):
        store = GenerationStore()
        first = store.publish({"a": _bound_site(query_index)})
        second = store.publish({"a": _bound_site(query_index)}, label="fresh")
        assert (first.ordinal, second.ordinal) == (0, 1)
        assert second.label == "fresh"
        assert store.current() is second
        assert store.generation_count == 2

    def test_empty_generation_rejected(self):
        with pytest.raises(ValueError, match="no sites"):
            GenerationStore().publish({})


class TestQueryEngineServing:
    def test_publish_report_and_serve(self, refreshed_fleet):
        engine = QueryEngine()
        generation = engine.publish_report(refreshed_fleet)
        assert generation.label == "refresh@45d"
        assert engine.sites == tuple(sorted(refreshed_fleet.sites))

        site = refreshed_fleet.sites[0]
        matrix = refreshed_fleet.report_for(site).matrix
        answer = engine.localize_batch(site, matrix.values.T[:5])
        np.testing.assert_array_equal(answer.indices, np.arange(5))
        assert answer.points is not None and answer.points.shape == (5, 2)
        assert answer.generation == generation.ordinal
        assert (answer.matcher, answer.backend) == ("knn", "vectorized")

    def test_sites_empty_before_publish(self):
        assert QueryEngine().sites == ()

    def test_serving_before_publish_raises(self, striped_fingerprint):
        with pytest.raises(RuntimeError, match="publish"):
            QueryEngine().localize_batch("site", striped_fingerprint.values.T[:2])

    def test_unknown_site_rejected(self, refreshed_fleet):
        engine = QueryEngine()
        engine.publish_report(refreshed_fleet)
        queries = np.zeros((1, 4))
        with pytest.raises(ValueError, match="unknown site"):
            engine.localize_batch("nowhere", queries)

    def test_wrong_link_count_rejected(self, refreshed_fleet):
        engine = QueryEngine()
        engine.publish_report(refreshed_fleet)
        with pytest.raises(ValueError, match="columns"):
            engine.localize_batch(refreshed_fleet.sites[0], np.zeros((2, 9)))

    def test_answer_echoes_batch_site(self, refreshed_fleet):
        engine = QueryEngine()
        engine.publish_report(refreshed_fleet)
        site = refreshed_fleet.sites[1]
        matrix = refreshed_fleet.report_for(site).matrix
        batch = QueryBatch(site=site, measurements=matrix.values.T[:3])
        answer = engine.answer(batch)
        assert answer.site == site
        assert answer.count == 3

    def test_publish_indexes_without_locations(self, striped_fingerprint):
        engine = QueryEngine()
        index = QueryIndex.build("bare", striped_fingerprint)
        engine.publish_indexes({"bare": index})
        answer = engine.localize_batch("bare", striped_fingerprint.values.T[:4])
        np.testing.assert_array_equal(answer.indices, np.arange(4))
        assert answer.points is None


class TestResultCaching:
    @pytest.fixture()
    def cached_engine(self, query_index):
        engine = QueryEngine(QueryConfig(cache_size=64))
        engine.publish_indexes({"test-site": query_index})
        return engine

    def test_repeat_batch_hits_cache(self, cached_engine, noisy_queries):
        measurements, _ = noisy_queries
        cold = cached_engine.localize_batch("test-site", measurements)
        warm = cached_engine.localize_batch("test-site", measurements)
        assert cold.cache_hits == 0
        assert warm.cache_hits == measurements.shape[0]
        np.testing.assert_array_equal(warm.indices, cold.indices)
        np.testing.assert_allclose(warm.points, cold.points)
        assert cached_engine.cache_stats.hits == measurements.shape[0]

    def test_partial_hits_assemble_correctly(self, cached_engine, noisy_queries):
        measurements, _ = noisy_queries
        half = measurements[: measurements.shape[0] // 2]
        cached_engine.localize_batch("test-site", half)
        full = cached_engine.localize_batch("test-site", measurements)
        assert full.cache_hits == half.shape[0]
        uncached = QueryEngine()
        uncached.publish_indexes(
            {"test-site": cached_engine.store.current().sites["test-site"].index}
        )
        exact = uncached.localize_batch("test-site", measurements)
        np.testing.assert_array_equal(full.indices, exact.indices)
        np.testing.assert_allclose(full.points, exact.points)

    def test_new_generation_invalidates(self, cached_engine, query_index, noisy_queries):
        measurements, _ = noisy_queries
        cached_engine.localize_batch("test-site", measurements)
        cached_engine.publish_indexes({"test-site": query_index})
        refreshed = cached_engine.localize_batch("test-site", measurements)
        assert refreshed.cache_hits == 0  # keys carry the generation ordinal

    def test_quantization_shares_nearby_queries(self, query_index, striped_fingerprint):
        engine = QueryEngine(QueryConfig(cache_size=8, cache_quantum_db=1.0))
        engine.publish_indexes({"test-site": query_index})
        base = striped_fingerprint.values.T[:1]
        engine.localize_batch("test-site", base)
        nudged = engine.localize_batch("test-site", base + 0.01)
        assert nudged.cache_hits == 1

    def test_disabled_cache_reports_no_hits(self, query_index, noisy_queries):
        measurements, _ = noisy_queries
        engine = QueryEngine()
        engine.publish_indexes({"test-site": query_index})
        engine.localize_batch("test-site", measurements)
        again = engine.localize_batch("test-site", measurements)
        assert again.cache_hits == 0
        assert engine.cache_stats.capacity == 0
