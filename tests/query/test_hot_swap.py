"""Generation hot-swap atomicity under concurrent batched queries.

A writer thread keeps swapping between two generations whose dictionaries
give *different known answers* for the same queries.  Reader threads fire
batches the whole time and must only ever observe answers that are entirely
consistent with a single published generation — never a mix, never a
half-swapped state.
"""

import threading

import numpy as np
import pytest

from repro.localization.knn import KNNConfig
from repro.query import QueryConfig, QueryEngine, QueryIndex, grid_locations


@pytest.fixture()
def swap_setup(striped_fingerprint):
    """Two generations with opposite answers for the same query batch."""
    matrix = striped_fingerprint
    n = matrix.location_count
    locations = grid_locations(matrix.link_count, matrix.locations_per_link)
    forward = QueryIndex.build("site", matrix, locations=locations)
    # The reversed dictionary maps query column j to index n-1-j.
    reversed_index = QueryIndex.build(
        "site",
        matrix.values[:, ::-1].copy(),
        locations=locations,
        locations_per_link=matrix.locations_per_link,
    )
    queries = matrix.values.T[:8]
    expected = {0: np.arange(8) % n, 1: (n - 1) - np.arange(8) % n}
    return forward, reversed_index, queries, expected


class TestHotSwapAtomicity:
    def test_concurrent_readers_never_see_half_swapped_generation(self, swap_setup):
        forward, reversed_index, queries, _ = swap_setup
        engine = QueryEngine(
            QueryConfig(knn=KNNConfig(neighbours=1, weighted=False))
        )
        engine.publish_indexes({"site": forward})

        generations = {0: forward, 1: reversed_index}
        swaps = 60
        errors = []
        stop = threading.Event()

        def writer():
            for swap in range(1, swaps + 1):
                engine.publish_indexes({"site": generations[swap % 2]})
            stop.set()

        def reader():
            n = queries.shape[0]
            while not stop.is_set():
                answer = engine.localize_batch("site", queries)
                parity = answer.generation % 2
                expected = (
                    np.arange(n)
                    if parity == 0
                    else (forward.location_count - 1) - np.arange(n)
                )
                if not np.array_equal(answer.indices, expected):
                    errors.append(
                        f"generation {answer.generation} answered "
                        f"{answer.indices.tolist()}, expected {expected.tolist()}"
                    )
                    return

        readers = [threading.Thread(target=reader) for _ in range(4)]
        for thread in readers:
            thread.start()
        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        writer_thread.join(timeout=60)
        for thread in readers:
            thread.join(timeout=60)
        assert not errors, errors[0]
        assert engine.store.generation_count == swaps + 1

    def test_batch_is_answered_from_one_snapshot(self, swap_setup):
        """The generation recorded on the answer matches the indices even if
        a swap lands mid-batch: every row must come from that snapshot."""
        forward, reversed_index, queries, _ = swap_setup
        engine = QueryEngine(
            QueryConfig(knn=KNNConfig(neighbours=1, weighted=False))
        )
        engine.publish_indexes({"site": forward})
        n = queries.shape[0]

        done = threading.Event()

        def swapper():
            while not done.is_set():
                engine.publish_indexes({"site": reversed_index})
                engine.publish_indexes({"site": forward})

        thread = threading.Thread(target=swapper)
        thread.start()
        try:
            for _ in range(200):
                answer = engine.localize_batch("site", queries)
                if answer.generation % 2 == 0:
                    expected = np.arange(n)
                else:
                    expected = (forward.location_count - 1) - np.arange(n)
                np.testing.assert_array_equal(answer.indices, expected)
        finally:
            done.set()
            thread.join(timeout=60)
