"""Unit tests for :mod:`repro.query.index`."""

import numpy as np
import pytest

from repro.query import QueryIndex, grid_locations, indexes_from_report
from repro.query.index import DEFAULT_GRID_SPACING_M


class TestGridLocations:
    def test_shape_and_stripe_convention(self):
        table = grid_locations(3, 4, spacing_m=1.0)
        assert table.shape == (12, 2)
        # Column j belongs to link j // width at offset j % width.
        np.testing.assert_allclose(table[5], [1.0, 1.0])  # link 1, offset 1
        np.testing.assert_allclose(table[11], [3.0, 2.0])  # link 2, offset 3

    def test_deterministic(self):
        np.testing.assert_array_equal(grid_locations(4, 6), grid_locations(4, 6))

    def test_spacing_scales_coordinates(self):
        np.testing.assert_allclose(
            grid_locations(2, 3, spacing_m=2.0), 2.0 * grid_locations(2, 3, spacing_m=1.0)
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"link_count": 0, "locations_per_link": 4},
            {"link_count": 4, "locations_per_link": 0},
            {"link_count": 4, "locations_per_link": 4, "spacing_m": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            grid_locations(**kwargs)


class TestQueryIndexBuild:
    def test_precomputations_match_definitions(self, query_index, striped_fingerprint):
        np.testing.assert_array_equal(query_index.values, striped_fingerprint.values)
        expected_means = striped_fingerprint.values.mean(axis=0)
        np.testing.assert_allclose(query_index.column_means, expected_means)
        np.testing.assert_allclose(
            query_index.centered, striped_fingerprint.values - expected_means
        )
        np.testing.assert_allclose(
            query_index.column_norms, np.linalg.norm(query_index.centered, axis=0)
        )

    def test_shape_properties(self, query_index, striped_fingerprint):
        assert query_index.link_count == striped_fingerprint.link_count
        assert query_index.location_count == striped_fingerprint.location_count
        assert query_index.locations_per_link == striped_fingerprint.locations_per_link
        assert query_index.nbytes > 0

    def test_all_arrays_frozen(self, query_index):
        for array in (
            query_index.values,
            query_index.centered,
            query_index.column_means,
            query_index.column_norms,
            query_index.locations,
        ):
            assert not array.flags.writeable
            with pytest.raises(ValueError):
                array[..., 0] = 0.0

    def test_source_mutation_does_not_leak_in(self, striped_fingerprint):
        values = striped_fingerprint.values.copy()
        index = QueryIndex.build("site", values, locations_per_link=6)
        values[0, 0] = 999.0
        assert index.values[0, 0] != 999.0

    def test_raw_array_requires_width(self, striped_fingerprint):
        with pytest.raises(ValueError, match="locations_per_link"):
            QueryIndex.build("site", striped_fingerprint.values)

    def test_empty_site_rejected(self, striped_fingerprint):
        with pytest.raises(ValueError, match="site"):
            QueryIndex.build("", striped_fingerprint)

    def test_locations_shape_checked(self, striped_fingerprint):
        with pytest.raises(ValueError, match="locations"):
            QueryIndex.build(
                "site", striped_fingerprint, locations=np.zeros((3, 2))
            )

    def test_zero_norm_columns_get_unit_normalizer(self):
        values = np.zeros((4, 3))
        values[:, 1] = [1.0, -1.0, 2.0, -2.0]
        index = QueryIndex.build("site", values, locations_per_link=3)
        assert index.column_norms[0] == 1.0
        assert index.column_norms[2] == 1.0
        assert index.column_norms[1] > 1.0


class TestIndexesFromReport:
    def test_one_index_per_site_with_grid_fallback(self, refreshed_fleet):
        indexes = indexes_from_report(refreshed_fleet)
        assert set(indexes) == set(refreshed_fleet.sites)
        for site, index in indexes.items():
            report = refreshed_fleet.report_for(site)
            np.testing.assert_array_equal(index.values, report.matrix.values)
            assert index.locations is not None
            assert index.locations.shape == (report.matrix.location_count, 2)

    def test_grid_fallback_uses_spacing(self, refreshed_fleet):
        indexes = indexes_from_report(refreshed_fleet, spacing_m=1.5)
        site = refreshed_fleet.sites[0]
        matrix = refreshed_fleet.report_for(site).matrix
        np.testing.assert_allclose(
            indexes[site].locations,
            grid_locations(matrix.link_count, matrix.locations_per_link, 1.5),
        )

    def test_no_fallback_leaves_locations_empty(self, refreshed_fleet):
        indexes = indexes_from_report(refreshed_fleet, grid_fallback=False)
        assert all(index.locations is None for index in indexes.values())

    def test_supplied_tables_win_over_fallback(self, refreshed_fleet, rng):
        site = refreshed_fleet.sites[0]
        matrix = refreshed_fleet.report_for(site).matrix
        table = rng.normal(size=(matrix.location_count, 2))
        indexes = indexes_from_report(refreshed_fleet, locations={site: table})
        np.testing.assert_array_equal(indexes[site].locations, table)
        other = refreshed_fleet.sites[1]
        assert indexes[other].locations is not None  # fallback for the rest
