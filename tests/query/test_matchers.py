"""Batch-vs-loop parity of every matcher backend.

This is the ISSUE's central pin: for each matcher (kNN / OMP / SVR / RASS)
the vectorized backend must reproduce the per-query looped reference —
identical grid indices and coordinates within 1e-10 — so the serving engine
can ride the GEMM path without changing any answer.
"""

import numpy as np
import pytest

from repro.localization.knn import KNNConfig
from repro.localization.omp import OMPConfig
from repro.query import QueryIndex, bind_matcher, grid_locations
from repro.query.matchers import MATCHERS, _snap_to_grid

PARITY_ATOL = 1e-10


def _bind_pair(matcher, index, **configs):
    return (
        bind_matcher(matcher, "vectorized", index, **configs),
        bind_matcher(matcher, "looped", index, **configs),
    )


class TestBackendParity:
    @pytest.mark.parametrize("matcher", MATCHERS)
    def test_vectorized_matches_looped(self, matcher, query_index, noisy_queries):
        measurements, _ = noisy_queries
        vectorized, looped = _bind_pair(matcher, query_index)
        v_indices, v_points = vectorized.localize(measurements)
        l_indices, l_points = looped.localize(measurements)
        np.testing.assert_array_equal(v_indices, l_indices)
        np.testing.assert_allclose(v_points, l_points, atol=PARITY_ATOL)

    @pytest.mark.parametrize("matcher", ("knn", "omp"))
    def test_parity_without_locations(self, matcher, striped_fingerprint, noisy_queries):
        measurements, _ = noisy_queries
        index = QueryIndex.build("site", striped_fingerprint)
        vectorized, looped = _bind_pair(matcher, index)
        v_indices, v_points = vectorized.localize(measurements)
        l_indices, l_points = looped.localize(measurements)
        np.testing.assert_array_equal(v_indices, l_indices)
        assert v_points is None and l_points is None

    def test_knn_parity_uncentered_unweighted(self, query_index, noisy_queries):
        measurements, _ = noisy_queries
        config = KNNConfig(neighbours=1, weighted=False, center_columns=False)
        vectorized, looped = _bind_pair("knn", query_index, knn=config)
        v_indices, v_points = vectorized.localize(measurements)
        l_indices, l_points = looped.localize(measurements)
        np.testing.assert_array_equal(v_indices, l_indices)
        np.testing.assert_allclose(v_points, l_points, atol=PARITY_ATOL)

    def test_omp_multi_atom_parity(self, query_index, noisy_queries):
        measurements, _ = noisy_queries
        config = OMPConfig(sparsity=3)
        vectorized, looped = _bind_pair("omp", query_index, omp=config)
        v_indices, v_points = vectorized.localize(measurements)
        l_indices, l_points = looped.localize(measurements)
        np.testing.assert_array_equal(v_indices, l_indices)
        np.testing.assert_allclose(v_points, l_points, atol=PARITY_ATOL)

    def test_single_query_batch(self, query_index, striped_fingerprint):
        measurement = striped_fingerprint.column(7)[None, :]
        for matcher in MATCHERS:
            vectorized, looped = _bind_pair(matcher, query_index)
            v_indices, _ = vectorized.localize(measurement)
            l_indices, _ = looped.localize(measurement)
            np.testing.assert_array_equal(v_indices, l_indices)


class TestMatcherBehaviour:
    def test_knn_recovers_exact_columns(self, query_index, striped_fingerprint):
        matcher = bind_matcher("knn", "vectorized", query_index)
        indices, _ = matcher.localize(striped_fingerprint.values.T[:6])
        np.testing.assert_array_equal(indices, np.arange(6))

    def test_omp_recovers_exact_columns(self, query_index, striped_fingerprint):
        matcher = bind_matcher("omp", "vectorized", query_index)
        indices, _ = matcher.localize(striped_fingerprint.values.T[:6])
        np.testing.assert_array_equal(indices, np.arange(6))

    def test_svr_differs_from_rass_by_centering(self, query_index):
        svr = bind_matcher("svr", "vectorized", query_index)
        rass = bind_matcher("rass", "vectorized", query_index)
        assert svr.config.center_features is False
        assert rass.config.center_features is True
        assert svr.name == "svr"
        assert rass.name == "rass"

    def test_rass_requires_locations(self, striped_fingerprint):
        index = QueryIndex.build("site", striped_fingerprint)
        for name in ("svr", "rass"):
            with pytest.raises(ValueError, match="location table"):
                bind_matcher(name, "vectorized", index)

    def test_unknown_matcher_and_backend_rejected(self, query_index):
        with pytest.raises(ValueError, match="unknown matcher"):
            bind_matcher("nearest", "vectorized", query_index)
        with pytest.raises(ValueError, match="backend"):
            bind_matcher("knn", "gpu", query_index)

    def test_snap_to_grid_recovers_exact_points(self):
        locations = grid_locations(3, 4)
        np.testing.assert_array_equal(
            _snap_to_grid(locations[[2, 7, 11]], locations), [2, 7, 11]
        )
